//! Integration tests for the extension features: 5-level paging, skewed
//! TPS TLB, fine-grained A/D, trace replay — all through a verified
//! machine.

use tps::core::BASE_PAGE_SIZE;
use tps::sim::{Machine, MachineBuilder, MachineConfig, Mechanism, RunStats, TenantSpec};
use tps::wl::{
    build, replay, Gups, GupsParams, Initialized, Recorder, SuiteScale, Workload, WorkloadProfile,
};

fn base_config(mech: Mechanism) -> MachineConfig {
    MachineConfig::for_mechanism(mech)
        .with_memory(SuiteScale::Test.recommended_memory())
        .with_verification()
}

fn solo(config: MachineConfig, spec: TenantSpec) -> Machine {
    MachineBuilder::new(config)
        .tenant(spec)
        .build()
        .expect("one tenant builds")
}

fn run_suite(config: MachineConfig, name: &str) -> RunStats {
    solo(config, TenantSpec::boxed(build(name, SuiteScale::Test)))
        .run()
        .into_solo()
}

#[test]
fn five_level_machine_runs_the_suite_correctly() {
    let mut config = base_config(Mechanism::Tps);
    config.five_level_paging = true;
    let five = run_suite(config, "xsbench");

    let four = run_suite(base_config(Mechanism::Tps), "xsbench");

    // Same translation behavior (hit counts identical)...
    assert_eq!(five.mem, four.mem);
    // ...but cold walks reference one extra level.
    assert!(five.full_walk_refs >= four.full_walk_refs);
}

#[test]
fn skewed_tps_tlb_runs_verified_and_close_to_fa() {
    let mut config = base_config(Mechanism::Tps);
    config.tlb.tps_l1_skewed = true;
    let skewed = run_suite(config, "gups");

    let fa = run_suite(base_config(Mechanism::Tps), "gups");

    // Verification (enabled) proves correctness; hit rates are close — a
    // single-page GUPS footprint fits either organization.
    assert!(
        skewed.mem.l1_hit_rate() > 0.95,
        "{}",
        skewed.mem.l1_hit_rate()
    );
    assert!(fa.mem.l1_hit_rate() >= skewed.mem.l1_hit_rate() - 0.02);
}

#[test]
fn fine_grained_ad_flag_plumbs_through_the_machine() {
    let mut config = base_config(Mechanism::Tps);
    config.fine_grained_ad = true;
    let wl = Initialized::new(Gups::new(GupsParams {
        table_bytes: 1 << 20,
        updates: 2_000,
        seed: 5,
    }));
    let mut machine = solo(config, TenantSpec::workload(wl));
    machine.run();
    // The 1 MB table promoted to one tailored page; writes recorded a
    // dirty vector on it.
    let process = machine.os().process(0);
    let vma_base = process.address_space().iter().next().unwrap().base();
    assert!(
        process.page_table().dirty_vector(vma_base).is_some(),
        "dirty vector recorded for the tailored page"
    );
    let writeback = machine.os().dirty_writeback_bytes(0, vma_base);
    assert!(writeback > 0 && writeback <= 1 << 20);
}

#[test]
fn recorded_trace_replays_to_identical_statistics() {
    let inner = Initialized::new(Gups::new(GupsParams {
        table_bytes: 2 << 20,
        updates: 5_000,
        seed: 11,
    }));
    // Record through the step API: an externally-driven tenant replays
    // the recorder's event stream one event at a time.
    let mut buf = Vec::new();
    let mut recorder = Recorder::new(inner, &mut buf);
    let mut live_machine = solo(base_config(Mechanism::Tps), TenantSpec::external("gups"));
    while let Some(e) = recorder.next_event() {
        live_machine
            .step(0, e)
            .expect("scripted event is well-formed");
    }
    let live = live_machine.counters(0).measured.clone();
    let live_census = live_machine.os().process(0).page_table().page_census();
    drop(recorder);

    let replayed = replay(std::io::Cursor::new(buf), WorkloadProfile::named("gups")).unwrap();
    let again = solo(base_config(Mechanism::Tps), TenantSpec::workload(replayed))
        .run()
        .into_solo();
    assert_eq!(live.mem, again.mem);
    assert_eq!(live.walk_refs, again.walk_refs);
    assert_eq!(live_census, again.page_census);
}

#[test]
fn mprotect_round_trip_through_verified_accesses() {
    use tps::core::VirtAddr;
    use tps::wl::Event;

    let mut machine = solo(base_config(Mechanism::Tps), TenantSpec::external("driver"));
    machine
        .step(
            0,
            Event::Mmap {
                region: 0,
                bytes: 64 << 10,
            },
        )
        .expect("scripted event is well-formed");
    for i in 0..16u64 {
        machine
            .step(
                0,
                Event::Access {
                    region: 0,
                    offset: i * BASE_PAGE_SIZE,
                    write: true,
                },
            )
            .expect("scripted event is well-formed");
    }
    // mprotect at the OS level is visible in the page table; verified
    // reads still succeed afterwards. (Writes to the read-only part would
    // take a CoW-style fault, exercised in the tps-sim unit tests.)
    let base = machine
        .os()
        .process(0)
        .address_space()
        .iter()
        .next()
        .unwrap()
        .base();
    // Direct OS access isn't exposed mutably through Machine by design;
    // validate the flag change via page-table inspection using a second
    // OS-level scenario instead.
    let mut os = tps::os::Os::new(
        64 << 20,
        tps::os::PolicyConfig::new(tps::os::PolicyKind::Tps),
    );
    let pid = os.spawn();
    let vma = os.mmap(pid, 64 << 10).unwrap();
    let mut va = vma.base();
    while va < vma.end() {
        os.handle_fault(pid, va, true).unwrap();
        va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
    }
    os.mprotect(pid, vma.base(), 64 << 10, false).unwrap();
    assert!(os.needs_cow(pid, vma.base()), "read-only after mprotect");
    let _ = base;
}
