//! Experiment-level invariants: the headline result shapes the figure
//! harnesses rely on, checked at test scale so regressions are caught by
//! `cargo test`.

use tps::mem::{BuddyAllocator, FragmentParams, Fragmenter};
use tps::sim::{run_smt, MachineBuilder, MachineConfig, Mechanism, TenantSpec, TimingModel};
use tps::wl::{build, SuiteScale};
use tps_bench_shapes::*;

/// Helpers shared by the shape tests.
mod tps_bench_shapes {
    use super::*;

    pub fn run(name: &str, mech: Mechanism) -> tps::sim::RunStats {
        run_with(name, mech, |c| c)
    }

    pub fn run_with(
        name: &str,
        mech: Mechanism,
        tweak: impl FnOnce(MachineConfig) -> MachineConfig,
    ) -> tps::sim::RunStats {
        let config = tweak(
            MachineConfig::for_mechanism(mech).with_memory(SuiteScale::Test.recommended_memory()),
        );
        MachineBuilder::new(config)
            .tenant(TenantSpec::boxed(build(name, SuiteScale::Test)))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo()
    }
}

#[test]
fn fig03_shape_perfect_l1_speedup_positive_for_pointer_chasers() {
    let model = TimingModel::default();
    let perfect_l2 = run_with("mcf", Mechanism::Thp, |mut c| {
        c.perfect_l2 = true;
        c
    });
    let perfect_l1 = run_with("mcf", Mechanism::Thp, |mut c| {
        c.perfect_l1 = true;
        c
    });
    let speedup = model
        .evaluate(&perfect_l1, false)
        .speedup_over(&model.evaluate(&perfect_l2, false));
    assert!(speedup >= 1.0, "perfect L1 can never lose: {speedup}");
}

#[test]
fn fig09_shape_2m_only_bloats_sparse_workloads() {
    // dbx1000's zipf-touched table is sparse at test scale.
    let only4k = run("dbx1000", Mechanism::Only4K);
    let only2m = run("dbx1000", Mechanism::Only2M);
    assert!(
        only2m.resident_bytes >= only4k.resident_bytes,
        "2M-only cannot be smaller"
    );
}

#[test]
fn fig10_shape_ordering_tps_geq_colt_geq_zero() {
    for name in ["gcc", "xsbench", "dbx1000"] {
        let base = run(name, Mechanism::Thp);
        if base.mem.l1_misses() < 1000 {
            continue; // no signal at this scale
        }
        let tps = run(name, Mechanism::Tps).l1_misses_eliminated_vs(&base);
        let colt = run(name, Mechanism::Colt).l1_misses_eliminated_vs(&base);
        assert!(tps >= colt - 0.05, "{name}: TPS {tps} vs CoLT {colt}");
        assert!(tps > 0.5, "{name}: TPS elimination too weak: {tps}");
    }
}

#[test]
fn fig11_shape_tps_beats_rmm_on_gcc_walks() {
    // The paper's specific claim: gcc's many ranges overflow the 32-entry
    // Range TLB, while TPS pages survive in the (bigger) STLB.
    let base = run("gcc", Mechanism::Thp);
    let tps = run("gcc", Mechanism::Tps).walk_refs_eliminated_vs(&base);
    let rmm = run("gcc", Mechanism::Rmm).walk_refs_eliminated_vs(&base);
    assert!(
        tps > rmm,
        "TPS must out-eliminate RMM on gcc: TPS {tps:.3} vs RMM {rmm:.3}"
    );
}

#[test]
fn fig14_shape_smt_hurts_baseline_more_than_tps() {
    let config = |mech| {
        MachineConfig::for_mechanism(mech).with_memory(2 * SuiteScale::Test.recommended_memory())
    };
    let smt_run = |mech| {
        let a = build("xsbench", SuiteScale::Test);
        let b = build("xsbench", SuiteScale::Test);
        run_smt(config(mech), a, b).primary
    };
    let thp_solo = run("xsbench", Mechanism::Thp);
    let thp_smt = smt_run(Mechanism::Thp);
    let tps_smt = smt_run(Mechanism::Tps);
    assert!(thp_smt.mem.l1_misses() >= thp_solo.mem.l1_misses());
    assert!(tps_smt.mem.l1_misses() < thp_smt.mem.l1_misses());
}

#[test]
fn fig15_shape_fragmented_coverage_declines_with_size() {
    let mut buddy = BuddyAllocator::new(512 << 20);
    Fragmenter::new(FragmentParams::default()).run(&mut buddy);
    let hist = buddy.histogram();
    let cov: Vec<f64> = (0..=12)
        .map(|k| hist.coverage(tps::core::PageOrder::new(k).unwrap()))
        .collect();
    assert_eq!(cov[0], 1.0);
    for w in cov.windows(2) {
        assert!(w[0] >= w[1] - 1e-12, "coverage must be monotone");
    }
    assert!(cov[12] < 0.8, "16M coverage must show fragmentation");
}

#[test]
fn fig16_shape_tps_still_helps_under_fragmentation_with_locality() {
    let fragmented = || {
        let mut buddy = BuddyAllocator::new(512 << 20);
        Fragmenter::new(FragmentParams {
            target_free_fraction: 0.6,
            ..Default::default()
        })
        .run(&mut buddy);
        buddy
    };
    let base = run_with("xsbench", Mechanism::Thp, |c| {
        c.with_initial_memory(fragmented())
    });
    let tps = run_with("xsbench", Mechanism::Tps, |c| {
        c.with_initial_memory(fragmented())
    });
    if base.mem.l1_misses() > 1000 {
        let elim = tps.l1_misses_eliminated_vs(&base);
        assert!(
            elim > 0.0,
            "some benefit must survive fragmentation: {elim}"
        );
    }
}

#[test]
fn fig17_shape_tps_system_work_is_comparable_to_thp() {
    // The paper's argument: system time is negligible, so even a large
    // constant-factor increase from TPS bookkeeping would not matter. We
    // check the constant factor directly: TPS OS cycles per resident page
    // stay within a small multiple of THP's.
    let thp = run("xsbench", Mechanism::Thp);
    let tps = run("xsbench", Mechanism::Tps);
    let per_page =
        |s: &tps::sim::RunStats| s.os.op_cycles as f64 / (s.resident_bytes >> 12).max(1) as f64;
    let ratio = per_page(&tps) / per_page(&thp);
    assert!(
        ratio < 3.0,
        "TPS system work per page {}x THP's — far beyond the paper's margin",
        ratio
    );
}

#[test]
fn fig18_shape_tps_uses_few_pages_of_many_sizes() {
    let tps = run("xsbench", Mechanism::Tps);
    let total: u64 = tps.page_census.values().sum();
    let only4k = run("xsbench", Mechanism::Only4K);
    let base_pages: u64 = only4k.page_census.values().sum();
    assert!(
        total * 100 < base_pages,
        "TPS needs 100x fewer pages: {total} vs {base_pages}"
    );
}

#[test]
fn virtualization_amplifies_walk_cost() {
    let native = run("xsbench", Mechanism::Thp);
    let virt = run_with("xsbench", Mechanism::Thp, |mut c| {
        c.virtualized = true;
        c
    });
    assert!(virt.full_walk_refs > native.full_walk_refs);
    assert_eq!(virt.mem.l1_misses(), native.mem.l1_misses());
}
