//! End-to-end integration: the full benchmark suite under every mechanism,
//! with translation verification enabled — every TLB-provided translation
//! is cross-checked against the page table on every access.

use tps::sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps::wl::{build, suite_names, SuiteScale};

fn run(name: &str, mech: Mechanism) -> tps::sim::RunStats {
    let config = MachineConfig::for_mechanism(mech)
        .with_memory(SuiteScale::Test.recommended_memory())
        .with_verification();
    MachineBuilder::new(config)
        .tenant(TenantSpec::boxed(build(name, SuiteScale::Test)))
        .build()
        .expect("one tenant builds")
        .run()
        .into_solo()
}

#[test]
fn every_benchmark_translates_correctly_under_every_mechanism() {
    for name in suite_names() {
        for mech in [
            Mechanism::Only4K,
            Mechanism::Thp,
            Mechanism::Colt,
            Mechanism::Rmm,
            Mechanism::Tps,
            Mechanism::TpsEager,
        ] {
            // with_verification() asserts translation correctness inside.
            let stats = run(name, mech);
            assert!(stats.mem.accesses > 0, "{name}/{mech}");
            assert_eq!(
                stats.mem.l1_hits
                    + stats.mem.stlb_hits
                    + stats.mem.range_hits
                    + stats.mem.l2_misses,
                stats.mem.accesses,
                "{name}/{mech}: outcome counts must partition accesses"
            );
        }
    }
}

#[test]
fn tps_dominates_thp_on_l1_misses_across_the_suite() {
    for name in suite_names() {
        let thp = run(name, Mechanism::Thp);
        let tps = run(name, Mechanism::Tps);
        // Allow a handful of misses of slack: at test scale some baselines
        // are already near-perfect and TPS's different fill order can cost
        // a few compulsory-adjacent misses.
        assert!(
            tps.mem.l1_misses() <= thp.mem.l1_misses() + 16,
            "{name}: TPS {} vs THP {}",
            tps.mem.l1_misses(),
            thp.mem.l1_misses()
        );
    }
}

#[test]
fn tps_eliminates_almost_all_walk_refs() {
    for name in suite_names() {
        let thp = run(name, Mechanism::Thp);
        let tps = run(name, Mechanism::Tps);
        let elim = tps.walk_refs_eliminated_vs(&thp);
        assert!(
            elim > 0.5 || thp.walk_refs < 100,
            "{name}: walk-ref elimination only {:.1}% ({} vs {})",
            100.0 * elim,
            tps.walk_refs,
            thp.walk_refs
        );
    }
}

#[test]
fn rmm_walks_less_than_thp() {
    for name in suite_names() {
        let thp = run(name, Mechanism::Thp);
        let rmm = run(name, Mechanism::Rmm);
        assert!(
            rmm.full_walk_refs <= thp.full_walk_refs,
            "{name}: RMM {} vs THP {}",
            rmm.full_walk_refs,
            thp.full_walk_refs
        );
    }
}

#[test]
fn thp_census_is_conventional_only() {
    for name in suite_names() {
        let thp = run(name, Mechanism::Thp);
        for order in thp.page_census.keys() {
            assert!(!order.is_tailored(), "{name}: THP produced a {order} page");
        }
    }
}

#[test]
fn tps_conservative_threshold_never_bloats() {
    for name in suite_names() {
        let only4k = run(name, Mechanism::Only4K);
        let tps = run(name, Mechanism::Tps);
        assert_eq!(
            tps.resident_bytes, only4k.resident_bytes,
            "{name}: 100% promotion threshold guarantees 4K-identical residency"
        );
    }
}

#[test]
fn deterministic_across_identical_runs() {
    for mech in [Mechanism::Thp, Mechanism::Tps] {
        let a = run("xsbench", mech);
        let b = run("xsbench", mech);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.walk_refs, b.walk_refs);
        assert_eq!(a.page_census, b.page_census);
    }
}
