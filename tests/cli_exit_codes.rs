//! Pins the `tps-run` exit-code contract:
//!
//! | code | meaning                                        |
//! |------|------------------------------------------------|
//! | 0    | every cell completed                           |
//! | 2    | usage error                                    |
//! | 3    | one or more cells failed (JSON still written)  |
//! | 4    | checkpoint error                               |
//! | 5    | halted by `--halt-after` (crash simulation)    |
//! | 6    | checkpoint corruption detected on resume       |

use std::path::PathBuf;
use std::process::Command;

fn tps_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tps_run"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn clean_run_exits_zero() {
    let status = tps_run()
        .args(["--bench", "gups", "--mech", "thp", "--scale", "test"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
}

#[test]
fn usage_error_exits_two() {
    let status = tps_run().arg("--no-such-flag").status().unwrap();
    assert_eq!(status.code(), Some(2));
}

#[test]
fn failing_cells_exit_three_but_still_write_full_json() {
    // A zero-millisecond deadline times every cell out; the run must
    // still write the complete report (with structured failure entries)
    // before exiting with the distinct cell-failure code.
    let dir = temp_dir("tps-cli-exit-three");
    let json = dir.join("report.json");
    let status = tps_run()
        .args(["--bench", "gups", "--mech", "thp", "--mech", "tps"])
        .args(["--scale", "test", "--cell-timeout", "0"])
        .args(["--json", json.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(3));
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"ok\": false"));
    assert!(doc.contains("\"cause\": \"timeout\""));
    // Both cells are present: partial output is complete output.
    assert!(doc.contains("\"THP\"") && doc.contains("\"TPS\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_checkpoint_exits_four() {
    let status = tps_run()
        .args(["--bench", "gups", "--mech", "thp", "--scale", "test"])
        .args(["--resume", "/nonexistent/journal.ckpt"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(4));
}

#[test]
fn corrupt_journal_exits_six_and_salvage_recovers() {
    let dir = temp_dir("tps-cli-exit-six");
    let ckpt = dir.join("run.ckpt");
    let full = dir.join("full.json");
    let salvaged = dir.join("salvaged.json");
    std::fs::remove_file(&ckpt).ok();
    let base = [
        "--bench",
        "gups",
        "--mech",
        "thp",
        "--mech",
        "tps",
        "--scale",
        "test",
        "--threads",
        "1",
    ];

    let status = tps_run()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .args(["--json"])
        .arg(&full)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));

    // Flip one byte in the middle of the first entry line: storage lied.
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let entry_len = bytes[header_end..]
        .iter()
        .position(|&b| b == b'\n')
        .unwrap();
    bytes[header_end + entry_len / 2] ^= 0x01;
    std::fs::write(&ckpt, &bytes).unwrap();

    let status = tps_run()
        .args(base)
        .args(["--resume"])
        .arg(&ckpt)
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(6),
        "detected corruption has its own exit code"
    );

    // Salvage mode drops the damaged entry, recomputes its cell, and
    // still produces the full (correct) report.
    let output = tps_run()
        .args(base)
        .args(["--resume-salvage"])
        .arg(&ckpt)
        .args(["--json"])
        .arg(&salvaged)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(0), "salvage resume completes");
    let doc = std::fs::read_to_string(&salvaged).unwrap();
    assert!(
        doc.contains("\"salvage\""),
        "salvage is logged in the report"
    );
    assert!(doc.contains("\"dropped_entries\": 1"));
    // Cell content matches the uninterrupted run; only the salvage block
    // (and nothing else) distinguishes the documents.
    let full_doc = std::fs::read_to_string(&full).unwrap();
    let salvage_block = "  \"salvage\": {\n    \"dropped_entries\": 1\n  },\n";
    assert!(doc.contains(salvage_block), "{doc}");
    assert_eq!(doc.replacen(salvage_block, "", 1), full_doc);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_refuses_to_clobber_without_force() {
    let dir = temp_dir("tps-cli-clobber");
    let ckpt = dir.join("run.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let base = [
        "--bench",
        "gups",
        "--mech",
        "thp",
        "--scale",
        "test",
        "--threads",
        "1",
    ];

    let status = tps_run()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));

    // The journal now holds entries: a second --checkpoint run refuses.
    let output = tps_run()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(4), "clobber refused");
    assert!(String::from_utf8_lossy(&output.stderr).contains("--force-checkpoint"));

    let status = tps_run()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .args(["--force-checkpoint"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "--force-checkpoint overrides");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn halt_after_exits_five_and_resume_completes_byte_identically() {
    let dir = temp_dir("tps-cli-halt-resume");
    let ckpt = dir.join("run.ckpt");
    std::fs::remove_file(&ckpt).ok();
    let full = dir.join("full.json");
    let resumed = dir.join("resumed.json");
    let base = [
        "--bench",
        "gups",
        "--mech",
        "4k",
        "--mech",
        "thp",
        "--mech",
        "tps",
        "--scale",
        "test",
        "--threads",
        "1",
    ];

    let status = tps_run()
        .args(base)
        .args(["--json"])
        .arg(&full)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));

    // Crash simulation: journal the run, halt after one journaled cell.
    let status = tps_run()
        .args(base)
        .args(["--checkpoint"])
        .arg(&ckpt)
        .args(["--halt-after", "1"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(5), "halt code distinguishes the kill");

    // Resume finishes the matrix; its JSON matches the uninterrupted run.
    let status = tps_run()
        .args(base)
        .args(["--resume"])
        .arg(&ckpt)
        .args(["--json"])
        .arg(&resumed)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0));
    assert_eq!(
        std::fs::read(&full).unwrap(),
        std::fs::read(&resumed).unwrap(),
        "resumed JSON differs from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
