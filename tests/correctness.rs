//! Shadow-model correctness: a workload that tracks what it wrote where,
//! verifying the simulated memory system preserves the mapping contract
//! through promotions, munmap/remap cycles and SMT sharing.

use tps::core::{VirtAddr, BASE_PAGE_SIZE, GIB};
use tps::sim::{run_smt, Machine, MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps::wl::{Event, Workload, WorkloadProfile};
use tps_core::rng::Rng;

/// A machine with one externally-driven tenant, for the step-API tests.
fn stepper(config: MachineConfig) -> Machine {
    MachineBuilder::new(config)
        .tenant(TenantSpec::external("driver"))
        .build()
        .expect("one tenant builds")
}

/// A workload whose accesses are chosen adversarially: random sizes,
/// overlapping lifetimes, map/unmap churn.
struct Churn {
    rng: Rng,
    live: Vec<(u32, u64)>, // (region id, bytes)
    next_region: u32,
    ops: u32,
    pending: Vec<Event>,
}

impl Churn {
    fn new(seed: u64, ops: u32) -> Self {
        Churn {
            rng: Rng::new(seed),
            live: Vec::new(),
            next_region: 0,
            ops,
            pending: Vec::new(),
        }
    }
}

impl Workload for Churn {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile::named("churn")
    }

    fn next_event(&mut self) -> Option<Event> {
        if let Some(e) = self.pending.pop() {
            return Some(e);
        }
        if self.ops == 0 {
            return None;
        }
        self.ops -= 1;
        let roll = self.rng.next_f64();
        if self.live.is_empty() || roll < 0.1 {
            // Map a randomly sized region (4K .. 8M, odd sizes included).
            let bytes = BASE_PAGE_SIZE + self.rng.below(8 << 20);
            let region = self.next_region;
            self.next_region += 1;
            self.live.push((region, bytes));
            Some(Event::Mmap { region, bytes })
        } else if roll < 0.15 && self.live.len() > 1 {
            let i = self.rng.below(self.live.len() as u64) as usize;
            let (region, _) = self.live.swap_remove(i);
            Some(Event::Munmap { region })
        } else {
            let (region, bytes) = self.live[self.rng.below(self.live.len() as u64) as usize];
            // A burst of accesses, mixing locality and randomness.
            let base = self.rng.below(bytes);
            for k in 0..4u64 {
                let offset = (base + k * 8) % bytes;
                self.pending.push(Event::Access {
                    region,
                    offset,
                    write: self.rng.chance(0.5),
                });
            }
            self.next_event()
        }
    }
}

#[test]
fn churn_translates_correctly_under_every_mechanism() {
    for mech in [
        Mechanism::Only4K,
        Mechanism::Thp,
        Mechanism::Colt,
        Mechanism::Rmm,
        Mechanism::Tps,
        Mechanism::TpsEager,
    ] {
        let config = MachineConfig::for_mechanism(mech)
            .with_memory(512 << 20)
            .with_verification();
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(Churn::new(0xc0ffee, 3000)))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
        assert!(stats.mem.accesses > 1000, "{mech}");
        assert!(stats.os.munmaps > 0, "{mech}: churn must unmap");
        assert!(stats.os.shootdowns > 0, "{mech}: unmaps require shootdowns");
    }
}

#[test]
fn memory_is_fully_reclaimed_after_unmapping_everything() {
    struct MapAll(Vec<Event>);
    impl Workload for MapAll {
        fn profile(&self) -> WorkloadProfile {
            WorkloadProfile::named("mapall")
        }
        fn next_event(&mut self) -> Option<Event> {
            self.0.pop()
        }
    }
    let mut events = Vec::new();
    // Unmaps (reverse order because we pop).
    for r in 0..8u32 {
        events.push(Event::Munmap { region: r });
    }
    for r in (0..8u32).rev() {
        for page in (0..64u64).rev() {
            events.push(Event::Access {
                region: r,
                offset: page * BASE_PAGE_SIZE,
                write: true,
            });
        }
        events.push(Event::Mmap {
            region: r,
            bytes: 64 * BASE_PAGE_SIZE,
        });
    }
    for mech in [Mechanism::Thp, Mechanism::Tps, Mechanism::Rmm] {
        let config = MachineConfig::for_mechanism(mech)
            .with_memory(64 << 20)
            .with_verification();
        let mut machine = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(MapAll(events.clone())))
            .build()
            .expect("one tenant builds");
        machine.run();
        let os = machine.os();
        assert_eq!(os.process(0).resident_bytes(), 0, "{mech}");
        // Everything except background-noise blocks is free again.
        assert!(
            os.buddy().used_bytes() <= 8 << 20,
            "{mech}: {} bytes leaked",
            os.buddy().used_bytes()
        );
        os.buddy().check_invariants().unwrap();
    }
}

#[test]
fn smt_churn_keeps_address_spaces_isolated() {
    let config = MachineConfig::for_mechanism(Mechanism::Tps)
        .with_memory(GIB)
        .with_verification();
    // verify_translations catches any cross-ASID TLB pollution.
    let stats = run_smt(config, Churn::new(1, 2000), Churn::new(2, 2000));
    assert!(stats.primary.mem.accesses > 1000);
    assert!(stats.sibling.mem.accesses > 1000);
}

#[test]
fn step_api_supports_custom_driving() {
    let config = MachineConfig::for_mechanism(Mechanism::Tps)
        .with_memory(64 << 20)
        .with_verification();
    let mut machine = stepper(config);
    machine
        .step(
            0,
            Event::Mmap {
                region: 9,
                bytes: 1 << 20,
            },
        )
        .expect("scripted event is well-formed");
    for i in 0..256u64 {
        machine
            .step(
                0,
                Event::Access {
                    region: 9,
                    offset: i * BASE_PAGE_SIZE,
                    write: true,
                },
            )
            .expect("scripted event is well-formed");
    }
    assert_eq!(machine.counters(0).full.accesses, 256);
    // The full region is touched: TPS promoted it to a single 1 MB page.
    let census = machine.os().process(0).page_table().page_census();
    assert_eq!(census.len(), 1);
    let (order, count) = census.iter().next().unwrap();
    assert_eq!(order.bytes(), 1 << 20);
    assert_eq!(*count, 1);
}

#[test]
fn virtual_addresses_never_leak_between_regions() {
    // Two regions; writes in one must never translate into the other.
    let config = MachineConfig::for_mechanism(Mechanism::Tps)
        .with_memory(64 << 20)
        .with_verification();
    let mut machine = stepper(config);
    machine
        .step(
            0,
            Event::Mmap {
                region: 0,
                bytes: 256 << 10,
            },
        )
        .expect("scripted event is well-formed");
    machine
        .step(
            0,
            Event::Mmap {
                region: 1,
                bytes: 256 << 10,
            },
        )
        .expect("scripted event is well-formed");
    for i in 0..64u64 {
        machine
            .step(
                0,
                Event::Access {
                    region: 0,
                    offset: i * BASE_PAGE_SIZE,
                    write: true,
                },
            )
            .expect("scripted event is well-formed");
        machine
            .step(
                0,
                Event::Access {
                    region: 1,
                    offset: i * BASE_PAGE_SIZE,
                    write: true,
                },
            )
            .expect("scripted event is well-formed");
    }
    let pt = machine.os().process(0).page_table();
    // Census: both regions promoted independently; physical ranges disjoint.
    let vma_bases: Vec<VirtAddr> = machine
        .os()
        .process(0)
        .address_space()
        .iter()
        .map(|v| v.base())
        .collect();
    assert_eq!(vma_bases.len(), 2);
    let pa0 = pt.translate(vma_bases[0]).unwrap();
    let pa1 = pt.translate(vma_bases[1]).unwrap();
    assert_ne!(
        pa0.align_down(18),
        pa1.align_down(18),
        "distinct physical blocks"
    );
}

#[test]
fn page_merging_keeps_translations_valid_through_the_machine() {
    let config = MachineConfig::for_mechanism(Mechanism::Only4K)
        .with_memory(64 << 20)
        .with_verification();
    let mut machine = stepper(config);
    machine
        .step(
            0,
            Event::Mmap {
                region: 0,
                bytes: 256 << 10,
            },
        )
        .expect("scripted event is well-formed");
    for i in 0..64u64 {
        machine
            .step(
                0,
                Event::Access {
                    region: 0,
                    offset: i * BASE_PAGE_SIZE,
                    write: true,
                },
            )
            .expect("scripted event is well-formed");
    }
    let merges = machine.merge_pages(0);
    assert!(merges > 0, "contiguous 4K faults must merge");
    // Re-access everything: verification asserts every translation, and
    // stale (pre-merge) TLB entries must still be correct, as the paper
    // argues merges need no shootdowns.
    for i in 0..64u64 {
        machine
            .step(
                0,
                Event::Access {
                    region: 0,
                    offset: i * BASE_PAGE_SIZE,
                    write: false,
                },
            )
            .expect("scripted event is well-formed");
    }
    let census = machine.os().process(0).page_table().page_census();
    assert!(census.keys().any(|o| o.get() >= 4), "census {census:?}");
}
