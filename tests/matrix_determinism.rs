//! Integration gate for the experiment runner's determinism contract:
//! the aggregated JSON of a parallel run must be byte-identical to the
//! serial run of the same spec, and a panicking cell must surface as a
//! per-cell error without aborting the rest of the matrix.

use tps::prelude::*;

/// The pinned seed every test in this file uses, so the gate exercises
/// one fixed matrix rather than whatever the default happens to be.
const PINNED_SEED: u64 = 0x7e57_0bad_cafe_f00d;

fn gups_matrix(threads: usize) -> ExperimentReport {
    ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Only4K, Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(PINNED_SEED)
        .threads(threads)
        .build()
        .expect("static spec is valid")
        .run()
}

#[test]
fn parallel_json_is_byte_identical_to_serial() {
    let serial = gups_matrix(1).to_json();
    let parallel = gups_matrix(4).to_json();
    assert_eq!(serial, parallel, "thread count changed the report bytes");
    // The document is versioned and carries the pinned seed, not the
    // thread count.
    assert!(serial.contains(&format!("\"schema\": \"{REPORT_SCHEMA}\"")));
    assert!(serial.contains(&format!("\"version\": {REPORT_VERSION}")));
    assert!(serial.contains(&format!("\"seed\": {PINNED_SEED}")));
    assert!(!serial.contains("thread"));
}

#[test]
fn parallel_report_matches_serial_cell_for_cell() {
    let serial = gups_matrix(1);
    let parallel = gups_matrix(4);
    assert_eq!(serial.cells().len(), 3);
    for (a, b) in serial.cells().iter().zip(parallel.cells()) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.mechanism, b.mechanism);
        assert_eq!(a.seed, b.seed);
        let (sa, sb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(sa.mem.accesses, sb.mem.accesses);
        assert_eq!(sa.mem.l1_misses(), sb.mem.l1_misses());
        assert_eq!(sa.walk_refs, sb.walk_refs);
        assert_eq!(sa.os.faults, sb.os.faults);
    }
}

#[test]
fn worker_panic_surfaces_as_per_cell_error() {
    // 1 MiB of physical memory cannot hold even the test-scale GUPS
    // table, so every cell's machine panics out of physical memory. The
    // pool must catch each panic and keep running the remaining cells.
    let report = ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(PINNED_SEED)
        .memory(1 << 20)
        .threads(2)
        .build()
        .expect("static spec is valid")
        .run();
    assert_eq!(report.cells().len(), 2, "no cell was dropped");
    assert_eq!(report.error_count(), 2);
    for cell in report.cells() {
        match &cell.result {
            Err(TpsError::WorkerPanic { detail }) => {
                assert!(detail.contains("gups"), "panic names the cell: {detail}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert!(cell.derived.is_none(), "failed cells carry no metrics");
    }
    let json = report.to_json();
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("worker thread panicked"));
}
