//! Integration gate for the experiment runner's determinism contract:
//! the aggregated JSON of a parallel run must be byte-identical to the
//! serial run of the same spec — including under fault injection with
//! retries — a memory-starved cell must contain the kill as a structured
//! tenant outcome without aborting the rest of the matrix, and a resumed
//! run must reproduce an uninterrupted run byte-for-byte.

use tps::core::{FaultPlanConfig, TenantFaultCause};
use tps::prelude::*;
use tps::sim::{RunOptions, TenantOutcome};

/// The pinned seed every test in this file uses, so the gate exercises
/// one fixed matrix rather than whatever the default happens to be.
const PINNED_SEED: u64 = 0x7e57_0bad_cafe_f00d;

fn gups_matrix(threads: usize) -> ExperimentReport {
    ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Only4K, Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(PINNED_SEED)
        .threads(threads)
        .build()
        .expect("static spec is valid")
        .run()
}

#[test]
fn parallel_json_is_byte_identical_to_serial() {
    let serial = gups_matrix(1).to_json();
    let parallel = gups_matrix(4).to_json();
    assert_eq!(serial, parallel, "thread count changed the report bytes");
    // The document is versioned and carries the pinned seed, not the
    // thread count.
    assert!(serial.contains(&format!("\"schema\": \"{REPORT_SCHEMA}\"")));
    assert!(serial.contains(&format!("\"version\": {REPORT_VERSION}")));
    assert!(serial.contains(&format!("\"seed\": {PINNED_SEED}")));
    assert!(!serial.contains("thread"));
}

#[test]
fn parallel_report_matches_serial_cell_for_cell() {
    let serial = gups_matrix(1);
    let parallel = gups_matrix(4);
    assert_eq!(serial.cells().len(), 3);
    for (a, b) in serial.cells().iter().zip(parallel.cells()) {
        assert_eq!(a.benchmark, b.benchmark);
        assert_eq!(a.mechanism, b.mechanism);
        assert_eq!(a.seed, b.seed);
        let (sa, sb) = (
            &a.result.as_ref().unwrap().global,
            &b.result.as_ref().unwrap().global,
        );
        assert_eq!(sa.mem.accesses, sb.mem.accesses);
        assert_eq!(sa.mem.l1_misses(), sb.mem.l1_misses());
        assert_eq!(sa.walk_refs, sb.walk_refs);
        assert_eq!(sa.os.faults, sb.os.faults);
    }
}

#[test]
fn memory_starved_cell_is_contained_not_failed() {
    // 1 MiB of physical memory cannot hold even the test-scale GUPS
    // table, so every cell's machine kills its tenant at the first
    // allocation it cannot back. The kill is containment, not a cell
    // failure: the cell completes with a structured `Killed` outcome
    // and the rest of the matrix keeps running.
    let report = ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(PINNED_SEED)
        .memory(1 << 20)
        .threads(2)
        .build()
        .expect("static spec is valid")
        .run();
    assert_eq!(report.cells().len(), 2, "no cell was dropped");
    assert_eq!(report.error_count(), 0, "containment is not a failure");
    for cell in report.cells() {
        let machine = cell.result.as_ref().expect("cell must complete");
        assert_eq!(machine.killed_count(), 1);
        match machine.outcome(0) {
            TenantOutcome::Killed { cause, .. } => {
                assert_eq!(cause, TenantFaultCause::Oom)
            }
            TenantOutcome::Completed => panic!("tenant must be killed"),
        }
    }
    let json = report.to_json();
    assert!(json.contains("\"outcome\": \"killed\""));
    assert!(json.contains("\"cause\": \"oom\""));
    assert!(!json.contains("\"cause\": \"panic\""));
}

/// A spec with faults armed on every OS and hardware site plus a retry
/// budget — the resilient configuration the determinism contract must
/// also hold for.
fn faulted_spec(threads: usize) -> ExperimentSpec {
    let plan = FaultPlanConfig {
        buddy_alloc: 0.02,
        reserve_span: 0.05,
        compaction_step: 0.05,
        shootdown_deliver: 0.05,
        walk_step: 0.02,
        alias_install: 0.02,
        mmu_cache_fill: 0.02,
        any_size_fill: 0.02,
        any_size_evict: 0.02,
        stlb_probe: 0.02,
        ..FaultPlanConfig::disabled(PINNED_SEED)
    };
    ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(PINNED_SEED)
        .faults(plan)
        .retries(2)
        .threads(threads)
}

#[test]
fn faulted_retried_runs_stay_byte_identical_across_thread_counts() {
    let serial = faulted_spec(1).build().expect("valid spec").run();
    let parallel = faulted_spec(4).build().expect("valid spec").run();
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "fault injection with retries broke the determinism contract"
    );
    // The faulted run did real work and absorbed real hardware faults.
    let stats = serial
        .stats("gups", Mechanism::Tps)
        .expect("faulted cell still completes");
    assert!(stats.hw_faults.total() > 0, "{:?}", stats.hw_faults);
}

#[test]
fn resumed_run_matches_uninterrupted_run_byte_for_byte() {
    let dir = std::env::temp_dir().join("tps-matrix-determinism-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("matrix.ckpt");

    let uninterrupted = gups_matrix(2).to_json();

    // Journal a full run, then truncate the journal to the header plus
    // one completed cell — the deterministic stand-in for a kill.
    let matrix = ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Only4K, Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(PINNED_SEED)
        .threads(2)
        .build()
        .expect("static spec is valid");
    matrix
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            ..RunOptions::default()
        })
        .expect("journal is writable");
    let text = std::fs::read_to_string(&path).unwrap();
    let partial: Vec<&str> = text.lines().take(2).collect();
    std::fs::write(&path, format!("{}\n", partial.join("\n"))).unwrap();

    let resumed = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            ..RunOptions::default()
        })
        .expect("journal is readable")
        .to_json();
    assert_eq!(resumed, uninterrupted, "resume changed the report bytes");
    std::fs::remove_dir_all(&dir).ok();
}
