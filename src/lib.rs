//! # tps — Tailored Page Sizes (ISCA 2020) reproduction
//!
//! Facade crate re-exporting the full simulation stack:
//!
//! * [`core`] — addresses, page orders, the TPS PTE encoding.
//! * [`mem`] — buddy allocator, fragmentation engine, compaction,
//!   frame reservations.
//! * [`pt`] — 4-level radix page table, page walker, alias PTEs, MMU caches.
//! * [`tlb`] — TLB structures (incl. the any-size TPS TLB), CoLT, Range TLB.
//! * [`os`] — address spaces, paging policies (4K-only / THP / TPS / RMM),
//!   fault handling.
//! * [`wl`] — deterministic workload generators (GUPS, Graph500, XSBench,
//!   DBx1000, SPEC17-like kernels).
//! * [`sim`] — the machine driver, SMT and virtualization models, and the
//!   `T = T_IDEAL + T_L1DTLBM + T_PW` timing model.
//!
//! ## Quickstart
//!
//! ```
//! use tps::prelude::*;
//!
//! // Simulate a small GUPS run under the TPS paging policy.
//! let config = MachineConfig::default().with_policy(PolicyKind::Tps);
//! let mut machine = Machine::new(config);
//! let mut wl = Gups::new(GupsParams { table_bytes: 8 << 20, updates: 20_000, seed: 1 });
//! let stats = machine.run(&mut wl);
//! assert!(stats.mem.accesses > 0);
//! println!("L1 hit rate: {:.2}%", 100.0 * stats.mem.l1_hit_rate());
//! ```
//!
//! ## Experiment matrices
//!
//! Whole (benchmark × mechanism) sweeps go through the declarative
//! experiment API; the matrix runs on a worker pool with per-cell pinned
//! seeds, and the report (including its JSON form) is byte-identical at
//! any thread count:
//!
//! ```
//! use tps::prelude::*;
//!
//! let matrix = ExperimentSpec::new().bench("gups").all_mechanisms().scale(SuiteScale::Test).build()?;
//! let report = matrix.run();
//! assert!(report.stats("gups", Mechanism::Tps).is_some());
//! # Ok::<(), tps::core::TpsError>(())
//! ```

pub use tps_core as core;
pub use tps_mem as mem;
pub use tps_os as os;
pub use tps_pt as pt;
pub use tps_sim as sim;
pub use tps_tlb as tlb;
pub use tps_wl as wl;

/// Commonly used items, importable with `use tps::prelude::*`.
pub mod prelude {
    pub use tps_core::{PageOrder, PageSize, PhysAddr, Pte, PteFlags, TpsError, VirtAddr};
    pub use tps_os::{AliasPolicy, PolicyKind};
    pub use tps_sim::{
        CellFailure, CellReport, DerivedMetrics, ExperimentCell, ExperimentMatrix,
        ExperimentReport, ExperimentSpec, FailureCause, HwFaultStats, Machine, MachineConfig,
        Mechanism, RunOptions, RunStats, DEFAULT_EXPERIMENT_SEED, REPORT_SCHEMA, REPORT_VERSION,
    };
    pub use tps_wl::{
        Dbx1000, Dbx1000Params, Event, Graph500, Graph500Params, Gups, GupsParams, Spec17Kernel,
        SuiteScale, Workload, XsBench, XsBenchParams,
    };
}
