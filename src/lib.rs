//! # tps — Tailored Page Sizes (ISCA 2020) reproduction
//!
//! Facade crate re-exporting the full simulation stack:
//!
//! * [`core`] — addresses, page orders, the TPS PTE encoding.
//! * [`mem`] — buddy allocator, fragmentation engine, compaction,
//!   frame reservations.
//! * [`pt`] — 4-level radix page table, page walker, alias PTEs, MMU caches.
//! * [`tlb`] — TLB structures (incl. the any-size TPS TLB), CoLT, Range TLB.
//! * [`os`] — address spaces, paging policies (4K-only / THP / TPS / RMM),
//!   fault handling.
//! * [`wl`] — deterministic workload generators (GUPS, Graph500, XSBench,
//!   DBx1000, SPEC17-like kernels).
//! * [`sim`] — the multi-tenant machine driver, SMT and virtualization
//!   models, and the `T = T_IDEAL + T_L1DTLBM + T_PW` timing model.
//!
//! ## Quickstart
//!
//! ```
//! use tps::prelude::*;
//!
//! // Simulate a small GUPS run under the TPS paging policy.
//! let config = MachineConfig::default().with_policy(PolicyKind::Tps);
//! let wl = Gups::new(GupsParams { table_bytes: 8 << 20, updates: 20_000, seed: 1 });
//! let stats = MachineBuilder::new(config)
//!     .tenant(TenantSpec::workload(wl))
//!     .build()?
//!     .run()
//!     .into_solo();
//! assert!(stats.mem.accesses > 0);
//! println!("L1 hit rate: {:.2}%", 100.0 * stats.mem.l1_hit_rate());
//! # Ok::<(), tps::core::TpsError>(())
//! ```
//!
//! Several tenants share one machine — one buddy allocator, one TLB
//! hierarchy, ASID-tagged entries with real shootdown cross-talk:
//!
//! ```
//! use tps::prelude::*;
//!
//! let config = MachineConfig::default().with_memory(128 << 20);
//! let stats = MachineBuilder::new(config)
//!     .tenants((0..4).map(|i| TenantSpec::suite("gups", SuiteScale::Test, 100 + i)))
//!     .scheduler(Scheduler::RoundRobin)
//!     .build()?
//!     .run();
//! assert_eq!(stats.tenant_count(), 4);
//! let shared: u64 = stats.per_tenant.iter().map(|t| t.mem.accesses).sum();
//! assert_eq!(shared, stats.global.mem.accesses);
//! # Ok::<(), tps::core::TpsError>(())
//! ```
//!
//! ## Experiment matrices
//!
//! Whole (benchmark × mechanism) sweeps go through the declarative
//! experiment API; the matrix runs on a worker pool with per-cell pinned
//! seeds, and the report (including its JSON form) is byte-identical at
//! any thread count:
//!
//! ```
//! use tps::prelude::*;
//!
//! let matrix = ExperimentSpec::new().bench("gups").all_mechanisms().scale(SuiteScale::Test).build()?;
//! let report = matrix.run();
//! assert!(report.stats("gups", Mechanism::Tps).is_some());
//! # Ok::<(), tps::core::TpsError>(())
//! ```

pub use tps_core as core;
pub use tps_mem as mem;
pub use tps_os as os;
pub use tps_pt as pt;
pub use tps_sim as sim;
pub use tps_tlb as tlb;
pub use tps_wl as wl;

/// Commonly used items, importable with `use tps::prelude::*`.
pub mod prelude {
    pub use tps_core::{
        PageOrder, PageSize, PhysAddr, Pte, PteFlags, TenantFault, TenantFaultCause, TpsError,
        VirtAddr,
    };
    pub use tps_os::{AliasPolicy, PolicyKind};
    pub use tps_sim::{
        CellFailure, CellReport, DerivedMetrics, ExperimentCell, ExperimentMatrix,
        ExperimentReport, ExperimentSpec, FailureCause, HwFaultStats, Machine, MachineBuilder,
        MachineConfig, MachineRunStats, Mechanism, OnOom, RunOptions, RunStats, Scheduler,
        TenantCount, TenantOutcome, TenantSpec, DEFAULT_EXPERIMENT_SEED, MAX_TENANTS,
        REPORT_SCHEMA, REPORT_VERSION,
    };
    pub use tps_wl::{
        Dbx1000, Dbx1000Params, Event, Graph500, Graph500Params, Gups, GupsParams, Spec17Kernel,
        SuiteScale, Workload, XsBench, XsBenchParams,
    };
}
