//! `tps-run`: command-line driver for the TPS simulator.
//!
//! ```text
//! tps-run [--bench NAME]... [--mech MECH]... [--all] [--matrix]
//!         [--scale test|small|paper] [--threads N] [--seed S]
//!         [--smt] [--virtualized] [--five-level] [--threshold F]
//!         [--verify] [--json PATH|-]
//! ```
//!
//! Flags build one declarative [`ExperimentSpec`]; the matrix of
//! (benchmark × mechanism) cells runs on a worker pool (`--threads`,
//! default = available parallelism) with per-cell pinned seeds, so the
//! output — including `--json` bytes — is identical at every thread
//! count. Examples:
//!
//! ```sh
//! tps-run --bench gups --all --scale small
//! tps-run --matrix --scale test --threads 8 --json report.json
//! tps-run --bench xsbench --mech tps --smt
//! ```

use tps::sim::{ExperimentReport, ExperimentSpec, Mechanism};
use tps::wl::{suite_names, SuiteScale};

/// Parsed command line: the spec plus output options.
struct Options {
    spec: ExperimentSpec,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tps-run [--bench NAME]... [--mech MECH]... [--all] [--matrix] \
         [--scale test|small|paper] [--threads N] [--seed S] [--smt] \
         [--virtualized] [--five-level] [--threshold F] [--verify] [--json PATH|-]\n\
         benchmarks: {}\n\
         mechanisms: {}",
        suite_names().join(", "),
        Mechanism::all()
            .iter()
            .map(|m| m.cli_name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut benches: Vec<String> = Vec::new();
    let mut mechs: Vec<Mechanism> = Vec::new();
    let mut matrix = false;
    let mut spec = ExperimentSpec::new();
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => benches.push(args.next().unwrap_or_else(|| usage())),
            "--mech" => {
                let m = args.next().unwrap_or_else(|| usage());
                match m.parse::<Mechanism>() {
                    Ok(mech) => mechs.push(mech),
                    Err(err) => {
                        eprintln!("{err}");
                        usage()
                    }
                }
            }
            "--all" => mechs.extend([
                Mechanism::Only4K,
                Mechanism::Thp,
                Mechanism::Colt,
                Mechanism::Rmm,
                Mechanism::Tps,
                Mechanism::TpsEager,
            ]),
            "--matrix" => matrix = true,
            "--scale" => {
                let s = args.next().unwrap_or_else(|| usage());
                match s.parse::<SuiteScale>() {
                    Ok(scale) => spec = spec.scale(scale),
                    Err(err) => {
                        eprintln!("{err}");
                        usage()
                    }
                }
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.threads(n);
            }
            "--seed" => {
                let s: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.seed(s);
            }
            "--smt" => spec = spec.smt(true),
            "--virtualized" => spec = spec.virtualized(true),
            "--five-level" => spec = spec.five_level(true),
            "--threshold" => {
                let v: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.threshold(v);
            }
            "--verify" => spec = spec.verify(true),
            "--json" => json = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if matrix {
        if benches.is_empty() {
            spec = spec.suite();
        } else {
            spec = spec.benches(benches);
        }
        if mechs.is_empty() {
            spec = spec.mechanisms([
                Mechanism::Thp,
                Mechanism::Colt,
                Mechanism::Rmm,
                Mechanism::Tps,
            ]);
        } else {
            spec = spec.mechanisms(mechs);
        }
    } else {
        if benches.is_empty() {
            benches.push("gups".into());
        }
        if mechs.is_empty() {
            mechs.push(Mechanism::Tps);
        }
        spec = spec.benches(benches).mechanisms(mechs);
    }
    Options { spec, json }
}

fn print_report(report: &ExperimentReport) {
    println!(
        "scale: {}   smt: {}   seed: {:#x}   baseline: {}",
        report.scale(),
        report.is_smt(),
        report.base_seed(),
        report
            .baseline_mechanism()
            .map_or("-".into(), |m| m.to_string())
    );
    println!(
        "{:>10} {:>10} {:>12} {:>9} {:>12} {:>9} {:>10} {:>8}",
        "benchmark",
        "mechanism",
        "L1 misses",
        "hit rate",
        "walk refs",
        "faults",
        "promotions",
        "speedup"
    );
    for cell in report.cells() {
        match &cell.result {
            Ok(stats) => {
                let speedup = cell
                    .derived
                    .and_then(|d| d.speedup_vs_baseline)
                    .map_or("-".into(), |s| format!("{s:.3}x"));
                println!(
                    "{:>10} {:>10} {:>12} {:>8.2}% {:>12} {:>9} {:>10} {:>8}",
                    cell.benchmark,
                    cell.mechanism.label(),
                    stats.mem.l1_misses(),
                    100.0 * stats.mem.l1_hit_rate(),
                    stats.walk_refs,
                    stats.os.faults,
                    stats.os.promotions,
                    speedup
                );
            }
            Err(err) => println!(
                "{:>10} {:>10} ERROR: {err}",
                cell.benchmark,
                cell.mechanism.label()
            ),
        }
    }
}

fn main() {
    let opts = parse_args();
    let matrix = match opts.spec.build() {
        Ok(matrix) => matrix,
        Err(err) => {
            eprintln!("{err}");
            usage()
        }
    };
    let report = matrix.run();
    print_report(&report);
    if let Some(path) = opts.json {
        let doc = report.to_json();
        if path == "-" {
            println!("{doc}");
        } else if let Err(err) = std::fs::write(&path, doc + "\n") {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        } else {
            eprintln!("wrote {path}");
        }
    }
    if report.error_count() > 0 {
        eprintln!("{} cell(s) failed", report.error_count());
        std::process::exit(1);
    }
}
