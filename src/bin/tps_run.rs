//! `tps-run`: command-line driver for the TPS simulator.
//!
//! ```text
//! tps-run [--bench NAME] [--mech MECH | --all] [--scale test|small|paper]
//!         [--smt] [--virtualized] [--five-level] [--threshold F] [--verify]
//! ```
//!
//! Examples:
//!
//! ```sh
//! tps-run --bench gups --all --scale small
//! tps-run --bench xsbench --mech tps --smt
//! ```

use tps::sim::{run_smt, Machine, MachineConfig, Mechanism, RunStats, TimingModel};
use tps::wl::{build, suite_names, SuiteScale};

struct Options {
    bench: String,
    mechs: Vec<Mechanism>,
    scale: SuiteScale,
    smt: bool,
    virtualized: bool,
    five_level: bool,
    threshold: Option<f64>,
    verify: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tps-run [--bench NAME] [--mech MECH | --all] \
         [--scale test|small|paper] [--smt] [--virtualized] [--five-level] \
         [--threshold F] [--verify]\n\
         benchmarks: {}\n\
         mechanisms: 4k, 2m, thp, colt, rmm, tps, tps-eager",
        suite_names().join(", ")
    );
    std::process::exit(2)
}

fn parse_mech(s: &str) -> Option<Mechanism> {
    Some(match s.to_ascii_lowercase().as_str() {
        "4k" => Mechanism::Only4K,
        "2m" => Mechanism::Only2M,
        "thp" => Mechanism::Thp,
        "colt" => Mechanism::Colt,
        "rmm" => Mechanism::Rmm,
        "tps" => Mechanism::Tps,
        "tps-eager" | "tpseager" => Mechanism::TpsEager,
        _ => return None,
    })
}

fn parse_args() -> Options {
    let mut opts = Options {
        bench: "gups".into(),
        mechs: vec![Mechanism::Tps],
        scale: SuiteScale::Small,
        smt: false,
        virtualized: false,
        five_level: false,
        threshold: None,
        verify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => opts.bench = args.next().unwrap_or_else(|| usage()),
            "--mech" => {
                let m = args.next().unwrap_or_else(|| usage());
                opts.mechs = vec![parse_mech(&m).unwrap_or_else(|| usage())];
            }
            "--all" => {
                opts.mechs = vec![
                    Mechanism::Only4K,
                    Mechanism::Thp,
                    Mechanism::Colt,
                    Mechanism::Rmm,
                    Mechanism::Tps,
                    Mechanism::TpsEager,
                ]
            }
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("test") => SuiteScale::Test,
                    Some("small") => SuiteScale::Small,
                    Some("paper") => SuiteScale::Paper,
                    _ => usage(),
                }
            }
            "--smt" => opts.smt = true,
            "--virtualized" => opts.virtualized = true,
            "--five-level" => opts.five_level = true,
            "--threshold" => {
                let v: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.threshold = Some(v);
            }
            "--verify" => opts.verify = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if !suite_names().contains(&opts.bench.as_str()) {
        eprintln!("unknown benchmark {:?}", opts.bench);
        usage()
    }
    opts
}

fn configure(opts: &Options, mech: Mechanism) -> MachineConfig {
    let mut config = MachineConfig::for_mechanism(mech).with_memory(if opts.smt {
        2 * opts.scale.recommended_memory()
    } else {
        opts.scale.recommended_memory()
    });
    config.virtualized = opts.virtualized;
    config.five_level_paging = opts.five_level;
    config.verify_translations = opts.verify;
    if let Some(t) = opts.threshold {
        config.policy = config.policy.with_threshold(t);
    }
    config
}

fn run(opts: &Options, mech: Mechanism) -> RunStats {
    let config = configure(opts, mech);
    if opts.smt {
        let mut a = build(&opts.bench, opts.scale);
        let mut b = build(&opts.bench, opts.scale);
        run_smt(config, &mut *a, &mut *b).primary
    } else {
        let mut machine = Machine::new(config);
        let mut workload = build(&opts.bench, opts.scale);
        machine.run(&mut *workload)
    }
}

fn main() {
    let opts = parse_args();
    let model = TimingModel::default();
    println!(
        "benchmark: {}   scale: {:?}   smt: {}   virtualized: {}   5-level: {}",
        opts.bench, opts.scale, opts.smt, opts.virtualized, opts.five_level
    );
    println!(
        "{:>10} {:>12} {:>9} {:>12} {:>9} {:>10} {:>8}",
        "mechanism", "L1 misses", "hit rate", "walk refs", "faults", "promotions", "time"
    );
    let mut baseline: Option<f64> = None;
    for &mech in &opts.mechs {
        let stats = run(&opts, mech);
        let timing = model.evaluate(&stats, opts.smt);
        if mech == Mechanism::Thp {
            baseline = Some(timing.total());
        }
        let speedup = match baseline {
            Some(b) => format!("{:.3}x", b / timing.total()),
            None => "-".into(),
        };
        println!(
            "{:>10} {:>12} {:>8.2}% {:>12} {:>9} {:>10} {:>8}",
            mech.label(),
            stats.mem.l1_misses(),
            100.0 * stats.mem.l1_hit_rate(),
            stats.walk_refs,
            stats.os.faults,
            stats.os.promotions,
            speedup
        );
    }
}
