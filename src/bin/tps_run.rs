//! `tps-run`: command-line driver for the TPS simulator.
//!
//! ```text
//! tps-run [--bench NAME]... [--mech MECH]... [--all] [--matrix]
//!         [--scale test|small|paper] [--threads N] [--seed S]
//!         [--tenants N] [--smt] [--virtualized] [--five-level]
//!         [--threshold F] [--verify] [--json PATH|-]
//!         [--on-oom fail-fast|kill-victim] [--tenant-cap SLOT:BYTES]
//!         [--cell-timeout MS] [--retries N]
//!         [--fault-rate P] [--fault-seed S]
//!         [--checkpoint PATH] [--resume PATH] [--resume-salvage PATH]
//!         [--force-checkpoint] [--halt-after N]
//! ```
//!
//! Flags build one declarative [`ExperimentSpec`]; the matrix of
//! (benchmark × mechanism) cells runs on a worker pool (`--threads`,
//! default = available parallelism) with per-cell pinned seeds, so the
//! output — including `--json` bytes — is identical at every thread
//! count. `--tenants N` runs every cell as an N-process machine — N
//! seeded instances of the benchmark in their own address spaces over
//! one shared allocator and TLB hierarchy, interleaved round-robin —
//! and embeds the per-tenant stats breakdown in the report JSON.
//! `--tenant-cap SLOT:BYTES` pins a per-tenant memory budget on one
//! slot and `--on-oom` picks the containment policy when a tenant
//! faults for memory: `fail-fast` (default) kills the faulting tenant,
//! `kill-victim` kills the largest-mapped tenant and retries the event.
//! A killed tenant's pages return to the shared pool and its row in the
//! report carries a structured `{"outcome": "killed", ...}` record;
//! survivors run to completion.
//! `--cell-timeout`/`--retries` arm the per-cell watchdog and
//! retry budget; `--fault-rate` injects faults at every site with a
//! per-cell derived seed; `--checkpoint`/`--resume` stream completed
//! cells through an append-only journal (checksummed and fsynced per
//! entry) so an interrupted run replays byte-identically. A journal with
//! mid-file corruption is refused with its own exit code;
//! `--resume-salvage` drops the damaged entries and recomputes those
//! cells instead, noting the drop count in the report. `--checkpoint`
//! refuses to overwrite a journal holding entries (or one of another
//! spec) unless `--force-checkpoint` is passed. Report JSON is published
//! atomically (temp file + rename), so a partial report is never
//! observable at the output path. Examples:
//!
//! ```sh
//! tps-run --bench gups --all --scale small
//! tps-run --matrix --scale test --threads 8 --json report.json
//! tps-run --bench xsbench --mech tps --smt
//! tps-run --bench gups --mech tps --tenants 8 --json -
//! tps-run --matrix --retries 2 --cell-timeout 60000 --checkpoint run.ckpt
//! tps-run --matrix --resume run.ckpt --json report.json
//! ```
//!
//! Exit codes: 0 success, 1 I/O error, 2 usage, 3 one or more cells
//! failed (report still written), 4 checkpoint error, 5 halted by
//! `--halt-after`, 6 checkpoint corruption detected.

use std::path::{Path, PathBuf};

use tps::core::{FaultPlanConfig, TpsError};
use tps::sim::{
    write_atomic, ExperimentReport, ExperimentSpec, Mechanism, OnOom, RealIo, RunOptions,
    TenantCount,
};
use tps::wl::{suite_names, SuiteScale};

/// One or more cells degraded to a structured failure entry.
const EXIT_CELL_FAILURES: i32 = 3;
/// The checkpoint journal could not be created, loaded, or verified.
const EXIT_CHECKPOINT: i32 = 4;
/// The checkpoint journal was read back damaged (CRC/framing/sequence):
/// distinct from [`EXIT_CHECKPOINT`] so tooling can tell "storage lied"
/// from "wrong file" and decide to re-run with `--resume-salvage`.
const EXIT_CHECKPOINT_CORRUPT: i32 = 6;

/// Parsed command line: the spec plus output and resilience options.
struct Options {
    spec: ExperimentSpec,
    json: Option<String>,
    run: RunOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: tps-run [--bench NAME]... [--mech MECH]... [--all] [--matrix] \
         [--scale test|small|paper] [--threads N] [--seed S] [--tenants N] [--smt] \
         [--virtualized] [--five-level] [--threshold F] [--verify] [--json PATH|-] \
         [--on-oom fail-fast|kill-victim] [--tenant-cap SLOT:BYTES] \
         [--cell-timeout MS] [--retries N] [--fault-rate P] [--fault-seed S] \
         [--checkpoint PATH] [--resume PATH] [--resume-salvage PATH] \
         [--force-checkpoint] [--halt-after N]\n\
         benchmarks: {}\n\
         mechanisms: {}",
        suite_names().join(", "),
        Mechanism::all()
            .iter()
            .map(|m| m.cli_name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

/// Parses a `SLOT:BYTES` tenant-cap argument.
fn parse_tenant_cap(text: &str) -> Option<(u32, u64)> {
    let (slot, bytes) = text.split_once(':')?;
    Some((slot.parse().ok()?, bytes.parse().ok()?))
}

/// A fault plan arming every OS and hardware site at probability `rate`.
fn uniform_all_sites(seed: u64, rate: f64) -> FaultPlanConfig {
    FaultPlanConfig {
        buddy_alloc: rate,
        reserve_span: rate,
        compaction_step: rate,
        shootdown_deliver: rate,
        walk_step: rate,
        alias_install: rate,
        mmu_cache_fill: rate,
        any_size_fill: rate,
        any_size_evict: rate,
        stlb_probe: rate,
        ..FaultPlanConfig::disabled(seed)
    }
}

fn parse_args() -> Options {
    let mut benches: Vec<String> = Vec::new();
    let mut mechs: Vec<Mechanism> = Vec::new();
    let mut matrix = false;
    let mut spec = ExperimentSpec::new();
    let mut json = None;
    let mut run = RunOptions::default();
    let mut fault_rate: Option<f64> = None;
    let mut fault_seed: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => benches.push(args.next().unwrap_or_else(|| usage())),
            "--mech" => {
                let m = args.next().unwrap_or_else(|| usage());
                match m.parse::<Mechanism>() {
                    Ok(mech) => mechs.push(mech),
                    Err(err) => {
                        eprintln!("{err}");
                        usage()
                    }
                }
            }
            "--all" => mechs.extend([
                Mechanism::Only4K,
                Mechanism::Thp,
                Mechanism::Colt,
                Mechanism::Rmm,
                Mechanism::Tps,
                Mechanism::TpsEager,
            ]),
            "--matrix" => matrix = true,
            "--scale" => {
                let s = args.next().unwrap_or_else(|| usage());
                match s.parse::<SuiteScale>() {
                    Ok(scale) => spec = spec.scale(scale),
                    Err(err) => {
                        eprintln!("{err}");
                        usage()
                    }
                }
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.threads(n);
            }
            "--seed" => {
                let s: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.seed(s);
            }
            "--tenants" => {
                let t = args.next().unwrap_or_else(|| usage());
                match t.parse::<TenantCount>() {
                    Ok(tenants) => spec = spec.tenants(tenants),
                    Err(err) => {
                        eprintln!("{err}");
                        usage()
                    }
                }
            }
            "--smt" => spec = spec.smt(true),
            "--virtualized" => spec = spec.virtualized(true),
            "--five-level" => spec = spec.five_level(true),
            "--threshold" => {
                let v: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.threshold(v);
            }
            "--verify" => spec = spec.verify(true),
            "--on-oom" => {
                let p = args.next().unwrap_or_else(|| usage());
                match p.parse::<OnOom>() {
                    Ok(policy) => spec = spec.on_oom(policy),
                    Err(err) => {
                        eprintln!("{err}");
                        usage()
                    }
                }
            }
            "--tenant-cap" => {
                let v = args.next().unwrap_or_else(|| usage());
                match parse_tenant_cap(&v) {
                    Some((slot, bytes)) => spec = spec.tenant_cap(slot, bytes),
                    None => {
                        eprintln!("--tenant-cap expects SLOT:BYTES, got {v:?}");
                        usage()
                    }
                }
            }
            "--json" => json = Some(args.next().unwrap_or_else(|| usage())),
            "--cell-timeout" => {
                let ms: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.cell_timeout_ms(ms);
            }
            "--retries" => {
                let n: u32 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                spec = spec.retries(n);
            }
            "--fault-rate" => {
                let p: f64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|p| (0.0..=1.0).contains(p))
                    .unwrap_or_else(|| usage());
                fault_rate = Some(p);
            }
            "--fault-seed" => {
                fault_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--checkpoint" => {
                run.checkpoint = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--resume" => {
                run.resume = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--resume-salvage" => {
                run.resume = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
                run.salvage = true;
            }
            "--force-checkpoint" => run.force_checkpoint = true,
            "--halt-after" => {
                let n: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                run.halt_after = Some(n);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if matrix {
        if benches.is_empty() {
            spec = spec.suite();
        } else {
            spec = spec.benches(benches);
        }
        if mechs.is_empty() {
            spec = spec.mechanisms([
                Mechanism::Thp,
                Mechanism::Colt,
                Mechanism::Rmm,
                Mechanism::Tps,
            ]);
        } else {
            spec = spec.mechanisms(mechs);
        }
    } else {
        if benches.is_empty() {
            benches.push("gups".into());
        }
        if mechs.is_empty() {
            mechs.push(Mechanism::Tps);
        }
        spec = spec.benches(benches).mechanisms(mechs);
    }
    if let Some(rate) = fault_rate {
        spec = spec.faults(uniform_all_sites(fault_seed, rate));
    }
    Options { spec, json, run }
}

fn print_report(report: &ExperimentReport) {
    println!(
        "scale: {}   smt: {}   tenants: {}   seed: {:#x}   baseline: {}",
        report.scale(),
        report.is_smt(),
        report.tenant_count(),
        report.base_seed(),
        report
            .baseline_mechanism()
            .map_or("-".into(), |m| m.to_string())
    );
    println!(
        "{:>10} {:>10} {:>12} {:>9} {:>12} {:>9} {:>10} {:>8}",
        "benchmark",
        "mechanism",
        "L1 misses",
        "hit rate",
        "walk refs",
        "faults",
        "promotions",
        "speedup"
    );
    for cell in report.cells() {
        match &cell.result {
            Ok(machine) => {
                let stats = &machine.global;
                let speedup = cell
                    .derived
                    .and_then(|d| d.speedup_vs_baseline)
                    .map_or("-".into(), |s| format!("{s:.3}x"));
                let kills = machine.killed_count();
                let killed = if kills > 0 {
                    format!("  [{kills} tenant(s) killed]")
                } else {
                    String::new()
                };
                println!(
                    "{:>10} {:>10} {:>12} {:>8.2}% {:>12} {:>9} {:>10} {:>8}{killed}",
                    cell.benchmark,
                    cell.mechanism.label(),
                    stats.mem.l1_misses(),
                    100.0 * stats.mem.l1_hit_rate(),
                    stats.walk_refs,
                    stats.os.faults,
                    stats.os.promotions,
                    speedup
                );
            }
            Err(err) => println!(
                "{:>10} {:>10} ERROR: {err}",
                cell.benchmark,
                cell.mechanism.label()
            ),
        }
    }
}

fn main() {
    let opts = parse_args();
    let matrix = match opts.spec.build() {
        Ok(matrix) => matrix,
        Err(err) => {
            eprintln!("{err}");
            usage()
        }
    };
    let report = match matrix.run_with(&opts.run) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("{err}");
            let code = if matches!(err, TpsError::CheckpointCorrupt { .. }) {
                EXIT_CHECKPOINT_CORRUPT
            } else {
                EXIT_CHECKPOINT
            };
            std::process::exit(code);
        }
    };
    print_report(&report);
    if let Some(dropped) = report.salvage_dropped() {
        eprintln!("salvage: dropped {dropped} corrupt journal entr(ies) and re-ran those cells");
    }
    if let Some(path) = opts.json {
        let doc = report.to_json() + "\n";
        if path == "-" {
            print!("{doc}");
        } else if let Err(err) = write_atomic(&RealIo, Path::new(&path), doc.as_bytes()) {
            eprintln!("cannot write {path}: {err}");
            std::process::exit(1);
        } else {
            eprintln!("wrote {path}");
        }
    }
    if report.error_count() > 0 {
        eprintln!("{} cell(s) failed", report.error_count());
        std::process::exit(EXIT_CELL_FAILURES);
    }
}
