#!/usr/bin/env bash
# Ratchet guard for lint-baseline.toml.
#
# The baseline freezes pre-existing tps-lint violations per (rule, file).
# It is allowed to shrink (burn-down) but never to grow: this script fails
# if the working-tree baseline has any entry whose count exceeds the copy
# committed at HEAD, or any entry HEAD does not know about.
#
# One exception: a rule whose section is entirely absent from HEAD's
# committed baseline is brand new (this PR introduces it), and its initial
# entries are accepted with a notice. Once committed, those entries ratchet
# shrink-only like everything else.
#
# Usage: scripts/lint-ratchet.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=lint-baseline.toml

if [[ ! -f "$BASELINE" ]]; then
    echo "lint-ratchet: no $BASELINE in the working tree" >&2
    exit 1
fi

if ! committed=$(git show "HEAD:$BASELINE" 2>/dev/null); then
    echo "lint-ratchet: no committed $BASELINE at HEAD yet; nothing to ratchet against"
    exit 0
fi

# Flattens the baseline's TOML subset to `rule<TAB>path<TAB>count` lines.
flatten() {
    awk '
        /^[[:space:]]*(#|$)/ { next }
        /^\[.*\]$/ { rule = substr($0, 2, length($0) - 2); next }
        {
            split($0, kv, "=")
            path = kv[1]; gsub(/[[:space:]"]/, "", path)
            count = kv[2]; gsub(/[[:space:]]/, "", count)
            print rule "\t" path "\t" count
        }
    '
}

status=0
while IFS=$'\t' read -r rule path count; do
    frozen=$(printf '%s\n' "$committed" | flatten \
        | awk -F'\t' -v r="$rule" -v p="$path" '$1 == r && $2 == p { print $3 }')
    if [[ -z "$frozen" ]]; then
        rule_known=$(printf '%s\n' "$committed" | flatten \
            | awk -F'\t' -v r="$rule" '$1 == r { print "y"; exit }')
        if [[ -z "$rule_known" ]]; then
            echo "lint-ratchet: notice: new rule [$rule] freezes \"$path\" = $count"
            continue
        fi
        echo "lint-ratchet: NEW baseline entry [$rule] \"$path\" = $count (not in HEAD)" >&2
        status=1
    elif (( count > frozen )); then
        echo "lint-ratchet: [$rule] \"$path\" grew $frozen -> $count" >&2
        status=1
    fi
done < <(flatten < "$BASELINE")

if (( status != 0 )); then
    echo "lint-ratchet: the baseline may only shrink. Fix the new violations" >&2
    echo "lint-ratchet: instead of refreezing them." >&2
    exit $status
fi

echo "lint-ratchet: baseline is within the committed ratchet"
