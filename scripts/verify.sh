#!/usr/bin/env bash
# Tier-1 verification gate for the TPS reproduction.
#
# Runs the four checks CI and reviewers rely on, in order of increasing
# strictness. Fully offline: the workspace vendors shim crates for its
# only external dev-dependencies (see crates/proptest-shim,
# crates/criterion-shim), so no registry access is needed or attempted.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: facade + integration)"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> matrix determinism gate (parallel JSON == serial JSON)"
cargo test -q --test matrix_determinism
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 1 --json "$tmpdir/serial.json" >/dev/null
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 4 --json "$tmpdir/parallel.json" >/dev/null
cmp "$tmpdir/serial.json" "$tmpdir/parallel.json" \
    || { echo "verify: tps_run --threads changed the report bytes" >&2; exit 1; }

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tps-lint --workspace (workspace invariants, ratcheted)"
cargo run -q --release -p tps-lint -- --workspace

echo "==> scripts/lint-ratchet.sh (baseline may only shrink)"
scripts/lint-ratchet.sh

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
