#!/usr/bin/env bash
# Tier-1 verification gate for the TPS reproduction.
#
# Runs the four checks CI and reviewers rely on, in order of increasing
# strictness. Fully offline: the workspace vendors shim crates for its
# only external dev-dependencies (see crates/proptest-shim,
# crates/criterion-shim), so no registry access is needed or attempted.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: facade + integration)"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tps-lint --workspace (workspace invariants, ratcheted)"
cargo run -q --release -p tps-lint -- --workspace

echo "==> scripts/lint-ratchet.sh (baseline may only shrink)"
scripts/lint-ratchet.sh

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
