#!/usr/bin/env bash
# Tier-1 verification gate for the TPS reproduction.
#
# Runs the four checks CI and reviewers rely on, in order of increasing
# strictness. Fully offline: the workspace vendors shim crates for its
# only external dev-dependencies (see crates/proptest-shim,
# crates/criterion-shim), so no registry access is needed or attempted.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1: facade + integration)"
cargo test -q

echo "==> cargo test --workspace -q (all crates)"
cargo test --workspace -q

echo "==> matrix determinism gate (parallel JSON == serial JSON)"
cargo test -q --test matrix_determinism
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 1 --json "$tmpdir/serial.json" >/dev/null
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 4 --json "$tmpdir/parallel.json" >/dev/null
cmp "$tmpdir/serial.json" "$tmpdir/parallel.json" \
    || { echo "verify: tps_run --threads changed the report bytes" >&2; exit 1; }

echo "==> multi-tenant determinism gate (tenants 1 vs 8, threads 1 vs 4)"
for tenants in 1 8; do
    ./target/release/tps_run --bench gups --mech tps --mech thp --scale test \
        --seed 7 --tenants "$tenants" --threads 1 \
        --json "$tmpdir/tenants-$tenants-serial.json" >/dev/null
    ./target/release/tps_run --bench gups --mech tps --mech thp --scale test \
        --seed 7 --tenants "$tenants" --threads 4 \
        --json "$tmpdir/tenants-$tenants-parallel.json" >/dev/null
    cmp "$tmpdir/tenants-$tenants-serial.json" "$tmpdir/tenants-$tenants-parallel.json" \
        || { echo "verify: --tenants $tenants report bytes changed with --threads" >&2; exit 1; }
done
cmp -s "$tmpdir/tenants-1-serial.json" "$tmpdir/tenants-8-serial.json" \
    && { echo "verify: tenants=8 report is identical to tenants=1 (axis inert?)" >&2; exit 1; }

echo "==> retry determinism gate (faults + retries, threads 1 vs 4)"
# Cells may exhaust their retry budget under injected faults; exit 3
# (structured cell failure, full JSON still written) is part of the
# contract being gated — only other codes are verify failures.
set +e
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --fault-rate 0.02 --fault-seed 7 --retries 2 \
    --threads 1 --json "$tmpdir/retry-serial.json" >/dev/null 2>&1
serial_rc=$?
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --fault-rate 0.02 --fault-seed 7 --retries 2 \
    --threads 4 --json "$tmpdir/retry-parallel.json" >/dev/null 2>&1
parallel_rc=$?
set -e
for rc in "$serial_rc" "$parallel_rc"; do
    [ "$rc" -eq 0 ] || [ "$rc" -eq 3 ] \
        || { echo "verify: faulted run exited $rc (want 0 or 3)" >&2; exit 1; }
done
[ "$serial_rc" -eq "$parallel_rc" ] \
    || { echo "verify: exit code differs across thread counts ($serial_rc vs $parallel_rc)" >&2; exit 1; }
cmp "$tmpdir/retry-serial.json" "$tmpdir/retry-parallel.json" \
    || { echo "verify: faulted retried runs diverged across thread counts" >&2; exit 1; }

echo "==> checkpoint/resume gate (kill mid-flight, resume, cmp)"
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 1 --json "$tmpdir/full.json" >/dev/null
# Crash simulation: journal the same matrix and halt (exit 5) after the
# second cell reaches the journal.
set +e
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 1 --checkpoint "$tmpdir/run.ckpt" --halt-after 2 >/dev/null
halt=$?
set -e
[ "$halt" -eq 5 ] \
    || { echo "verify: --halt-after exited $halt, expected 5" >&2; exit 1; }
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --threads 1 --resume "$tmpdir/run.ckpt" --json "$tmpdir/resumed.json" >/dev/null
cmp "$tmpdir/full.json" "$tmpdir/resumed.json" \
    || { echo "verify: resumed run differs from the uninterrupted run" >&2; exit 1; }
# Same crash/resume contract with per-tenant stats in the journal.
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --tenants 8 --threads 1 --json "$tmpdir/t8-full.json" >/dev/null
set +e
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --tenants 8 --threads 1 --checkpoint "$tmpdir/t8.ckpt" --halt-after 2 >/dev/null
halt=$?
set -e
[ "$halt" -eq 5 ] \
    || { echo "verify: tenants=8 --halt-after exited $halt, expected 5" >&2; exit 1; }
./target/release/tps_run --bench gups --all --scale test --seed 7 \
    --tenants 8 --threads 4 --resume "$tmpdir/t8.ckpt" --json "$tmpdir/t8-resumed.json" >/dev/null
cmp "$tmpdir/t8-full.json" "$tmpdir/t8-resumed.json" \
    || { echo "verify: tenants=8 resumed run differs from the uninterrupted run" >&2; exit 1; }

echo "==> artifact chaos gate (pinned seeds: kill / corrupt / storm)"
# Release build of the tps-check chaos campaign: ~240 deterministic
# schedules driving whole matrix runs through FaultyIo (randomized
# byte-offset kills, single-byte journal corruptions, I/O storms) and
# asserting resume is byte-identical, corruption is always detected, and
# salvage recovers. Seconds in release; the same test also runs (slower)
# under `cargo test --workspace` above.
cargo test --release -q -p tps-check --test chaos

echo "==> tenant containment gate (chaos campaign + capped-tenant determinism)"
# Release build of the multi-tenant containment campaign: 240 seeded
# schedules mixing hogs, cap overrunners and malformed event streams
# under injected allocation faults, asserting zero panics, buddy
# conservation after every kill, exact per-tenant→rollup sums and
# byte-identical kill sequences. Also runs (slower) under
# `cargo test --workspace` above.
cargo test --release -q -p tps-check --test containment
# A matrix with one capped tenant must record the kill in the report and
# stay byte-identical across thread counts.
for threads in 1 4; do
    ./target/release/tps_run --bench gups --mech tps --mech thp --scale test \
        --seed 7 --tenants 8 --tenant-cap 3:4194304 --on-oom kill-victim \
        --threads "$threads" --json "$tmpdir/cap-t$threads.json" >/dev/null
done
cmp "$tmpdir/cap-t1.json" "$tmpdir/cap-t4.json" \
    || { echo "verify: capped-tenant report bytes changed with --threads" >&2; exit 1; }
grep -q '"outcome": "killed"' "$tmpdir/cap-t1.json" \
    || { echo "verify: capped-tenant run recorded no kill (cap inert?)" >&2; exit 1; }
grep -q '"cause": "cap-exceeded"' "$tmpdir/cap-t1.json" \
    || { echo "verify: kill cause is not cap-exceeded" >&2; exit 1; }
# The same capped matrix killed mid-flight must resume to the same bytes,
# carrying the Killed outcomes through the journal.
set +e
./target/release/tps_run --bench gups --mech tps --mech thp --scale test \
    --seed 7 --tenants 8 --tenant-cap 3:4194304 --on-oom kill-victim \
    --threads 1 --checkpoint "$tmpdir/cap.ckpt" --halt-after 1 >/dev/null
halt=$?
set -e
[ "$halt" -eq 5 ] \
    || { echo "verify: capped --halt-after exited $halt, expected 5" >&2; exit 1; }
./target/release/tps_run --bench gups --mech tps --mech thp --scale test \
    --seed 7 --tenants 8 --tenant-cap 3:4194304 --on-oom kill-victim \
    --threads 4 --resume "$tmpdir/cap.ckpt" --json "$tmpdir/cap-resumed.json" >/dev/null
cmp "$tmpdir/cap-t1.json" "$tmpdir/cap-resumed.json" \
    || { echo "verify: capped-tenant resume differs from the uninterrupted run" >&2; exit 1; }

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tps-lint --workspace (workspace invariants, ratcheted)"
cargo run -q --release -p tps-lint -- --workspace

echo "==> tps-lint --workspace --format json (machine-readable gate)"
cargo run -q --release -p tps-lint -- --workspace --format json > "$tmpdir/lint.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$tmpdir/lint.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("diagnostics", "total", "grandfathered", "failed"):
    assert key in doc, f"lint JSON is missing {key!r}"
assert isinstance(doc["diagnostics"], list), "diagnostics must be a list"
assert doc["total"] == len(doc["diagnostics"]), "total disagrees with the list"
assert doc["failed"] is False, "lint JSON reports failed=true (non-ratcheted output)"
PYEOF
else
    # Fallback without python3: structural greps.
    grep -q '"failed": false' "$tmpdir/lint.json" \
        || { echo "verify: lint JSON reports failure or is malformed" >&2; exit 1; }
    grep -q '"grandfathered":' "$tmpdir/lint.json" \
        || { echo "verify: lint JSON is missing the grandfathered count" >&2; exit 1; }
fi

echo "==> scripts/lint-ratchet.sh (baseline may only shrink)"
scripts/lint-ratchet.sh

echo "==> hot-path zero-debt gate (no grandfathered hot-path-* entries)"
# The four hot-path rules shipped with zero grandfathered debt; the
# ratchet script's new-rule exception must never be used to smuggle a
# section in for them. Audited sites use inline allow-with-reason.
[ -f hot-paths.toml ] \
    || { echo "verify: hot-paths.toml is missing — the reachability pass has no contract" >&2; exit 1; }
if grep -q '^\[hot-path-' lint-baseline.toml; then
    echo "verify: lint-baseline.toml grandfathers hot-path findings:" >&2
    grep -A3 '^\[hot-path-' lint-baseline.toml >&2
    echo "verify: burn the finding down or suppress it inline with an audit reason" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all gates passed"
