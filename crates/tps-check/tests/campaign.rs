//! The headline robustness claims, as executable tests:
//!
//! 1. ~1,000 randomized seeded mmap/fault/munmap/compact schedules under
//!    injected faults complete with zero panics and every cross-layer
//!    invariant held.
//! 2. The injection hooks are zero-cost by default: a schedule run with
//!    no injector and the same schedule run with a never-faulting plan
//!    produce byte-identical OS statistics and free-list state.

use tps_check::campaign::{
    run_campaign, run_schedule_with_injector, CampaignConfig, CampaignReport,
};
use tps_check::{FaultPlan, FaultPlanConfig};

/// 1,000 schedules × 48 ops, faults injected at every site, audits every
/// 8 ops plus a full audit and leak check at each teardown. Zero panics is
/// implicit (a panic fails the test); zero violations is asserted.
#[test]
fn thousand_fault_injected_schedules_hold_every_invariant() {
    let cfg = CampaignConfig {
        schedules: 1000,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    assert_eq!(report.schedules_run, 1000);
    assert!(
        report.violations.is_empty(),
        "invariant violations ({} shown, {} truncated): {:#?}",
        report.violations.len().min(CampaignReport::MAX_VIOLATIONS),
        report.violations_truncated,
        report.violations
    );
    // The campaign must have actually exercised the fault machinery, not
    // merely survived an idle run.
    assert!(report.faults_injected > 1000, "faults were injected");
    assert!(
        report.total_faults > 10_000,
        "schedules did real paging work"
    );
    assert!(
        report.total_oom_fallbacks > 0,
        "allocation denial degraded to 4K"
    );
    assert!(
        report.total_compaction_aborts > 0,
        "compaction was interrupted"
    );
    assert!(
        report.total_shootdowns_retried > 0,
        "dropped shootdowns were retried"
    );
    assert!(
        report.total_promotions > 0,
        "promotion machinery kept working"
    );
}

/// Torture variant: every site faults at high probability. Much more
/// degradation, still zero violations.
#[test]
fn high_probability_torture_schedules_stay_consistent() {
    let cfg = CampaignConfig {
        schedules: 100,
        plan: FaultPlanConfig::uniform(0, 0.6),
        seed: 0x0123_4567_89ab_cdef,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&cfg);
    assert!(
        report.violations.is_empty(),
        "torture violations: {:#?}",
        report.violations
    );
    assert!(
        report.faults_injected > report.schedules_run,
        "torture really hurt"
    );
}

/// Zero-cost default: for many seeds, running with no injector installed
/// and running with a never-faulting `FaultPlan` installed produce
/// byte-identical statistics, free bytes, and free-list histograms.
#[test]
fn disabled_injection_is_byte_identical_to_no_injector() {
    let cfg = CampaignConfig::default();
    for seed in 0..25u64 {
        let bare = run_schedule_with_injector(&cfg, seed, None);
        let (handle, plan) = FaultPlan::handles(FaultPlanConfig::disabled(seed));
        let hooked = run_schedule_with_injector(&cfg, seed, Some(handle));
        assert!(
            bare.violations.is_empty(),
            "seed {seed}: {:?}",
            bare.violations
        );
        assert!(
            hooked.violations.is_empty(),
            "seed {seed}: {:?}",
            hooked.violations
        );
        assert_eq!(bare.stats, hooked.stats, "seed {seed}: OsStats diverged");
        assert_eq!(bare.free_bytes, hooked.free_bytes, "seed {seed}");
        assert_eq!(bare.histogram, hooked.histogram, "seed {seed}");
        assert!(
            plan.borrow().consultations() > 0,
            "seed {seed}: the disabled plan was really installed and consulted"
        );
    }
}
