//! The headline artifact-robustness claim: a pinned-seed chaos campaign
//! of kill / corruption / I/O-storm schedules over the experiment
//! engine's checkpoint journal and report publication path completes
//! with zero contract violations.
//!
//! Every schedule is a pure function of the pinned campaign seed and its
//! index, so a failure here is replayable in isolation with
//! `chaos::run_schedule` at the (schedule, seed) pair the assertion
//! message prints.

use tps_check::chaos::{run_chaos_campaign, scratch_dir, ChaosConfig};

#[test]
fn chaos_campaign_holds_every_artifact_contract() {
    let config = ChaosConfig::default();
    assert!(
        config.schedules >= 200,
        "the acceptance bar is >= 200 pinned-seed schedules"
    );
    let dir = scratch_dir("campaign");
    let report = run_chaos_campaign(&config, &dir);
    assert_eq!(report.schedules, config.schedules);
    // Every schedule family actually ran.
    assert!(report.kills > 0 && report.corruptions > 0 && report.io_storms > 0);
    // Every family exercised its success path at least once: kills that
    // resumed byte-identically, corruptions that were caught, damaged
    // journals that salvage recovered.
    assert!(report.resumed > 0, "{}", report.summary());
    assert!(report.detected > 0, "{}", report.summary());
    assert!(report.salvaged > 0, "{}", report.summary());
    assert!(
        report.passed(),
        "chaos campaign failed — replay with chaos::run_schedule:\n{}\n{}",
        report.summary(),
        report
            .failures
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    std::fs::remove_dir_all(&dir).ok();
}
