//! The headline containment claim: hundreds of seeded multi-tenant
//! schedules full of hogs, cap overrunners, malformed event streams and
//! injected allocation faults complete with zero panics, a conserved
//! buddy state after every kill, per-tenant statistics that sum exactly
//! to the rollup, and byte-for-byte reproducible kill sequences.

use tps_check::containment::{run_containment_campaign, ContainmentConfig};

#[test]
fn containment_campaign_holds_every_contract() {
    let config = ContainmentConfig::default();
    assert!(
        config.schedules >= 200,
        "the campaign must stay substantial"
    );
    let report = run_containment_campaign(&config);
    for failure in &report.failures {
        eprintln!("FAIL {failure}");
    }
    assert!(report.passed(), "{}", report.summary());
    assert_eq!(report.schedules, config.schedules);
    // The cast guarantees the campaign actually exercised every kill
    // path, not just fault-free runs.
    assert!(report.kills > 0, "{}", report.summary());
    assert!(report.oom_kills > 0, "{}", report.summary());
    assert!(report.cap_kills > 0, "{}", report.summary());
    assert!(report.bad_event_kills > 0, "{}", report.summary());
    assert!(report.completed > 0, "{}", report.summary());
    assert!(report.manual > 0, "{}", report.summary());
    assert!(report.armed > 0, "{}", report.summary());
}

#[test]
fn one_pinned_schedule_replays_in_isolation() {
    let config = ContainmentConfig::default();
    tps_check::containment::run_schedule(&config, 0).expect("schedule 0 upholds the contracts");
}
