//! Deterministic chaos campaign for the experiment engine's artifact I/O.
//!
//! Where [`crate::campaign`] stresses the simulated OS and [`crate::shadow`]
//! the simulated hardware, this module stresses the one layer whose failure
//! would silently invalidate every reproduced figure: the bytes the
//! experiment engine writes to disk. Each seeded schedule drives a whole
//! in-process matrix run through [`tps_sim::FaultyIo`] and then checks the
//! crash-safety contracts of the checkpoint journal and the report
//! publication path:
//!
//! * **Kill schedules** cut the run's write stream at a randomized byte
//!   offset. The journal left behind must either resume — via the real
//!   filesystem — to a report byte-identical to an uninterrupted run, or
//!   (when the kill landed inside the header) be refused outright. A
//!   report published through the dying I/O layer must be all-or-nothing
//!   at its final path: absent, or byte-identical — never partial.
//! * **Corruption schedules** flip one random byte of a complete journal.
//!   Resume must never produce a silently wrong report: it either still
//!   matches the uninterrupted run (the flip was harmless — e.g. it tore
//!   the tail, which legally re-runs the victim cell) or it is refused as
//!   corruption; salvage mode must then recover the full correct report
//!   whenever the header survived.
//! * **I/O-storm schedules** run under intermittent injected `io::Error`s
//!   or a disk-full budget. A run that reports success must have produced
//!   the exact reference report, and whatever journal the storm left
//!   behind must be salvageable as long as its header line is complete.
//!
//! Every schedule is a pure function of `(campaign seed, schedule index)`
//! — failures are reported pinned so one bad schedule can be replayed in
//! isolation with [`run_schedule`].

use std::path::{Path, PathBuf};

use tps_core::rng::SplitMix64;
use tps_sim::{
    write_atomic, ExperimentMatrix, ExperimentReport, ExperimentSpec, FaultyIo, FaultyIoConfig,
    Mechanism, RunOptions,
};
use tps_wl::SuiteScale;

/// SplitMix64's golden-gamma increment, reused to spread schedule indices.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration of one chaos campaign.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Number of seeded kill/corruption/storm schedules to run.
    pub schedules: u64,
    /// Campaign base seed; every schedule's randomness derives from
    /// `seed ^ (index * GOLDEN)`, so a failing index replays alone.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            schedules: 240,
            seed: 0x7e57_c4a0_0000_0001,
        }
    }
}

/// One pinned schedule failure: everything needed to replay it.
#[derive(Clone, Debug)]
pub struct ChaosFailure {
    /// The schedule's index within the campaign.
    pub schedule: u64,
    /// The schedule's derived seed (what [`run_schedule`] re-derives).
    pub seed: u64,
    /// What contract broke.
    pub detail: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} (seed {:#x}): {}",
            self.schedule, self.seed, self.detail
        )
    }
}

/// Aggregated outcome of a chaos campaign.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Kill schedules (randomized byte-offset process death).
    pub kills: u64,
    /// Corruption schedules (one random byte flipped in a journal).
    pub corruptions: u64,
    /// I/O-storm schedules (intermittent errors / disk-full).
    pub io_storms: u64,
    /// Killed runs whose journal resumed to a byte-identical report.
    pub resumed: u64,
    /// Corruptions refused by the CRC/framing/sequence checks.
    pub detected: u64,
    /// Corruptions that were provably harmless (report still identical).
    pub harmless: u64,
    /// Damaged journals fully recovered by salvage mode.
    pub salvaged: u64,
    /// Contract violations, pinned for replay. Empty means the campaign
    /// passed.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// Whether every schedule upheld every contract.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} schedules ({} kills, {} corruptions, {} storms): \
             {} resumed, {} detected, {} harmless, {} salvaged, {} failures",
            self.schedules,
            self.kills,
            self.corruptions,
            self.io_storms,
            self.resumed,
            self.detected,
            self.harmless,
            self.salvaged,
            self.failures.len()
        )
    }
}

/// Per-schedule counter deltas folded into the [`ChaosReport`].
#[derive(Default)]
struct Outcome {
    resumed: u64,
    detected: u64,
    harmless: u64,
    salvaged: u64,
}

/// The shared reference state every schedule compares against.
struct Reference {
    matrix: ExperimentMatrix,
    json: String,
    cells: Vec<String>,
    journal: Vec<u8>,
    header_len: usize,
}

/// The fixed 2-cell matrix (gups × {THP, TPS}, test scale, one worker)
/// every schedule runs. Small enough that a campaign is a few seconds,
/// real enough that the journal carries full `RunStats` entries.
fn chaos_matrix() -> ExperimentMatrix {
    ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(11)
        .threads(1)
        .build()
        .expect("chaos spec is static and valid")
}

fn cell_docs(report: &ExperimentReport) -> Vec<String> {
    report.cells().iter().map(|c| c.to_json()).collect()
}

/// Runs the uninterrupted reference once: its report bytes and its
/// complete journal are the ground truth of every schedule.
fn build_reference(dir: &Path) -> Result<Reference, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let matrix = chaos_matrix();
    let path = dir.join("reference.ckpt");
    std::fs::remove_file(&path).ok();
    let report = matrix
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            ..RunOptions::default()
        })
        .map_err(|e| format!("reference run failed: {e}"))?;
    let journal =
        std::fs::read(&path).map_err(|e| format!("cannot read reference journal: {e}"))?;
    let header_len = journal
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("reference journal has no header line")?
        + 1;
    Ok(Reference {
        json: report.to_json(),
        cells: cell_docs(&report),
        matrix,
        journal,
        header_len,
    })
}

/// Runs the whole campaign in `dir` (scratch space; created if missing).
/// Deterministic: same config, same verdicts.
pub fn run_chaos_campaign(config: &ChaosConfig, dir: &Path) -> ChaosReport {
    let mut report = ChaosReport::default();
    let reference = match build_reference(dir) {
        Ok(reference) => reference,
        Err(detail) => {
            report.failures.push(ChaosFailure {
                schedule: u64::MAX,
                seed: config.seed,
                detail,
            });
            return report;
        }
    };
    for s in 0..config.schedules {
        report.schedules += 1;
        match s % 3 {
            0 => report.kills += 1,
            1 => report.corruptions += 1,
            _ => report.io_storms += 1,
        }
        let seed = schedule_seed(config.seed, s);
        match run_schedule_inner(&reference, seed, s, dir) {
            Ok(outcome) => {
                report.resumed += outcome.resumed;
                report.detected += outcome.detected;
                report.harmless += outcome.harmless;
                report.salvaged += outcome.salvaged;
            }
            Err(detail) => report.failures.push(ChaosFailure {
                schedule: s,
                seed,
                detail,
            }),
        }
    }
    report
}

/// Replays one pinned schedule (by campaign seed + index) in isolation.
///
/// # Errors
///
/// The broken contract's description, exactly as the campaign pins it.
pub fn run_schedule(config: &ChaosConfig, schedule: u64, dir: &Path) -> Result<(), String> {
    let reference = build_reference(dir)?;
    run_schedule_inner(
        &reference,
        schedule_seed(config.seed, schedule),
        schedule,
        dir,
    )
    .map(|_| ())
}

fn schedule_seed(base: u64, schedule: u64) -> u64 {
    base ^ schedule.wrapping_mul(GOLDEN)
}

fn run_schedule_inner(
    reference: &Reference,
    seed: u64,
    schedule: u64,
    dir: &Path,
) -> Result<Outcome, String> {
    let mut rng = SplitMix64::new(seed);
    let ckpt = dir.join(format!("chaos-{schedule}.ckpt"));
    let json = dir.join(format!("chaos-{schedule}.json"));
    for p in [&ckpt, &json] {
        std::fs::remove_file(p).ok();
    }
    let result = match schedule % 3 {
        0 => kill_schedule(reference, &mut rng, &ckpt, &json),
        1 => corruption_schedule(reference, &mut rng, &ckpt),
        _ => storm_schedule(reference, &mut rng, &ckpt),
    };
    if result.is_ok() {
        // Keep the wreckage of failing schedules around for inspection.
        for p in [&ckpt, &json] {
            std::fs::remove_file(p).ok();
        }
        let tmp = dir.join(format!("chaos-{schedule}.json.tmp"));
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Kill the write stream at a random byte offset; the survivors must
/// resume byte-identically and the report path must never hold a prefix.
fn kill_schedule(
    reference: &Reference,
    rng: &mut SplitMix64,
    ckpt: &Path,
    json: &Path,
) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    let kill_at = rng.next_u64() % (reference.journal.len() as u64 + 8);
    let io = FaultyIo::new(FaultyIoConfig {
        seed: rng.next_u64(),
        kill_at: Some(kill_at),
        ..FaultyIoConfig::default()
    });
    let report = reference
        .matrix
        .run_with_io(
            &RunOptions {
                checkpoint: Some(ckpt.to_path_buf()),
                ..RunOptions::default()
            },
            &io,
        )
        .map_err(|e| format!("killed run errored instead of dying silently: {e}"))?;
    if report.to_json() != reference.json {
        return Err("in-memory report of a killed run diverged".to_string());
    }
    // Publish the report through the same dying layer: the final path
    // must show all of it or none of it.
    let doc = report.to_json() + "\n";
    write_atomic(&io, json, doc.as_bytes())
        .map_err(|e| format!("atomic publish errored under kill: {e}"))?;
    match std::fs::read(json) {
        Err(_) => {} // never published: acceptable wreckage
        Ok(bytes) if bytes == doc.as_bytes() => {}
        Ok(bytes) => {
            return Err(format!(
                "partial report visible at the final path ({} of {} bytes)",
                bytes.len(),
                doc.len()
            ))
        }
    }
    // Resume from the wreckage over the real filesystem.
    let journal_bytes = std::fs::read(ckpt).unwrap_or_default();
    let header_complete = journal_bytes.contains(&b'\n');
    match reference.matrix.run_with(&RunOptions {
        resume: Some(ckpt.to_path_buf()),
        ..RunOptions::default()
    }) {
        Ok(resumed) => {
            if resumed.to_json() != reference.json {
                return Err(format!(
                    "resume after kill at byte {kill_at} is not byte-identical"
                ));
            }
            outcome.resumed += 1;
        }
        Err(e) if !header_complete => {
            // Killed inside the header line: refusal is the contract.
            let _ = e;
        }
        Err(e) => {
            return Err(format!(
                "salvageable journal (kill at byte {kill_at}) refused: {e}"
            ))
        }
    }
    Ok(outcome)
}

/// Flip one random byte of the complete reference journal; resume must
/// detect it or provably not need to, and salvage must recover whenever
/// the header survived.
fn corruption_schedule(
    reference: &Reference,
    rng: &mut SplitMix64,
    ckpt: &Path,
) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    let mut corrupted = reference.journal.clone();
    let pos = (rng.next_u64() % corrupted.len() as u64) as usize;
    let xor = (rng.next_u64() % 255 + 1) as u8;
    corrupted[pos] ^= xor;
    std::fs::write(ckpt, &corrupted).map_err(|e| format!("cannot plant corruption: {e}"))?;

    match reference.matrix.run_with(&RunOptions {
        resume: Some(ckpt.to_path_buf()),
        ..RunOptions::default()
    }) {
        Ok(report) => {
            // Resume accepted the damaged journal: only legal when the
            // output is still exactly right (e.g. the flip tore the tail
            // and the victim cell was recomputed).
            if report.to_json() != reference.json {
                return Err(format!(
                    "SILENTLY WRONG report from flipping byte {pos} by {xor:#04x}"
                ));
            }
            outcome.harmless += 1;
        }
        Err(e) => {
            outcome.detected += 1;
            // The resume mutated the journal (tail truncation cannot have
            // happened on an Err, but be safe): re-plant the corruption
            // for the salvage pass.
            std::fs::write(ckpt, &corrupted)
                .map_err(|e| format!("cannot re-plant corruption: {e}"))?;
            let header_damaged = pos < reference.header_len;
            let utf8_broken = std::str::from_utf8(&corrupted).is_err();
            match reference.matrix.run_with(&RunOptions {
                resume: Some(ckpt.to_path_buf()),
                salvage: true,
                ..RunOptions::default()
            }) {
                Ok(salvaged) => {
                    if cell_docs(&salvaged) != reference.cells {
                        return Err(format!("salvage of byte {pos} flip produced wrong cells"));
                    }
                    outcome.salvaged += 1;
                }
                Err(salvage_err) if header_damaged || utf8_broken => {
                    // Salvage cannot invent a header or read non-UTF-8;
                    // refusing is correct (and still a detection).
                    let _ = salvage_err;
                }
                Err(salvage_err) => {
                    return Err(format!(
                        "salvage refused a recoverable journal (byte {pos}, {e}): {salvage_err}"
                    ))
                }
            }
        }
    }
    Ok(outcome)
}

/// Run under intermittent injected errors or a disk-full budget: success
/// implies the exact reference report, and whatever journal survives must
/// salvage cleanly as long as its header line is complete.
fn storm_schedule(
    reference: &Reference,
    rng: &mut SplitMix64,
    ckpt: &Path,
) -> Result<Outcome, String> {
    let mut outcome = Outcome::default();
    let disk_full = rng.next_u64().is_multiple_of(2);
    let config = if disk_full {
        FaultyIoConfig {
            seed: rng.next_u64(),
            disk_full_at: Some(rng.next_u64() % (reference.journal.len() as u64 + 1)),
            ..FaultyIoConfig::default()
        }
    } else {
        FaultyIoConfig {
            seed: rng.next_u64(),
            error_rate: 0.2,
            short_write_rate: 0.3,
            ..FaultyIoConfig::default()
        }
    };
    let io = FaultyIo::new(config);
    match reference.matrix.run_with_io(
        &RunOptions {
            checkpoint: Some(ckpt.to_path_buf()),
            ..RunOptions::default()
        },
        &io,
    ) {
        Ok(report) => {
            if report.to_json() != reference.json {
                return Err("storm run reported success with a wrong report".to_string());
            }
        }
        Err(e) => {
            // The storm broke journal creation or the final sync; an
            // error (not a wrong report) is the accepted outcome.
            let _ = e;
        }
    }
    // Whatever landed on disk must salvage whenever its header survived.
    let bytes = std::fs::read(ckpt).unwrap_or_default();
    if !bytes.contains(&b'\n') {
        return Ok(outcome); // no complete header: nothing to recover
    }
    match reference.matrix.run_with(&RunOptions {
        resume: Some(ckpt.to_path_buf()),
        salvage: true,
        ..RunOptions::default()
    }) {
        Ok(salvaged) => {
            if cell_docs(&salvaged) != reference.cells {
                return Err("salvage after storm produced wrong cells".to_string());
            }
            outcome.salvaged += 1;
            Ok(outcome)
        }
        Err(e) => Err(format!("storm journal with complete header refused: {e}")),
    }
}

/// Scratch directory helper shared by the test and the verify gate:
/// a campaign-specific subdirectory of the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tps-chaos-{tag}"))
}
