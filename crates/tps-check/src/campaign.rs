//! Randomized fault-injection campaigns.
//!
//! A *schedule* is a seeded sequence of `mmap` / page-fault / `munmap` /
//! `compact` operations run against a small, pressured [`Os`] instance
//! with a [`FaultPlan`] installed, audited by an [`Auditor`] as it goes
//! and torn down completely at the end (all VMAs unmapped, with a final
//! everything-returned check). A *campaign* runs many schedules with
//! derived seeds and aggregates the results.
//!
//! Everything is deterministic: the campaign seed fixes the schedule
//! seeds, each schedule seed fixes both the op stream and the fault
//! stream, so any reported violation replays exactly.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use crate::audit::Auditor;
use crate::plan::{FaultPlan, FaultPlanConfig};
use tps_core::rng::Rng;
use tps_core::{InjectorHandle, PageOrder, TpsError, VirtAddr};
use tps_os::{Os, OsStats, PolicyConfig, PolicyKind, Vma};
use tps_tlb::Asid;

/// Knobs for a campaign (and for each schedule inside it).
#[derive(Copy, Clone, Debug)]
pub struct CampaignConfig {
    /// Number of schedules to run.
    pub schedules: u64,
    /// Operations per schedule (before the final teardown).
    pub ops_per_schedule: u32,
    /// Physical memory per schedule; small sizes create real pressure.
    pub mem_bytes: u64,
    /// Campaign master seed; schedule seeds derive from it.
    pub seed: u64,
    /// Fault-site probabilities. The `seed` field inside is ignored —
    /// each schedule derives its own injector seed.
    pub plan: FaultPlanConfig,
    /// Audit after every this-many ops (0 = only at schedule end).
    pub audit_every: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            schedules: 100,
            ops_per_schedule: 48,
            mem_bytes: 32 << 20,
            seed: 0x7505_cafe,
            plan: FaultPlanConfig {
                buddy_alloc: 0.05,
                reserve_span: 0.20,
                compaction_step: 0.25,
                shootdown_deliver: 0.25,
                // Hardware sites stay off here: the campaign audits the OS
                // layer; `crate::shadow` owns the hardware sites.
                ..FaultPlanConfig::disabled(0)
            },
            audit_every: 8,
        }
    }
}

/// What one schedule did and found.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// Final OS counters (after teardown).
    pub stats: OsStats,
    /// Free bytes at teardown (for conservation checks).
    pub free_bytes: u64,
    /// Free-list histogram at teardown, as (order, count) pairs — part of
    /// the byte-identical fingerprint for zero-cost-default checks.
    pub histogram: Vec<(u8, u64)>,
    /// Invariant violations, prefixed with the op index where found.
    pub violations: Vec<String>,
    /// Operations that legitimately failed with `OutOfMemory`.
    pub oom_events: u64,
    /// Faults the injector introduced (0 if the caller supplied its own
    /// injector or none).
    pub injected: u64,
    /// Injector consultations (0 under a caller-supplied injector).
    pub consultations: u64,
}

/// Aggregate results of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Schedules completed.
    pub schedules_run: u64,
    /// Total operations executed.
    pub ops_run: u64,
    /// Total faults injected across all schedules.
    pub faults_injected: u64,
    /// Total legitimate out-of-memory degradations observed.
    pub oom_events: u64,
    /// Summed OS counters that prove the degradation paths really ran.
    pub total_faults: u64,
    /// Summed 4 KB fallbacks.
    pub total_fallback_4k: u64,
    /// Summed allocation-failure fallbacks.
    pub total_oom_fallbacks: u64,
    /// Summed interrupted compaction passes.
    pub total_compaction_aborts: u64,
    /// Summed redelivered shootdowns.
    pub total_shootdowns_retried: u64,
    /// Summed page promotions (the TPS machinery kept working).
    pub total_promotions: u64,
    /// All violations, each prefixed with its schedule seed (truncated to
    /// [`CampaignReport::MAX_VIOLATIONS`]).
    pub violations: Vec<String>,
    /// Violations dropped beyond the cap.
    pub violations_truncated: u64,
    /// Wall-clock time per schedule as `(schedule seed, elapsed)`, in run
    /// order. Diagnostic only — wall-clock never participates in the
    /// campaign's deterministic outcome.
    pub schedule_elapsed: Vec<(u64, Duration)>,
    /// Triage: schedules whose violations vanished when replayed with a
    /// re-derived fault-plan seed, as `(schedule seed, first-attempt
    /// violation count)`. A flaky schedule's breakage depends on fault
    /// *timing*, not on the op stream — a different bug class than a
    /// deterministic violation, so it is called out separately. (The
    /// first-attempt violations still count in [`CampaignReport::violations`].)
    pub flaky_schedules: Vec<(u64, u64)>,
}

impl CampaignReport {
    /// Cap on retained violation messages.
    pub const MAX_VIOLATIONS: usize = 32;

    /// Slowest schedules, as `(seed, elapsed)` sorted descending, at most
    /// `n` of them.
    pub fn slowest(&self, n: usize) -> Vec<(u64, Duration)> {
        let mut by_time = self.schedule_elapsed.clone();
        by_time.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_time.truncate(n);
        by_time
    }

    /// Human-readable summary: totals, the slowest schedules, and the
    /// flaky-schedule triage section.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "campaign: {} schedules, {} ops, {} faults injected, {} OOM degradations",
            self.schedules_run, self.ops_run, self.faults_injected, self.oom_events
        );
        let total: Duration = self.schedule_elapsed.iter().map(|(_, d)| *d).sum();
        let _ = writeln!(
            s,
            "elapsed: {:.3}s total across {} schedules",
            total.as_secs_f64(),
            self.schedule_elapsed.len()
        );
        for (seed, elapsed) in self.slowest(3) {
            let _ = writeln!(s, "  slowest: schedule {seed:#x} took {elapsed:?}");
        }
        let _ = writeln!(
            s,
            "violations: {} ({} truncated)",
            self.violations.len(),
            self.violations_truncated
        );
        for v in &self.violations {
            let _ = writeln!(s, "  {v}");
        }
        let _ = writeln!(s, "flaky-schedule triage:");
        if self.flaky_schedules.is_empty() {
            let _ = writeln!(
                s,
                "  none — every violating schedule (if any) failed on retry too"
            );
        } else {
            for (seed, first_attempt) in &self.flaky_schedules {
                let _ = writeln!(
                    s,
                    "  schedule {seed:#x}: {first_attempt} violation(s) on the pinned \
                     fault seed, clean on retry — fault-timing sensitive"
                );
            }
        }
        s
    }
}

/// The policies a schedule may draw (RMM is exercised elsewhere; its
/// eager `mmap` propagates OOM rather than degrading, which would blur
/// the campaign's "errors are violations" rule).
const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Tps,
    PolicyKind::TpsEager,
    PolicyKind::Thp,
    PolicyKind::Only4K,
    PolicyKind::Only2M,
];

/// Runs one schedule with a caller-chosen injector (possibly `None`).
///
/// The op stream depends only on `(cfg, schedule_seed)` and the OS's
/// observable behavior, so two runs with behaviorally identical injectors
/// (e.g. `None` vs a never-faulting plan) produce identical outcomes —
/// the zero-cost-default property.
pub fn run_schedule_with_injector(
    cfg: &CampaignConfig,
    schedule_seed: u64,
    injector: Option<InjectorHandle>,
) -> ScheduleOutcome {
    let mut rng = Rng::new(schedule_seed);
    let kind = POLICIES[rng.below(POLICIES.len() as u64) as usize];
    let mut policy = PolicyConfig::new(kind);
    if kind == PolicyKind::Tps && rng.chance(0.5) {
        // Exercise speculative promotion too (bloat allowed, audited).
        policy = policy.with_threshold(0.5);
    }
    let mut os = Os::new(cfg.mem_bytes, policy);
    if rng.chance(0.5) {
        os.set_background_noise(16);
    }
    os.set_fault_injector(injector);

    let procs: Vec<Asid> = (0..1 + rng.below(2)).map(|_| os.spawn()).collect();
    let mut vmas: Vec<(Asid, Vma)> = Vec::new();
    let mut auditor = Auditor::new();
    let mut out = ScheduleOutcome {
        stats: OsStats::default(),
        free_bytes: 0,
        histogram: Vec::new(),
        violations: Vec::new(),
        oom_events: 0,
        injected: 0,
        consultations: 0,
    };
    let violation = |out: &mut ScheduleOutcome, op: u32, msg: String| {
        out.violations.push(format!("op {op}: {msg}"));
    };

    for op in 0..cfg.ops_per_schedule {
        let roll = rng.next_f64();
        if vmas.is_empty() || (roll < 0.20 && vmas.len() < 24) {
            let pid = procs[rng.below(procs.len() as u64) as usize];
            let bytes = PageOrder::P4K.bytes() * (1 + rng.below(96));
            match os.mmap(pid, bytes) {
                Ok(vma) => vmas.push((pid, vma)),
                Err(e) => violation(&mut out, op, format!("mmap failed: {e}")),
            }
        } else if roll < 0.28 {
            let (pid, vma) = vmas.swap_remove(rng.below(vmas.len() as u64) as usize);
            match os.munmap(pid, vma.base()) {
                Ok(shootdowns) => auditor.record_shootdowns(&shootdowns),
                Err(e) => violation(&mut out, op, format!("munmap failed: {e}")),
            }
        } else if roll < 0.34 {
            match os.compact() {
                Ok((_, shootdowns)) => auditor.record_shootdowns(&shootdowns),
                Err(e) => violation(&mut out, op, format!("compact failed: {e}")),
            }
        } else {
            let (pid, vma) = &vmas[rng.below(vmas.len() as u64) as usize];
            let off = rng.below(vma.len());
            let va = VirtAddr::new(vma.base().value() + off);
            if os.page_table(*pid).lookup(va).is_none() {
                match os.handle_fault(*pid, va, rng.chance(0.5)) {
                    Ok(outcome) => auditor.record_fill(&os, *pid, &outcome),
                    Err(TpsError::OutOfMemory { .. }) => out.oom_events += 1,
                    Err(e) => violation(&mut out, op, format!("fault at {va} failed: {e}")),
                }
            }
        }
        if cfg.audit_every > 0 && (op + 1) % cfg.audit_every == 0 {
            for msg in auditor.audit(&os) {
                violation(&mut out, op, msg);
            }
        }
    }

    // Teardown: unmap everything, then all non-noise memory must be back.
    for (pid, vma) in vmas.drain(..) {
        match os.munmap(pid, vma.base()) {
            Ok(shootdowns) => auditor.record_shootdowns(&shootdowns),
            Err(e) => violation(
                &mut out,
                cfg.ops_per_schedule,
                format!("teardown munmap: {e}"),
            ),
        }
    }
    for msg in auditor.audit(&os) {
        violation(&mut out, cfg.ops_per_schedule, msg);
    }
    let noise_bytes = os.noise_blocks().len() as u64 * PageOrder::P2M.bytes();
    if os.buddy().used_bytes() != noise_bytes {
        violation(
            &mut out,
            cfg.ops_per_schedule,
            format!(
                "teardown leak: {} bytes still allocated, {} attributable to noise",
                os.buddy().used_bytes(),
                noise_bytes
            ),
        );
    }

    out.stats = os.stats();
    out.free_bytes = os.buddy().free_bytes();
    out.histogram = os
        .buddy()
        .histogram()
        .iter()
        .map(|(order, count)| (order.get(), count))
        .collect();
    out
}

/// Runs one schedule with a [`FaultPlan`] built from `cfg.plan` (seeded
/// per schedule) and reports its injection counters.
pub fn run_schedule(cfg: &CampaignConfig, schedule_seed: u64) -> ScheduleOutcome {
    let plan_cfg = FaultPlanConfig {
        // Decorrelate the fault stream from the op stream.
        seed: schedule_seed ^ 0x9e37_79b9_7f4a_7c15,
        ..cfg.plan
    };
    let (handle, plan) = FaultPlan::handles(plan_cfg);
    let mut out = run_schedule_with_injector(cfg, schedule_seed, Some(handle));
    out.injected = plan.borrow().injected_total();
    out.consultations = plan.borrow().consultations();
    out
}

/// Replays a violating schedule once with a re-derived fault-plan seed to
/// separate fault-timing-sensitive ("flaky") schedules from deterministic
/// breakage. Returns `true` when the retry ran clean.
fn retry_runs_clean(cfg: &CampaignConfig, schedule_seed: u64) -> bool {
    let retry_plan = FaultPlanConfig {
        // Same op stream, different fault stream: flip the derived seed
        // with a salt no first-attempt plan uses.
        seed: schedule_seed ^ 0x9e37_79b9_7f4a_7c15 ^ 0x5eed_5a17,
        ..cfg.plan
    };
    let (handle, _plan) = FaultPlan::handles(retry_plan);
    run_schedule_with_injector(cfg, schedule_seed, Some(handle))
        .violations
        .is_empty()
}

/// Runs `cfg.schedules` schedules with seeds derived from `cfg.seed`.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut seeder = Rng::new(cfg.seed);
    let mut report = CampaignReport::default();
    for _ in 0..cfg.schedules {
        let schedule_seed = seeder.next_u64();
        let started = Instant::now();
        let out = run_schedule(cfg, schedule_seed);
        report
            .schedule_elapsed
            .push((schedule_seed, started.elapsed()));
        if !out.violations.is_empty() && retry_runs_clean(cfg, schedule_seed) {
            report
                .flaky_schedules
                .push((schedule_seed, out.violations.len() as u64));
        }
        report.schedules_run += 1;
        report.ops_run += u64::from(cfg.ops_per_schedule);
        report.faults_injected += out.injected;
        report.oom_events += out.oom_events;
        report.total_faults += out.stats.faults;
        report.total_fallback_4k += out.stats.fallback_4k;
        report.total_oom_fallbacks += out.stats.oom_fallbacks;
        report.total_compaction_aborts += out.stats.compaction_aborts;
        report.total_shootdowns_retried += out.stats.shootdowns_retried;
        report.total_promotions += out.stats.promotions;
        for msg in out.violations {
            if report.violations.len() < CampaignReport::MAX_VIOLATIONS {
                report
                    .violations
                    .push(format!("schedule {schedule_seed:#x}: {msg}"));
            } else {
                report.violations_truncated += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_schedule_runs_clean_under_injection() {
        let cfg = CampaignConfig::default();
        let out = run_schedule(&cfg, 0xdead_beef);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.consultations > 0, "injector was consulted");
        assert!(out.stats.faults > 0, "schedule did real work");
    }

    #[test]
    fn schedules_replay_deterministically() {
        let cfg = CampaignConfig::default();
        let a = run_schedule(&cfg, 42);
        let b = run_schedule(&cfg, 42);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.free_bytes, b.free_bytes);
        assert_eq!(a.histogram, b.histogram);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn small_campaign_aggregates() {
        let cfg = CampaignConfig {
            schedules: 8,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.schedules_run, 8);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.total_faults > 0);
    }

    #[test]
    fn campaign_times_every_schedule() {
        let cfg = CampaignConfig {
            schedules: 4,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg);
        assert_eq!(report.schedule_elapsed.len(), 4);
        // Each entry carries the schedule seed it timed, in run order.
        let mut seeder = Rng::new(cfg.seed);
        for (seed, _) in &report.schedule_elapsed {
            assert_eq!(*seed, seeder.next_u64());
        }
        assert_eq!(report.slowest(2).len(), 2);
    }

    #[test]
    fn render_covers_the_triage_section() {
        let cfg = CampaignConfig {
            schedules: 2,
            ..CampaignConfig::default()
        };
        let mut report = run_campaign(&cfg);
        let clean = report.render();
        assert!(clean.contains("flaky-schedule triage:"));
        assert!(clean.contains("none — every violating schedule"));
        assert!(clean.contains("slowest: schedule"));

        report.flaky_schedules.push((0xabcd, 3));
        let flaky = report.render();
        assert!(flaky.contains("schedule 0xabcd: 3 violation(s)"));
        assert!(flaky.contains("fault-timing sensitive"));
    }
}
