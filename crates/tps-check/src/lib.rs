//! Robustness harness for the TPS reproduction.
//!
//! The paper's OS machinery (reservations, promotion, compaction, TLB
//! shootdowns) has many cross-layer contracts that no single crate can
//! check on its own. This crate closes that gap with three pieces:
//!
//! * [`FaultPlan`] — a deterministic, seeded [`tps_core::FaultInjector`]
//!   that forces buddy-allocation failure, whole-span reservation denial,
//!   compaction interruption, and dropped TLB-shootdown deliveries at
//!   configurable per-site probabilities.
//! * [`Auditor`] — a cross-layer invariant checker that walks a live
//!   [`tps_os::Os`] and verifies buddy free-list conservation, the
//!   reservation-table ⊆ buddy-ownership bijection, page-table-leaf ↔
//!   reservation consistency, alias-PTE coherence, and (via a shadow TLB
//!   fed from fault outcomes and shootdown lists) that every surviving
//!   TLB entry still translates — i.e. no shootdown was forgotten.
//! * [`campaign`] — a randomized schedule driver that runs seeded
//!   `mmap`/fault/`munmap`/`compact` sequences under an injected fault
//!   plan and audits as it goes. The headline robustness claim — ~1,000
//!   seeded schedules complete with zero panics and every invariant held —
//!   is `tests/campaign.rs` running [`campaign::run_campaign`].
//! * [`shadow`] — a differential shadow-walk oracle for the *hardware*
//!   fault sites: every translation performed under injected walker /
//!   MMU-cache / TLB faults is replayed against a naive cache-free
//!   reference walker, proving injected hardware faults only ever cost
//!   time, never correctness.
//! * [`chaos`] — a deterministic chaos campaign for the experiment
//!   engine's *artifact* I/O: whole matrix runs driven through
//!   [`tps_sim::FaultyIo`], killed at randomized byte offsets and fed
//!   corrupted journals, proving every salvageable journal resumes
//!   byte-identically and every corruption is detected — never a
//!   silently wrong report.
//! * [`containment`] — a multi-tenant fault-containment chaos campaign:
//!   hundreds of seeded schedules mixing well-behaved tenants with
//!   memory hogs, cap overrunners and malformed event streams, proving
//!   the machine kills misbehaving tenants without panicking, returns
//!   their frames to a conserved buddy state, keeps per-tenant
//!   statistics summing exactly to the rollup, and reproduces the same
//!   kill sequence on every re-run.
//!
//! Nothing here is in the simulator's hot path: production crates only
//! carry the `Option<InjectorHandle>` hook, which stays `None` (one
//! untaken branch) unless a harness installs a plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
pub mod campaign;
pub mod chaos;
pub mod containment;
mod plan;
pub mod shadow;

pub use audit::Auditor;
pub use plan::{FaultPlan, FaultPlanConfig};
