//! Cross-layer invariant auditor.
//!
//! [`Auditor::audit`] walks a live [`Os`] and checks every contract that
//! spans crate boundaries:
//!
//! 1. **Buddy conservation** — the allocator's internal free lists pass
//!    [`tps_mem::BuddyAllocator::check_invariants`], `free + used = total`,
//!    and the live-allocation list accounts for every used byte.
//! 2. **Ownership bijection** — the set of live buddy allocations equals,
//!    block for block, the union of reservation segments, direct-mapped
//!    blocks, and kernel-noise blocks. No frame is owned twice, leaked, or
//!    conjured from nowhere.
//! 3. **Page-table ↔ reservation consistency** — every mapped leaf inside
//!    a VMA is backed either by the reservation covering its address
//!    (agreeing with [`tps_mem::Reservation::frame_for`]) or by a direct
//!    block; the per-table walk also re-verifies alias-PTE coherence via
//!    [`tps_pt::PageTable::check_invariants`], leaves never escape their
//!    VMA, and no two leaves map overlapping physical ranges.
//! 4. **Shootdown completeness** — a shadow TLB is filled from fault
//!    outcomes and invalidated from the shootdown lists the OS emits.
//!    Every surviving entry must still translate exactly; a stale entry
//!    means a remapping happened without its shootdown.
//!
//! The auditor is read-only with respect to the OS and returns violations
//! as strings rather than panicking, so a campaign can collect all
//! failures from a schedule in one pass.

use std::collections::{BTreeMap, HashMap};
use tps_core::{PageOrder, PhysAddr, VirtAddr};
use tps_os::{FaultOutcome, Os, Shootdown};
use tps_tlb::Asid;

/// One shadow-TLB translation, captured at fault time.
#[derive(Copy, Clone, Debug)]
struct ShadowEntry {
    order: PageOrder,
    pa: PhysAddr,
}

/// Cross-layer invariant checker with a shadow TLB.
///
/// Feed it every [`FaultOutcome`] (a TLB fill) and every shootdown list
/// the OS returns (invalidations), then call [`Auditor::audit`] as often
/// as desired — typically every few operations and at schedule end.
#[derive(Debug, Default)]
pub struct Auditor {
    /// Shadow TLB: (asid, leaf base va) → cached translation.
    shadow: HashMap<(Asid, u64), ShadowEntry>,
    /// Violations observed while recording (e.g. a fault that mapped
    /// nothing), drained by the next `audit` call.
    pending: Vec<String>,
    fills: u64,
    invalidations: u64,
}

impl Auditor {
    /// A fresh auditor with an empty shadow TLB.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// Number of shadow-TLB fills recorded.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Number of shadow-TLB invalidations applied.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Current shadow-TLB population.
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }

    /// Records the TLB fill a handled fault implies: the leaf now covering
    /// the faulted address is cached. Promotions legitimately leave older,
    /// smaller entries in place — their translations are unchanged, which
    /// is exactly what `audit` verifies.
    pub fn record_fill(&mut self, os: &Os, asid: Asid, outcome: &FaultOutcome) {
        self.fills += 1;
        match os.page_table(asid).lookup(outcome.va) {
            Some(leaf) => {
                let base = outcome.va.align_down(leaf.order.shift());
                self.shadow.insert(
                    (asid, base.value()),
                    ShadowEntry {
                        order: leaf.order,
                        pa: leaf.base,
                    },
                );
            }
            None => self.pending.push(format!(
                "fault at {:#x} (asid {asid}) reported order {} but left no mapping",
                outcome.va.value(),
                outcome.mapped_order.get()
            )),
        }
    }

    /// Applies a shootdown list: every shadow entry overlapping an
    /// invalidated range is dropped, exactly as hardware TLBs would.
    pub fn record_shootdowns(&mut self, shootdowns: &[Shootdown]) {
        for sd in shootdowns {
            self.invalidations += 1;
            let lo = sd.va.value();
            let hi = lo + sd.order.bytes();
            self.shadow.retain(|&(asid, base), entry| {
                asid != sd.asid || base + entry.order.bytes() <= lo || hi <= base
            });
        }
    }

    /// Runs every cross-layer check against the OS's current state.
    ///
    /// Returns all violations found (empty means every invariant held).
    pub fn audit(&mut self, os: &Os) -> Vec<String> {
        let mut v = std::mem::take(&mut self.pending);
        self.check_buddy(os, &mut v);
        self.check_ownership(os, &mut v);
        self.check_page_tables(os, &mut v);
        self.check_shadow_tlb(os, &mut v);
        v
    }

    fn check_buddy(&self, os: &Os, v: &mut Vec<String>) {
        let buddy = os.buddy();
        if let Err(e) = buddy.check_invariants() {
            v.push(format!("buddy internal: {e}"));
        }
        if buddy.free_bytes() + buddy.used_bytes() != buddy.total_bytes() {
            v.push(format!(
                "buddy conservation: free {} + used {} != total {}",
                buddy.free_bytes(),
                buddy.used_bytes(),
                buddy.total_bytes()
            ));
        }
        let accounted: u64 = buddy
            .allocations()
            .iter()
            .map(|(_, order)| order.bytes())
            .sum();
        if accounted != buddy.used_bytes() {
            v.push(format!(
                "buddy conservation: allocations account for {} of {} used bytes",
                accounted,
                buddy.used_bytes()
            ));
        }
    }

    /// Live buddy allocations must equal reservation segments ∪ direct
    /// blocks ∪ noise blocks, block for block.
    fn check_ownership(&self, os: &Os, v: &mut Vec<String>) {
        let mut owners: BTreeMap<u64, (PageOrder, String)> = BTreeMap::new();
        let mut claim = |base: PhysAddr, order: PageOrder, who: String, v: &mut Vec<String>| {
            if let Some((_, prev)) = owners.insert(base.value(), (order, who.clone())) {
                v.push(format!(
                    "frame {:#x} owned twice: {prev} and {who}",
                    base.value()
                ));
            }
        };
        for asid in 0..os.process_count() as Asid {
            let proc = os.process(asid);
            for res in proc.reservations().iter() {
                for seg in res.segments() {
                    claim(
                        seg.base,
                        seg.order,
                        format!(
                            "reservation {:#x}+{:#x} (asid {asid})",
                            res.va_base().value(),
                            seg.offset
                        ),
                        v,
                    );
                }
            }
            for (vma_base, blocks) in proc.direct_blocks() {
                for &(pa, order) in blocks {
                    claim(
                        pa,
                        order,
                        format!("direct vma {vma_base:#x} (asid {asid})"),
                        v,
                    );
                }
            }
        }
        for &pa in os.noise_blocks() {
            claim(pa, PageOrder::P2M, "kernel noise".to_string(), v);
        }
        let allocs: BTreeMap<u64, PageOrder> = os
            .buddy()
            .allocations()
            .into_iter()
            .map(|(pa, order)| (pa.value(), order))
            .collect();
        for (&base, &(order, ref who)) in &owners {
            match allocs.get(&base) {
                Some(&a) if a == order => {}
                Some(&a) => v.push(format!(
                    "frame {base:#x}: {who} holds order {} but buddy allocated order {}",
                    order.get(),
                    a.get()
                )),
                None => v.push(format!(
                    "frame {base:#x}: {who} holds a block the buddy does not consider allocated"
                )),
            }
        }
        for (&base, &order) in &allocs {
            if !owners.contains_key(&base) {
                v.push(format!(
                    "frame {base:#x} (order {}) allocated but owned by no reservation, \
                     direct mapping, or noise block — leaked",
                    order.get()
                ));
            }
        }
    }

    /// Walks every VMA's leaves: backing, containment, alias coherence,
    /// no stray leaves, and global frame disjointness.
    fn check_page_tables(&self, os: &Os, v: &mut Vec<String>) {
        let mut phys_ranges: Vec<(u64, u64, String)> = Vec::new();
        for asid in 0..os.process_count() as Asid {
            let proc = os.process(asid);
            let pt = os.page_table(asid);
            if let Err(e) = pt.check_invariants() {
                v.push(format!("page table (asid {asid}): {e}"));
            }
            // Direct blocks as sorted intervals, for leaf containment.
            let mut direct: Vec<(u64, u64)> = proc
                .direct_blocks()
                .flat_map(|(_, blocks)| blocks.iter())
                .map(|&(pa, order)| (pa.value(), pa.value() + order.bytes()))
                .collect();
            direct.sort_unstable();
            let mut walked = 0u64;
            for vma in proc.address_space().iter() {
                let mut va = vma.base().value();
                while va < vma.end().value() {
                    let Some(leaf) = pt.lookup(VirtAddr::new(va)) else {
                        va += PageOrder::P4K.bytes();
                        continue;
                    };
                    let leaf_va = VirtAddr::new(va).align_down(leaf.order.shift());
                    let leaf_end = leaf_va.value() + leaf.order.bytes();
                    if leaf_va < vma.base() || leaf_end > vma.end().value() {
                        v.push(format!(
                            "leaf {:#x} (order {}, asid {asid}) escapes its vma \
                             [{:#x}, {:#x})",
                            leaf_va.value(),
                            leaf.order.get(),
                            vma.base().value(),
                            vma.end().value()
                        ));
                    }
                    walked += leaf.order.bytes();
                    self.check_leaf_backing(proc, asid, leaf_va, leaf.base, leaf.order, &direct, v);
                    phys_ranges.push((
                        leaf.base.value(),
                        leaf.base.value() + leaf.order.bytes(),
                        format!("leaf {:#x} (asid {asid})", leaf_va.value()),
                    ));
                    va = leaf_end;
                }
            }
            if walked != pt.mapped_bytes() {
                v.push(format!(
                    "page table (asid {asid}) maps {} bytes but only {} lie in live VMAs",
                    pt.mapped_bytes(),
                    walked
                ));
            }
            for res in proc.reservations().iter() {
                if proc.address_space().find(res.va_base()).is_none() {
                    v.push(format!(
                        "reservation at {:#x} (asid {asid}) covers no live VMA",
                        res.va_base().value()
                    ));
                }
            }
        }
        // Without CoW sharing, mapped physical ranges must be disjoint.
        phys_ranges.sort_unstable_by_key(|r| r.0);
        for pair in phys_ranges.windows(2) {
            if pair[1].0 < pair[0].1 {
                v.push(format!(
                    "physical overlap: {} [{:#x},{:#x}) vs {} [{:#x},{:#x})",
                    pair[0].2, pair[0].0, pair[0].1, pair[1].2, pair[1].0, pair[1].1
                ));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_leaf_backing(
        &self,
        proc: &tps_os::Process,
        asid: Asid,
        leaf_va: VirtAddr,
        leaf_pa: PhysAddr,
        order: PageOrder,
        direct: &[(u64, u64)],
        v: &mut Vec<String>,
    ) {
        // Reservation-backed: the reservation covering this address must
        // agree on the frame. (A direct block may coexist in the same
        // chunk when an earlier fault degraded — then the direct check
        // applies instead.)
        if let Some(res) = proc.reservations().find(leaf_va) {
            if res.frame_for(leaf_va - res.va_base()) == Some(leaf_pa) {
                return;
            }
        }
        let end = leaf_pa.value() + order.bytes();
        let contained = direct
            .iter()
            .take_while(|&&(base, _)| base < end)
            .any(|&(base, block_end)| base <= leaf_pa.value() && end <= block_end);
        if !contained {
            v.push(format!(
                "leaf {:#x} -> {:#x} (order {}, asid {asid}) backed by neither its \
                 reservation nor a direct block",
                leaf_va.value(),
                leaf_pa.value(),
                order.get()
            ));
        }
    }

    /// Every surviving shadow-TLB entry must still translate exactly.
    fn check_shadow_tlb(&self, os: &Os, v: &mut Vec<String>) {
        for (&(asid, base), entry) in &self.shadow {
            let pt = os.page_table(asid);
            let last = base + entry.order.bytes() - PageOrder::P4K.bytes();
            for (va, expect) in [
                (base, entry.pa.value()),
                (
                    last,
                    entry.pa.value() + entry.order.bytes() - PageOrder::P4K.bytes(),
                ),
            ] {
                match pt.translate(VirtAddr::new(va)) {
                    Some(pa) if pa.value() == expect => {}
                    got => v.push(format!(
                        "stale TLB entry: asid {asid} va {va:#x} cached -> {expect:#x} \
                         but page table says {:?} — a shootdown was missed",
                        got.map(|p| p.value())
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;
    use tps_os::{PolicyConfig, PolicyKind};

    #[test]
    fn clean_os_audits_clean() {
        let mut os = Os::new(64 << 20, PolicyConfig::new(PolicyKind::Tps));
        let pid = os.spawn();
        let vma = os.mmap(pid, 1 << 20).unwrap();
        let mut auditor = Auditor::new();
        for i in 0..64 {
            let va = VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE);
            let outcome = os.handle_fault(pid, va, true).unwrap();
            auditor.record_fill(&os, pid, &outcome);
        }
        assert!(auditor.audit(&os).is_empty());
        assert_eq!(auditor.fills(), 64);
        assert!(auditor.shadow_len() > 0);
    }

    #[test]
    fn munmap_shootdowns_clear_the_shadow_tlb() {
        let mut os = Os::new(64 << 20, PolicyConfig::new(PolicyKind::Tps));
        let pid = os.spawn();
        let vma = os.mmap(pid, 256 << 10).unwrap();
        let mut auditor = Auditor::new();
        let outcome = os.handle_fault(pid, vma.base(), true).unwrap();
        auditor.record_fill(&os, pid, &outcome);
        let shootdowns = os.munmap(pid, vma.base()).unwrap();
        auditor.record_shootdowns(&shootdowns);
        assert_eq!(auditor.shadow_len(), 0, "unmap invalidated everything");
        assert!(auditor.audit(&os).is_empty());
    }

    #[test]
    fn a_missed_shootdown_is_detected() {
        let mut os = Os::new(64 << 20, PolicyConfig::new(PolicyKind::Tps));
        let pid = os.spawn();
        let vma = os.mmap(pid, 256 << 10).unwrap();
        let mut auditor = Auditor::new();
        let outcome = os.handle_fault(pid, vma.base(), true).unwrap();
        auditor.record_fill(&os, pid, &outcome);
        // Unmap but "forget" to deliver the shootdowns to the auditor —
        // the shadow TLB now holds a translation the page table revoked.
        let _dropped = os.munmap(pid, vma.base()).unwrap();
        let violations = auditor.audit(&os);
        assert!(
            violations.iter().any(|m| m.contains("stale TLB entry")),
            "expected a stale-entry violation, got: {violations:?}"
        );
    }

    #[test]
    fn promotion_keeps_old_entries_valid() {
        let mut os = Os::new(64 << 20, PolicyConfig::new(PolicyKind::Tps));
        let pid = os.spawn();
        let vma = os.mmap(pid, 64 << 10).unwrap(); // promotes up to order 4
        let mut auditor = Auditor::new();
        for i in 0..16 {
            let va = VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE);
            let outcome = os.handle_fault(pid, va, true).unwrap();
            auditor.record_fill(&os, pid, &outcome);
        }
        // The final fault promoted; earlier 4 KB fills survive because
        // promotion preserves every translation (no shootdown required).
        assert!(auditor.audit(&os).is_empty());
    }
}
