//! Differential shadow-walk oracle for the hardware-layer fault sites.
//!
//! The OS-level campaign checks cross-layer invariants; this oracle
//! checks the *hardware model* under injected faults. It drives random
//! translations through the full product path — any-size L1 TLB, dual
//! STLB, MMU paging-structure caches, page walker — with every hardware
//! [`tps_core::FaultSite`] armed, and replays **every** translation (in
//! particular every one that absorbed a fault) against a naive reference
//! walker that descends the page table entry by entry with no caches, no
//! TLBs, and no injector. Injected hardware faults may only cost time;
//! any divergence from the reference is a correctness violation.

use crate::plan::{FaultPlan, FaultPlanConfig};
use tps_core::rng::Rng;
use tps_core::{PhysAddr, VirtAddr, BASE_PAGE_SIZE};
use tps_os::{Os, PolicyConfig, PolicyKind, Vma};
use tps_pt::{AliasPolicy, MmuCaches, PageTable, Walker};
use tps_tlb::{AnySizeTlb, Asid, DualStlb, TlbEntry};

/// Knobs for one shadow-walk run.
#[derive(Copy, Clone, Debug)]
pub struct ShadowConfig {
    /// Random translations driven through the product path.
    pub translations: u32,
    /// Master seed: fixes the address stream and the fault stream.
    pub seed: u64,
    /// Per-site probability armed on every hardware fault site.
    pub rate: f64,
    /// Modeled physical memory backing the mappings.
    pub mem_bytes: u64,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        ShadowConfig {
            translations: 4_000,
            seed: 0x5aad_0e11,
            rate: 0.05,
            mem_bytes: 64 << 20,
        }
    }
}

/// What one shadow-walk run observed.
#[derive(Clone, Debug, Default)]
pub struct ShadowReport {
    /// Translations performed.
    pub translations: u64,
    /// Translations during which the injector fired at least once.
    pub faulted_translations: u64,
    /// L1 (any-size TLB) hits.
    pub tlb_hits: u64,
    /// Dual-STLB hits.
    pub stlb_hits: u64,
    /// Full page walks.
    pub walks: u64,
    /// Product-vs-reference divergences (correctness violations; must be
    /// empty). Each entry names the VA and both physical addresses.
    pub mismatches: Vec<String>,
    /// Injections per fault-site label, in label order.
    pub injected: Vec<(&'static str, u64)>,
    /// Degradation counters: (walk restarts, alias-install retries,
    /// MMU-cache fill drops, TLB fill drops, TLB evict abandons, STLB
    /// probe misses) — the panic-free cost of the absorbed faults.
    pub degradations: [u64; 6],
}

impl ShadowReport {
    /// Injections recorded for one site label.
    pub fn injected_at(&self, label: &str) -> u64 {
        self.injected
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0, |(_, n)| *n)
    }
}

/// Physical address a TLB entry yields for `va` (base-page translation
/// plus the offset within the base page — matching [`WalkOk::translate`]
/// for any entry that covers the address).
///
/// [`WalkOk::translate`]: tps_pt::WalkOk::translate
fn entry_pa(entry: &TlbEntry, va: VirtAddr) -> PhysAddr {
    PhysAddr::new(
        entry.translate(va.base_page_number()) * BASE_PAGE_SIZE
            + va.page_offset(tps_core::BASE_PAGE_SHIFT),
    )
}

/// The naive reference walker: a plain radix descent over raw entries.
/// No caches, no TLBs, no injector, no alias bookkeeping — just the
/// architectural definition of a page walk.
fn reference_walk(pt: &PageTable, va: VirtAddr) -> Option<PhysAddr> {
    let mut level = pt.levels();
    let mut node = pt.root();
    loop {
        let pte = pt.read_entry(node, va.pt_index(level));
        if !pte.is_present() {
            return None;
        }
        if pte.is_leaf(level) {
            let leaf = pte.decode_leaf(level).ok()?;
            return Some(PhysAddr::new(
                leaf.base.value() + va.page_offset(leaf.order.shift()),
            ));
        }
        node = pte.next_table();
        level -= 1;
    }
}

/// Runs the oracle: populates a TPS-policy address space, then drives
/// `cfg.translations` random translations through the faulted hardware
/// path, checking each against [the reference](reference_walk).
pub fn run_shadow_walk(cfg: &ShadowConfig) -> ShadowReport {
    let mut rng = Rng::new(cfg.seed);
    let mut os = Os::new(cfg.mem_bytes, PolicyConfig::new(PolicyKind::Tps));
    let pid: Asid = os.spawn();

    // Arm every hardware site; OS sites stay at zero so the only faults
    // in play are the ones this oracle is auditing.
    let (handle, plan) = FaultPlan::handles(FaultPlanConfig::uniform_hw(
        cfg.seed ^ 0x9e37_79b9_7f4a_7c15,
        cfg.rate,
    ));
    // The OS hook reaches the page table's alias-install site; the rest
    // are the hardware structures the loop below drives directly.
    os.set_fault_injector(Some(handle.clone()));
    let mut walker = Walker::new(AliasPolicy::Pointer);
    walker.set_fault_injector(Some(handle.clone()));
    let mut caches = MmuCaches::default();
    caches.set_fault_injector(Some(handle.clone()));
    // Deliberately tiny TLBs: TPS promotion covers each arena with a
    // handful of tailored pages, so realistic capacities would almost
    // never miss — and the fill/evict/probe sites only fire on misses.
    let mut tlb = AnySizeTlb::new(4);
    tlb.set_fault_injector(Some(handle.clone()));
    let mut stlb = DualStlb::new(4, 2);
    stlb.set_fault_injector(Some(handle));

    // Populate: a few VMAs, every base page demand-touched, so the TPS
    // policy promotes to tailored pages and installs alias PTEs (the
    // alias-install site fires during this phase).
    let mut vmas: Vec<Vma> = Vec::new();
    for _ in 0..8 {
        let bytes = BASE_PAGE_SIZE * (32 + rng.below(96));
        let vma = os.mmap(pid, bytes).expect("shadow arena fits");
        for page in 0..vma.len() / BASE_PAGE_SIZE {
            let va = VirtAddr::new(vma.base().value() + page * BASE_PAGE_SIZE);
            if os.page_table(pid).lookup(va).is_none() {
                os.handle_fault(pid, va, rng.chance(0.5))
                    .expect("demand fault succeeds");
            }
        }
        vmas.push(vma);
    }

    let mut report = ShadowReport::default();
    for _ in 0..cfg.translations {
        let vma = &vmas[rng.below(vmas.len() as u64) as usize];
        let va = VirtAddr::new(vma.base().value() + rng.below(vma.len()));
        let injected_before = plan.borrow().injected_total();

        // Product path: L1 → STLB → walk (with structure caches), then
        // fill the TLBs the way the MMU would.
        let vpn = va.base_page_number();
        let product = if let Some(entry) = tlb.lookup(pid, vpn) {
            report.tlb_hits += 1;
            entry_pa(&entry, va)
        } else if let Some(entry) = stlb.lookup(pid, vpn) {
            report.stlb_hits += 1;
            tlb.fill(entry);
            entry_pa(&entry, va)
        } else {
            report.walks += 1;
            let ok = walker
                .walk_for(pid, os.page_table(pid), va, Some(&mut caches))
                .expect("every VA in the arena is mapped");
            let entry = TlbEntry::from_leaf(pid, va, &ok.leaf);
            tlb.fill(entry);
            if entry.order == tps_core::PageOrder::P4K || entry.order == tps_core::PageOrder::P2M {
                stlb.fill(entry);
            }
            ok.translate(va)
        };

        if plan.borrow().injected_total() > injected_before {
            report.faulted_translations += 1;
        }
        report.translations += 1;

        // The differential check: the product path must agree with the
        // naive reference on every translation, faulted or not.
        let reference = reference_walk(os.page_table(pid), va);
        if reference != Some(product) && report.mismatches.len() < 32 {
            report.mismatches.push(format!(
                "va {va}: product {product}, reference {reference:?}"
            ));
        }
    }

    report.degradations = [
        walker.walk_restarts(),
        os.page_table(pid).alias_install_retries(),
        caches.fill_drops(),
        tlb.fill_drops(),
        tlb.evict_abandons(),
        stlb.probe_misses(),
    ];
    report.injected = plan
        .borrow()
        .injected()
        .iter()
        .map(|(label, count)| (*label, *count))
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_translations_always_match_the_reference() {
        let report = run_shadow_walk(&ShadowConfig::default());
        assert!(report.mismatches.is_empty(), "{:#?}", report.mismatches);
        assert!(report.faulted_translations > 0, "faults actually landed");
        assert!(report.walks > 0 && report.tlb_hits > 0);
    }

    #[test]
    fn every_hardware_site_fires_and_is_absorbed() {
        // A high rate and enough traffic make every site statistically
        // certain to fire; the seed pins the exact counts.
        let report = run_shadow_walk(&ShadowConfig {
            rate: 0.2,
            ..ShadowConfig::default()
        });
        for label in [
            "walk-step",
            "alias-install",
            "mmu-cache-fill",
            "any-size-fill",
            "any-size-evict",
            "stlb-probe",
        ] {
            assert!(
                report.injected_at(label) > 0,
                "site {label} never fired: {:?}",
                report.injected
            );
        }
        assert!(report.mismatches.is_empty(), "{:#?}", report.mismatches);
        // Each injection shows up as a degradation, never a wrong answer.
        let degradations: u64 = report.degradations.iter().sum();
        assert!(degradations > 0);
    }

    #[test]
    fn oracle_replays_deterministically() {
        let a = run_shadow_walk(&ShadowConfig::default());
        let b = run_shadow_walk(&ShadowConfig::default());
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.degradations, b.degradations);
        assert_eq!(a.tlb_hits, b.tlb_hits);
        assert_eq!(a.walks, b.walks);
    }
}
