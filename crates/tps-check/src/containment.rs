//! Multi-tenant fault-containment chaos campaign.
//!
//! [`crate::campaign`] stresses the OS layer and [`crate::chaos`] the
//! artifact I/O; this module stresses the containment contract of the
//! machine itself: a tenant that misbehaves — overruns the shared pool,
//! exceeds its memory cap, or emits a malformed event stream — must be
//! *killed*, never allowed to panic the machine or corrupt the shared
//! hardware state the survivors keep using.
//!
//! Every schedule is a pure function of `(campaign seed, schedule
//! index)`: it assembles 2–6 tenants from a small cast of adversaries
//! (well-behaved processes, a memory hog that touches more than the
//! whole pool, a capped process that overruns its share, a buggy
//! process that emits a malformed event), picks a shared-pool size that
//! guarantees contention, an OOM policy, and — on a quarter of the
//! schedules — an armed [`FaultPlan`] whose injected allocation
//! failures masquerade as early OOM. Each schedule then asserts:
//!
//! * **No panics.** The whole run executes under `catch_unwind`; any
//!   unwind is a pinned campaign failure.
//! * **Buddy conservation after every kill.** Integrated schedules run
//!   [`tps_sim::Machine::run`] and audit the final OS state with the
//!   [`Auditor`]; manual schedules drive [`tps_sim::Machine::step`]
//!   directly, kill faulting tenants through
//!   [`tps_sim::Machine::kill_tenant`], and audit the live OS
//!   immediately after each kill — the freed frames must already be
//!   back in a consistent buddy state while the survivors run on.
//! * **Per-tenant stats sum to the rollup.** The per-tenant attributed
//!   OS counters (kill-reclaim work included) must sum exactly to the
//!   machine-wide [`tps_os::OsStats`], and the per-tenant access counts
//!   to the global TLB counters — no work may leak off the books when a
//!   tenant dies mid-run.
//! * **Deterministic kill sequences.** Re-running the identical
//!   schedule must reproduce the same per-tenant outcomes — cause and
//!   `at_event` — and the same per-tenant statistics, so a kill
//!   observed once is a kill observed always.

use tps_core::rng::Rng;
use tps_core::{TenantFaultCause, BASE_PAGE_SIZE};
use tps_os::OsStats;
use tps_sim::{
    Machine, MachineBuilder, MachineConfig, MachineRunStats, Mechanism, OnOom, Scheduler,
    TenantOutcome, TenantSpec,
};
use tps_wl::{Event, Workload, WorkloadProfile};

use crate::audit::Auditor;
use crate::plan::{FaultPlan, FaultPlanConfig};

/// SplitMix64's golden-gamma increment, reused to spread schedule indices.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

const MIB: u64 = 1 << 20;

/// Configuration of one containment campaign.
#[derive(Clone, Copy, Debug)]
pub struct ContainmentConfig {
    /// Number of seeded multi-tenant schedules to run.
    pub schedules: u64,
    /// Campaign base seed; every schedule's randomness derives from
    /// `seed ^ (index * GOLDEN)`, so a failing index replays alone.
    pub seed: u64,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        ContainmentConfig {
            schedules: 240,
            seed: 0x7e57_dead_0000_0002,
        }
    }
}

/// One pinned schedule failure: everything needed to replay it.
#[derive(Clone, Debug)]
pub struct ContainmentFailure {
    /// The schedule's index within the campaign.
    pub schedule: u64,
    /// The schedule's derived seed (what [`run_schedule`] re-derives).
    pub seed: u64,
    /// What contract broke.
    pub detail: String,
}

impl std::fmt::Display for ContainmentFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} (seed {:#x}): {}",
            self.schedule, self.seed, self.detail
        )
    }
}

/// Aggregated outcome of a containment campaign.
#[derive(Clone, Debug, Default)]
pub struct ContainmentReport {
    /// Schedules executed.
    pub schedules: u64,
    /// Schedules driven through [`tps_sim::Machine::step`] +
    /// [`tps_sim::Machine::kill_tenant`] with an audit after every kill.
    pub manual: u64,
    /// Schedules running under an armed [`FaultPlan`].
    pub armed: u64,
    /// Tenants killed across all schedules.
    pub kills: u64,
    /// Kills caused by shared-pool exhaustion (injected or real).
    pub oom_kills: u64,
    /// Kills caused by a per-tenant memory cap.
    pub cap_kills: u64,
    /// Kills caused by malformed events (unknown regions included).
    pub bad_event_kills: u64,
    /// Tenants that ran their event stream to completion.
    pub completed: u64,
    /// Contract violations, pinned for replay. Empty means the campaign
    /// passed.
    pub failures: Vec<ContainmentFailure>,
}

impl ContainmentReport {
    /// Whether every schedule upheld every contract.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} schedules ({} manual, {} fault-armed): {} kills \
             ({} oom, {} cap, {} bad-event), {} completed, {} failures",
            self.schedules,
            self.manual,
            self.armed,
            self.kills,
            self.oom_kills,
            self.cap_kills,
            self.bad_event_kills,
            self.completed,
            self.failures.len()
        )
    }
}

/// What one tenant in a schedule does.
#[derive(Clone)]
struct TenantPlan {
    role: &'static str,
    events: Vec<Event>,
    cap: Option<u64>,
}

/// One fully derived schedule: rebuildable any number of times.
#[derive(Clone)]
struct SchedulePlan {
    mem_bytes: u64,
    mechanism: Mechanism,
    on_oom: OnOom,
    faults: Option<FaultPlanConfig>,
    manual: bool,
    tenants: Vec<TenantPlan>,
}

/// A tenant replaying a precomputed event script.
struct Scripted {
    profile: WorkloadProfile,
    events: std::vec::IntoIter<Event>,
}

impl Workload for Scripted {
    fn profile(&self) -> WorkloadProfile {
        self.profile.clone()
    }

    fn next_event(&mut self) -> Option<Event> {
        self.events.next()
    }
}

/// A well-behaved process: a few small regions, a burst of accesses,
/// roughly half the regions unmapped again.
fn benign_plan(rng: &mut Rng) -> Vec<Event> {
    let regions = 1 + rng.below(2) as u32;
    let mut events = Vec::new();
    for region in 0..regions {
        let bytes = MIB * (1 + rng.below(2));
        events.push(Event::Mmap { region, bytes });
        for _ in 0..96 {
            events.push(Event::Access {
                region,
                offset: rng.below(bytes),
                write: rng.chance(0.3),
            });
        }
    }
    for region in 0..regions {
        if rng.chance(0.5) {
            events.push(Event::Munmap { region });
        }
    }
    events
}

/// A noisy neighbor: maps and *touches* far more memory than the whole
/// shared pool holds, so left unchecked it is guaranteed to hit OOM.
fn hog_plan(rng: &mut Rng) -> Vec<Event> {
    let bytes = 2 * MIB;
    let mut events = Vec::new();
    for region in 0..24u32 {
        events.push(Event::Mmap { region, bytes });
        let mut offset = rng.below(BASE_PAGE_SIZE);
        while offset < bytes {
            events.push(Event::Access {
                region,
                offset,
                write: true,
            });
            offset += BASE_PAGE_SIZE;
        }
    }
    events
}

/// A process that keeps mapping past any plausible per-tenant cap.
fn greedy_plan(rng: &mut Rng) -> Vec<Event> {
    let mut events = Vec::new();
    for region in 0..8u32 {
        events.push(Event::Mmap { region, bytes: MIB });
        for _ in 0..16 {
            events.push(Event::Access {
                region,
                offset: rng.below(MIB),
                write: rng.chance(0.5),
            });
        }
    }
    events
}

/// A buggy process: a benign prefix, then one malformed event.
fn buggy_plan(rng: &mut Rng) -> Vec<Event> {
    let bytes = MIB;
    let mut events = vec![Event::Mmap { region: 0, bytes }];
    for _ in 0..32 {
        events.push(Event::Access {
            region: 0,
            offset: rng.below(bytes),
            write: false,
        });
    }
    events.push(match rng.below(4) {
        0 => Event::Access {
            region: 99,
            offset: 0,
            write: false,
        },
        1 => Event::Access {
            region: 0,
            offset: bytes + 1,
            write: true,
        },
        2 => Event::Mmap { region: 0, bytes },
        _ => Event::Munmap { region: 77 },
    });
    events
}

/// Derives one schedule from its seed. Pure: the same seed always
/// yields the identical plan.
fn derive_plan(seed: u64, schedule: u64) -> SchedulePlan {
    let mut rng = Rng::new(seed);
    let tenant_count = 2 + rng.below(5) as usize;
    let mem_bytes = (16 + rng.below(9)) * MIB;
    let mechanism = [Mechanism::Only4K, Mechanism::Thp, Mechanism::Tps][rng.below(3) as usize];
    let on_oom = if rng.chance(0.5) {
        OnOom::KillVictim
    } else {
        OnOom::FailFast
    };
    let faults = rng.chance(0.25).then(|| FaultPlanConfig {
        buddy_alloc: 0.01,
        reserve_span: 0.02,
        shootdown_deliver: 0.02,
        walk_step: 0.01,
        any_size_fill: 0.01,
        ..FaultPlanConfig::disabled(rng.next_u64())
    });
    let mut tenants = Vec::with_capacity(tenant_count);
    for slot in 0..tenant_count {
        // Slot 0 is always well-behaved so every schedule has a
        // potential survivor; the rest draw from the adversary cast.
        let role = if slot == 0 { 0 } else { rng.below(4) };
        tenants.push(match role {
            0 => TenantPlan {
                role: "benign",
                events: benign_plan(&mut rng),
                cap: None,
            },
            1 => TenantPlan {
                role: "hog",
                events: hog_plan(&mut rng),
                cap: None,
            },
            2 => TenantPlan {
                role: "greedy",
                events: greedy_plan(&mut rng),
                cap: Some((1 + rng.below(4)) * MIB),
            },
            _ => TenantPlan {
                role: "buggy",
                events: buggy_plan(&mut rng),
                cap: None,
            },
        });
    }
    SchedulePlan {
        mem_bytes,
        mechanism,
        on_oom,
        faults,
        manual: schedule % 4 == 3,
        tenants,
    }
}

/// Builds the machine for one schedule; `scripted` selects whether the
/// tenants carry their event scripts (integrated mode) or are external
/// shells stepped by the campaign itself (manual mode).
fn build_machine(plan: &SchedulePlan, scripted: bool) -> Result<Machine, String> {
    let config = MachineConfig::for_mechanism(plan.mechanism).with_memory(plan.mem_bytes);
    let mut builder = MachineBuilder::new(config)
        .scheduler(Scheduler::RoundRobin)
        .on_oom(plan.on_oom);
    for tenant in &plan.tenants {
        let mut spec = if scripted {
            TenantSpec::workload(Scripted {
                profile: WorkloadProfile::named(tenant.role),
                events: tenant.events.clone().into_iter(),
            })
        } else {
            TenantSpec::external(tenant.role)
        };
        if let Some(cap) = tenant.cap {
            spec = spec.memory_cap(cap);
        }
        builder = builder.tenant(spec);
    }
    let mut machine = builder
        .build()
        .map_err(|e| format!("machine build failed: {e}"))?;
    if let Some(cfg) = plan.faults {
        let (handle, _plan) = FaultPlan::handles(cfg);
        machine.set_fault_injector(Some(handle));
    }
    Ok(machine)
}

/// The per-tenant facts a re-run must reproduce exactly.
type Digest = Vec<(TenantOutcome, u64, OsStats)>;

fn digest(stats: &MachineRunStats) -> Digest {
    stats
        .per_tenant
        .iter()
        .enumerate()
        .map(|(slot, t)| (stats.outcome(slot), t.mem.accesses, t.os))
        .collect()
}

/// The books-balance checks shared by both modes: a clean audit of the
/// final OS state, per-tenant OS attribution summing exactly to the
/// machine-wide rollup, and per-tenant accesses summing to the global
/// TLB counters.
fn check_books(machine: &Machine, stats: &MachineRunStats) -> Result<(), String> {
    let violations = Auditor::new().audit(machine.os());
    if !violations.is_empty() {
        return Err(format!(
            "post-run audit found {} violation(s): {}",
            violations.len(),
            violations.join("; ")
        ));
    }
    let mut os_sum = OsStats::default();
    for tenant in &stats.per_tenant {
        os_sum.accumulate(&tenant.os);
    }
    if os_sum != stats.global.os {
        return Err(format!(
            "attribution leak: per-tenant OS stats sum to {os_sum:?} \
             but the machine-wide rollup reads {:?}",
            stats.global.os
        ));
    }
    let accesses: u64 = stats.per_tenant.iter().map(|t| t.mem.accesses).sum();
    if accesses != stats.global.mem.accesses {
        return Err(format!(
            "per-tenant accesses sum to {accesses} but the rollup reads {}",
            stats.global.mem.accesses
        ));
    }
    Ok(())
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    format!("machine panicked instead of containing the fault: {msg}")
}

/// Integrated mode: [`tps_sim::Machine::run`] owns the containment
/// policy. Returns the outcome digest for the determinism re-run.
fn run_integrated(plan: &SchedulePlan) -> Result<(MachineRunStats, Digest), String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<MachineRunStats, String> {
            let mut machine = build_machine(plan, true)?;
            let stats = machine.run();
            check_books(&machine, &stats)?;
            Ok(stats)
        },
    ));
    let stats: MachineRunStats = result.map_err(panic_detail)??;
    let digest = digest(&stats);
    Ok((stats, digest))
}

/// Manual mode: the campaign is the driver. Faulting tenants are killed
/// through [`tps_sim::Machine::kill_tenant`] and the live OS is audited
/// *immediately* after each kill, while the survivors still run.
fn run_manual(plan: &SchedulePlan) -> Result<MachineRunStats, String> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<MachineRunStats, String> {
            let mut machine = build_machine(plan, false)?;
            let mut auditor = Auditor::new();
            let mut streams: Vec<std::vec::IntoIter<Event>> = plan
                .tenants
                .iter()
                .map(|t| t.events.clone().into_iter())
                .collect();
            let mut live: Vec<usize> = (0..plan.tenants.len()).collect();
            let mut turn = 0usize;
            while !live.is_empty() {
                let pick = turn % live.len();
                let slot = live[pick];
                match streams[slot].next() {
                    None => {
                        live.remove(pick);
                    }
                    Some(event) => {
                        if let Err(fault) = machine.step(slot, event) {
                            machine.kill_tenant(slot, fault.cause());
                            live.remove(pick);
                            let violations = auditor.audit(machine.os());
                            if !violations.is_empty() {
                                return Err(format!(
                                    "audit right after killing tenant {slot} ({}) found \
                                 {} violation(s): {}",
                                    fault.cause().label(),
                                    violations.len(),
                                    violations.join("; ")
                                ));
                            }
                        }
                    }
                }
                turn += 1;
            }
            // The external tenants' machine-side streams are empty: run()
            // retires the survivors and rolls the books up.
            let stats = machine.run();
            check_books(&machine, &stats)?;
            Ok(stats)
        },
    ));
    result.map_err(panic_detail)?
}

fn schedule_seed(base: u64, schedule: u64) -> u64 {
    base ^ schedule.wrapping_mul(GOLDEN)
}

fn run_schedule_inner(seed: u64, schedule: u64) -> Result<MachineRunStats, String> {
    let plan = derive_plan(seed, schedule);
    if plan.manual {
        return run_manual(&plan);
    }
    let (stats, first) = run_integrated(&plan)?;
    let (_, second) = run_integrated(&plan)?;
    if first != second {
        return Err(format!(
            "kill sequence is not deterministic: first run {first:?}, re-run {second:?}"
        ));
    }
    Ok(stats)
}

/// Runs the whole campaign. Deterministic: same config, same verdicts.
pub fn run_containment_campaign(config: &ContainmentConfig) -> ContainmentReport {
    let mut report = ContainmentReport::default();
    for s in 0..config.schedules {
        report.schedules += 1;
        let seed = schedule_seed(config.seed, s);
        let plan = derive_plan(seed, s);
        if plan.manual {
            report.manual += 1;
        }
        if plan.faults.is_some() {
            report.armed += 1;
        }
        match run_schedule_inner(seed, s) {
            Ok(stats) => {
                for slot in 0..stats.per_tenant.len() {
                    match stats.outcome(slot) {
                        TenantOutcome::Completed => report.completed += 1,
                        TenantOutcome::Killed { cause, .. } => {
                            report.kills += 1;
                            match cause {
                                TenantFaultCause::Oom => report.oom_kills += 1,
                                TenantFaultCause::CapExceeded => report.cap_kills += 1,
                                TenantFaultCause::UnknownRegion | TenantFaultCause::BadEvent => {
                                    report.bad_event_kills += 1
                                }
                            }
                        }
                    }
                }
            }
            Err(detail) => report.failures.push(ContainmentFailure {
                schedule: s,
                seed,
                detail,
            }),
        }
    }
    report
}

/// Replays one pinned schedule (by campaign seed + index) in isolation.
///
/// # Errors
///
/// The broken contract's description, exactly as the campaign pins it.
pub fn run_schedule(config: &ContainmentConfig, schedule: u64) -> Result<(), String> {
    run_schedule_inner(schedule_seed(config.seed, schedule), schedule).map(|_| ())
}
