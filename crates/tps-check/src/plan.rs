//! Deterministic fault plans (re-exported).
//!
//! [`FaultPlan`] and [`FaultPlanConfig`] originated here but moved to
//! `tps-core` when the experiment runner (which must not depend on this
//! crate) grew fault-injection support. This module re-exports them so
//! harness code and the campaign keep their historical import paths.

pub use tps_core::{FaultPlan, FaultPlanConfig};
