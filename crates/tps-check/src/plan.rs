//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is the standard [`FaultInjector`] implementation: each
//! consultation draws from a seeded [`Rng`] stream against a per-site
//! probability, so a (seed, config) pair replays the exact same fault
//! sequence every run — a failing campaign schedule is reproducible from
//! its seed alone.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use tps_core::rng::Rng;
use tps_core::{FaultInjector, FaultSite, InjectorHandle};

/// Per-site fault probabilities plus the stream seed.
///
/// A probability of `0.0` disables a site without consuming randomness,
/// so the injected stream depends only on the enabled sites.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultPlanConfig {
    /// Seed for the injector's private random stream.
    pub seed: u64,
    /// Probability that a buddy allocation is forced to fail.
    pub buddy_alloc: f64,
    /// Probability that a whole-span reservation is denied.
    pub reserve_span: f64,
    /// Probability that a compaction pass is interrupted at each block.
    pub compaction_step: f64,
    /// Probability that a TLB shootdown delivery is dropped (and retried).
    pub shootdown_deliver: f64,
}

impl FaultPlanConfig {
    /// A plan that never faults. Installing it must be behaviorally
    /// indistinguishable from installing no injector at all — the
    /// zero-cost-default property the campaign tests pin down.
    pub fn disabled(seed: u64) -> Self {
        FaultPlanConfig {
            seed,
            buddy_alloc: 0.0,
            reserve_span: 0.0,
            compaction_step: 0.0,
            shootdown_deliver: 0.0,
        }
    }

    /// The same probability at every site.
    pub fn uniform(seed: u64, p: f64) -> Self {
        FaultPlanConfig {
            seed,
            buddy_alloc: p,
            reserve_span: p,
            compaction_step: p,
            shootdown_deliver: p,
        }
    }
}

/// A seeded, replayable fault injector with per-site hit counters.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    rng: Rng,
    consultations: u64,
    injected: BTreeMap<&'static str, u64>,
}

impl FaultPlan {
    /// Builds a plan from its configuration.
    pub fn new(cfg: FaultPlanConfig) -> Self {
        FaultPlan {
            cfg,
            rng: Rng::new(cfg.seed),
            consultations: 0,
            injected: BTreeMap::new(),
        }
    }

    /// Builds a plan and returns both a shareable [`InjectorHandle`] (to
    /// install via `Os::set_fault_injector`) and a concrete handle the
    /// caller keeps for reading counters after the run.
    pub fn handles(cfg: FaultPlanConfig) -> (InjectorHandle, Rc<RefCell<FaultPlan>>) {
        let concrete = Rc::new(RefCell::new(FaultPlan::new(cfg)));
        let dyn_handle: InjectorHandle = concrete.clone();
        (dyn_handle, concrete)
    }

    /// How many times any site consulted this plan.
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Faults injected at the site with the given [`FaultSite::label`].
    pub fn injected_at(&self, label: &str) -> u64 {
        self.injected.get(label).copied().unwrap_or(0)
    }
}

impl FaultInjector for FaultPlan {
    fn should_fault(&mut self, site: FaultSite) -> bool {
        self.consultations += 1;
        let p = match site {
            FaultSite::BuddyAlloc { .. } => self.cfg.buddy_alloc,
            FaultSite::ReserveSpan => self.cfg.reserve_span,
            FaultSite::CompactionStep => self.cfg.compaction_step,
            FaultSite::ShootdownDeliver => self.cfg.shootdown_deliver,
        };
        let hit = p > 0.0 && self.rng.chance(p);
        if hit {
            *self.injected.entry(site.label()).or_insert(0) += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(plan: &mut FaultPlan, n: u64) -> Vec<bool> {
        (0..n)
            .map(|i| {
                plan.should_fault(FaultSite::BuddyAlloc {
                    order: (i % 10) as u8,
                })
            })
            .collect()
    }

    #[test]
    fn replays_identically_from_the_seed() {
        let cfg = FaultPlanConfig::uniform(42, 0.3);
        let a = drive(&mut FaultPlan::new(cfg), 500);
        let b = drive(&mut FaultPlan::new(cfg), 500);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.3 over 500 draws must hit");
        assert!(!a.iter().all(|&x| x), "p=0.3 over 500 draws must miss");
    }

    #[test]
    fn disabled_plan_never_faults_and_draws_no_randomness() {
        let mut plan = FaultPlan::new(FaultPlanConfig::disabled(7));
        for v in drive(&mut plan, 200) {
            assert!(!v);
        }
        assert_eq!(plan.consultations(), 200);
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn counters_split_by_site_label() {
        let cfg = FaultPlanConfig {
            seed: 1,
            buddy_alloc: 1.0,
            reserve_span: 0.0,
            compaction_step: 1.0,
            shootdown_deliver: 0.0,
        };
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.should_fault(FaultSite::BuddyAlloc { order: 0 }));
        assert!(!plan.should_fault(FaultSite::ReserveSpan));
        assert!(plan.should_fault(FaultSite::CompactionStep));
        assert!(!plan.should_fault(FaultSite::ShootdownDeliver));
        assert_eq!(plan.injected_at("buddy-alloc"), 1);
        assert_eq!(plan.injected_at("compaction-step"), 1);
        assert_eq!(plan.injected_at("reserve-span"), 0);
        assert_eq!(plan.injected_total(), 2);
    }

    #[test]
    fn shared_handle_feeds_one_stream() {
        let (handle, concrete) = FaultPlan::handles(FaultPlanConfig::uniform(9, 1.0));
        assert!(handle.borrow_mut().should_fault(FaultSite::ReserveSpan));
        assert_eq!(concrete.borrow().consultations(), 1);
        assert_eq!(concrete.borrow().injected_total(), 1);
    }
}
