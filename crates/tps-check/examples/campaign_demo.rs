//! Runs a fault-injection campaign and prints the report.
//!
//! ```sh
//! cargo run -p tps-check --release --example campaign_demo
//! cargo run -p tps-check --release --example campaign_demo -- 200 0.6
//! ```
//!
//! Optional args: `<schedules> <uniform fault probability>`.

use tps_check::campaign::{run_campaign, CampaignConfig};
use tps_check::FaultPlanConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let schedules: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let mut cfg = CampaignConfig {
        schedules,
        ..CampaignConfig::default()
    };
    if let Some(p) = args.next().and_then(|a| a.parse::<f64>().ok()) {
        cfg.plan = FaultPlanConfig::uniform(0, p);
    }

    println!(
        "campaign: {} schedules x {} ops, {} MB memory, fault probabilities \
         buddy {:.2} / reserve {:.2} / compaction {:.2} / shootdown {:.2}",
        cfg.schedules,
        cfg.ops_per_schedule,
        cfg.mem_bytes >> 20,
        cfg.plan.buddy_alloc,
        cfg.plan.reserve_span,
        cfg.plan.compaction_step,
        cfg.plan.shootdown_deliver,
    );
    let report = run_campaign(&cfg);
    println!("schedules run        : {}", report.schedules_run);
    println!("ops executed         : {}", report.ops_run);
    println!("faults injected      : {}", report.faults_injected);
    println!("page faults handled  : {}", report.total_faults);
    println!("promotions           : {}", report.total_promotions);
    println!("4K fallbacks         : {}", report.total_fallback_4k);
    println!("  of which OOM-caused: {}", report.total_oom_fallbacks);
    println!("compaction aborts    : {}", report.total_compaction_aborts);
    println!("shootdowns retried   : {}", report.total_shootdowns_retried);
    println!("legit OOM errors     : {}", report.oom_events);
    if report.violations.is_empty() {
        println!("invariant violations : none");
    } else {
        println!(
            "invariant violations : {} (+{} truncated)",
            report.violations.len(),
            report.violations_truncated
        );
        for v in &report.violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
