//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real proptest
//! crate cannot be fetched. This shim keeps the workspace's property tests
//! compiling and running with the same source: a `proptest!` macro, range /
//! tuple / `collection::vec` / `sample::select` strategies, `prop_assert*`
//! macros, `ProptestConfig`, and `TestCaseError`.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: case generation is seeded from the case index only,
//!   so every run explores the identical case set. There are no
//!   `proptest-regressions` files to replay; instead, failing inputs are
//!   reported in the panic message and should be committed as explicit
//!   pinned-input `#[test]`s (see `crates/tps-os/tests/policy_invariants.rs`
//!   for examples).
//! * **No shrinking**: the failing case is reported as generated.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator state for one test case (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for a given case index.
    pub fn for_case(case: u64) -> Self {
        // Fixed golden-ratio stream offset so case 0 is not the zero state.
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Error raised by a failing property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Marks the current case as failed with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            message: reason.into(),
        }
    }

    /// The failure reason.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator: the sampling core of a proptest strategy.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy selecting uniformly from a fixed list of options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select from empty list");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Builds a [`Select`] over the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// The commonly imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both: {:?})",
            format!($($fmt)*), l
        );
    }};
}

/// Declares deterministic property tests. Supports the standard proptest
/// form: an optional `#![proptest_config(..)]` header followed by test
/// functions whose arguments are drawn from strategies with `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let mut __case_inputs = ::std::string::String::new();
                $(
                    __case_inputs.push_str(&format!(
                        "{} = {:?}, ", stringify!($arg), &$arg
                    ));
                )+
                let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "property test {} failed at case {case} [{}]: {}",
                        stringify!($name), __case_inputs, e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::for_case(3);
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let w = Strategy::sample(&(2u8..=4), &mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn vec_and_select_sample() {
        let mut rng = crate::TestRng::for_case(9);
        let v = Strategy::sample(&crate::collection::vec(0u32..10, 3..6), &mut rng);
        assert!(v.len() >= 3 && v.len() < 6);
        assert!(v.iter().all(|&x| x < 10));
        let s = Strategy::sample(&crate::sample::select(vec![0.25, 0.5]), &mut rng);
        assert!(s == 0.25 || s == 0.5);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case(7);
        let mut b = crate::TestRng::for_case(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..100, pair in (0usize..3, 0u64..5)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 3 && pair.1 < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
