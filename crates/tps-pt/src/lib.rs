//! Page-table substrate: the x86-64-style 4-level radix page table extended
//! with TPS tailored pages, the hardware page walker, and MMU caches.
//!
//! Three pieces (paper §III-A1):
//!
//! * [`PageTable`] — the in-memory radix tree. Conventional leaves live at
//!   level 1 (4 KB), level 2 (2 MB, `PS` bit) and level 3 (1 GB). Tailored
//!   leaves occupy `2^rel` consecutive slots of one node — one *true* PTE
//!   (index low bits zero) plus *alias* PTEs, all encoding the page size.
//! * [`Walker`] — the hardware walker. It reads one entry per level,
//!   consults the [`MmuCaches`] to skip upper levels, and — under
//!   [`AliasPolicy::Pointer`] — performs the paper's one extra memory access
//!   when the final read landed on an alias PTE (Fig. 6).
//! * [`MmuCaches`] — per-level page-structure caches (PML4E/PDPTE/PDE),
//!   which shorten walks exactly as in commercial MMUs.
//!
//! # Example
//!
//! ```
//! use tps_core::{PageOrder, PhysAddr, PteFlags, VirtAddr};
//! use tps_pt::{AliasPolicy, MmuCaches, PageTable, Walker};
//!
//! let mut pt = PageTable::new();
//! // Map a 32 KB tailored page.
//! let order = PageOrder::new(3).unwrap();
//! pt.map(VirtAddr::new(0x4000_8000), PhysAddr::new(0x200_0000),
//!        order, PteFlags::WRITABLE).unwrap();
//!
//! let mut walker = Walker::new(AliasPolicy::Pointer);
//! let mut caches = MmuCaches::default();
//! // An access inside the page, but not at its first 4 KB slot: the walk
//! // lands on an alias PTE and performs one extra access.
//! let out = walker.walk(&pt, VirtAddr::new(0x4000_c123), Some(&mut caches)).unwrap();
//! assert_eq!(out.leaf.order, order);
//! assert!(out.alias_extra);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mmu_cache;
mod table;
mod walker;

pub use mmu_cache::{Asid as PtAsid, MmuCacheConfig, MmuCaches};
pub use table::{PageTable, PT_POOL_BASE};
pub use walker::{AliasPolicy, WalkFault, WalkOk, WalkRefs, Walker};
