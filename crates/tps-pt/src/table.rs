//! The 4-level radix page table with tailored-page support.

use std::collections::{BTreeMap, HashMap};
use tps_core::inject::should_fault;
use tps_core::{
    level_base_order, level_for_order, FaultSite, InjectorHandle, LeafInfo, PageOrder, PhysAddr,
    Pte, PteFlags, TpsError, VirtAddr, BASE_PAGE_SIZE, PT_ENTRIES,
};

/// Physical base of the pool from which page-table node frames are drawn.
///
/// Placed at 256 GB, far above any DRAM size the simulator models, so node
/// frames never collide with data frames handed out by the buddy allocator.
pub const PT_POOL_BASE: u64 = 1 << 38;

/// A process page table: a radix tree of 512-entry nodes.
///
/// Supports conventional leaves (4 KB / 2 MB / 1 GB) and TPS tailored leaves
/// at any order. Tailored leaves are written as `2^rel` identical PTEs — the
/// true PTE plus alias PTEs — within one node, where `rel` is the order
/// relative to the leaf level.
///
/// All mutation counters (`pte_writes`, node allocations) are exposed so the
/// OS model can charge system time for page-table maintenance.
#[derive(Clone, Debug)]
pub struct PageTable {
    nodes: HashMap<u64, Vec<Pte>>,
    root: PhysAddr,
    next_node: u64,
    pte_writes: u64,
    levels: u8,
    /// Fine-grained A/D tracking (paper §III-C1): when enabled, a tailored
    /// page's otherwise-unused alias-PTE bits hold a dirty bit vector over
    /// its constituents, capped at 16 bits. Keyed by page base VA.
    fine_grained_ad: bool,
    ad_vectors: HashMap<u64, u16>,
    injector: Option<InjectorHandle>,
    alias_install_retries: u64,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty 4-level page table (root node allocated).
    pub fn new() -> Self {
        Self::with_levels(4)
    }

    /// Creates an empty page table with 4 or 5 levels. Five-level paging
    /// (Intel LA57) adds one radix level — and thus one more memory access
    /// to uncached walks, the growing overhead the paper's introduction
    /// warns about.
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn with_levels(levels: u8) -> Self {
        assert!(levels == 4 || levels == 5, "only 4- or 5-level paging");
        let mut pt = PageTable {
            nodes: HashMap::new(),
            root: PhysAddr::new(PT_POOL_BASE),
            next_node: 0,
            pte_writes: 0,
            levels,
            fine_grained_ad: false,
            ad_vectors: HashMap::new(),
            injector: None,
            alias_install_retries: 0,
        };
        let root = pt.alloc_node();
        pt.root = root;
        pt
    }

    /// Number of radix levels (4 or 5).
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Enables fine-grained dirty tracking for tailored pages (paper
    /// §III-C1): the unused bits of alias PTEs collect a ≤16-bit dirty
    /// vector over the page's constituents, so swapping/writeback need not
    /// treat the whole tailored page as dirty.
    pub fn set_fine_grained_ad(&mut self, enabled: bool) {
        self.fine_grained_ad = enabled;
    }

    /// The dirty bit vector of the tailored page covering `va`, if
    /// fine-grained tracking recorded one. Bit `i` covers the page's
    /// `i`-th sixteenth (or base page, for pages of ≤16 constituents).
    pub fn dirty_vector(&self, va: VirtAddr) -> Option<u16> {
        let leaf = self.lookup(va)?;
        let base = va.align_down(leaf.order.shift());
        self.ad_vectors.get(&base.value()).copied()
    }

    /// Physical address of the root (CR3 equivalent).
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// Number of live page-table nodes (each 4 KB).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative count of PTE stores performed (incl. alias PTEs) — cost
    /// input for the OS system-time model.
    pub fn pte_writes(&self) -> u64 {
        self.pte_writes
    }

    /// Installs (or removes) a fault injector consulted at every alias-PTE
    /// store. A [`FaultSite::AliasInstall`] hit models a dropped store the
    /// mapping path detects and retries, charging one extra PTE write.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.injector = injector;
    }

    /// How many alias-PTE stores were retried after an injected
    /// [`FaultSite::AliasInstall`] fault (degradation counter).
    pub fn alias_install_retries(&self) -> u64 {
        self.alias_install_retries
    }

    fn alloc_node(&mut self) -> PhysAddr {
        let pa = PhysAddr::new(PT_POOL_BASE + self.next_node * BASE_PAGE_SIZE);
        self.next_node += 1;
        self.nodes.insert(pa.value(), vec![Pte::EMPTY; PT_ENTRIES]);
        pa
    }

    /// Reads the entry at `(node, index)` the way the walker does. A dead
    /// node or out-of-range index reads as [`Pte::EMPTY`]: the walker sees
    /// not-present and faults, the correct degradation for a stale node
    /// reference mid-campaign (a panic here would corrupt replay state).
    pub fn read_entry(&self, node: PhysAddr, index: usize) -> Pte {
        self.nodes
            .get(&node.value())
            .and_then(|entries| entries.get(index))
            .copied()
            .unwrap_or(Pte::EMPTY)
    }

    /// Writes the entry at `(node, index)`. A dead node or out-of-range
    /// index drops the store without counting a PTE write — the paired
    /// [`Self::read_entry`] then reads not-present, so the table stays
    /// self-consistent instead of panicking on the fault path.
    fn write_entry(&mut self, node: PhysAddr, index: usize, pte: Pte) {
        if let Some(slot) = self
            .nodes
            .get_mut(&node.value())
            .and_then(|entries| entries.get_mut(index))
        {
            *slot = pte;
            self.pte_writes += 1;
        }
    }

    /// Ensures intermediate nodes exist down to `target_level`, returning
    /// the node at that level for `va`.
    ///
    /// If an intermediate slot holds a huge/tailored leaf, returns an error:
    /// the caller must unmap first (mapping *under* a huge page is a bug).
    fn descend_to(&mut self, va: VirtAddr, target_level: u8) -> Result<PhysAddr, TpsError> {
        let mut node = self.root;
        let mut level = self.levels;
        while level > target_level {
            let idx = va.pt_index(level);
            let pte = self.read_entry(node, idx);
            if pte.is_present() {
                if pte.is_leaf(level) {
                    return Err(TpsError::RangeOverlap {
                        start: va.align_down(12 + 9 * (level as u32 - 1)).value(),
                        len: 1u64 << (12 + 9 * (level - 1) as u32),
                    });
                }
                node = pte.next_table();
            } else {
                let child = self.alloc_node();
                self.write_entry(node, idx, Pte::table(child));
                node = child;
            }
            level -= 1;
        }
        Ok(node)
    }

    /// Maps a page of the given order at `va -> pa`.
    ///
    /// Writes the true PTE and all alias PTEs for tailored orders. If the
    /// target slots currently hold smaller-page subtrees (the page-promotion
    /// path), those subtrees are replaced and their nodes freed.
    ///
    /// # Errors
    ///
    /// * [`TpsError::Misaligned`] if `va` or `pa` is not aligned to the
    ///   page size.
    /// * [`TpsError::RangeOverlap`] if a *larger* leaf already covers `va`.
    pub fn map(
        &mut self,
        va: VirtAddr,
        pa: PhysAddr,
        order: PageOrder,
        flags: PteFlags,
    ) -> Result<(), TpsError> {
        if !va.is_aligned(order.shift()) {
            return Err(TpsError::Misaligned {
                addr: va.value(),
                shift: order.shift(),
            });
        }
        if !pa.is_aligned(order.shift()) {
            return Err(TpsError::Misaligned {
                addr: pa.value(),
                shift: order.shift(),
            });
        }
        let level = level_for_order(order);
        let node = self.descend_to(va, level)?;
        let rel = order.get() - level_base_order(level);
        let first = va.pt_index(level) & !((1usize << rel) - 1);
        debug_assert_eq!(
            va.pt_index(level),
            first,
            "va aligned implies index aligned"
        );
        self.ad_vectors.remove(&va.value());
        let pte = Pte::leaf(pa, order, flags);
        for i in 0..(1usize << rel) {
            let old = self.read_entry(node, first + i);
            if old.is_present() && !old.is_leaf(level) {
                // Promotion over an existing subtree: reclaim its nodes.
                self.free_subtree(old.next_table(), level - 1);
            }
            if i > 0 && should_fault(&self.injector, FaultSite::AliasInstall) {
                // A dropped alias store (pointer or full-copy policy) is
                // detected and retried; the failed attempt still cost one
                // PTE write.
                self.alias_install_retries += 1;
                self.write_entry(node, first + i, pte);
            }
            self.write_entry(node, first + i, pte);
        }
        Ok(())
    }

    /// Recursively frees the node `node` (at `level`) and its descendants.
    fn free_subtree(&mut self, node: PhysAddr, level: u8) {
        if let Some(entries) = self.nodes.remove(&node.value()) {
            if level > 1 {
                for pte in entries {
                    if pte.is_present() && !pte.is_leaf(level) {
                        self.free_subtree(pte.next_table(), level - 1);
                    }
                }
            }
        }
    }

    /// Unmaps the page of the given order at `va` (all alias PTEs cleared).
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::Unmapped`] if no leaf of exactly this order is
    /// mapped at `va`, or [`TpsError::Misaligned`] for a misaligned `va`.
    pub fn unmap(&mut self, va: VirtAddr, order: PageOrder) -> Result<(), TpsError> {
        if !va.is_aligned(order.shift()) {
            return Err(TpsError::Misaligned {
                addr: va.value(),
                shift: order.shift(),
            });
        }
        let level = level_for_order(order);
        let mut node = self.root;
        for l in (level + 1..=self.levels).rev() {
            let pte = self.read_entry(node, va.pt_index(l));
            if !pte.is_present() || pte.is_leaf(l) {
                return Err(TpsError::Unmapped { vaddr: va.value() });
            }
            node = pte.next_table();
        }
        let idx = va.pt_index(level);
        let pte = self.read_entry(node, idx);
        let leaf = pte
            .decode_leaf(level)
            .map_err(|_| TpsError::Unmapped { vaddr: va.value() })?;
        if leaf.order != order {
            return Err(TpsError::Unmapped { vaddr: va.value() });
        }
        let rel = order.get() - level_base_order(level);
        let first = idx & !((1usize << rel) - 1);
        for i in 0..(1usize << rel) {
            self.write_entry(node, first + i, Pte::EMPTY);
        }
        self.ad_vectors.remove(&va.value());
        Ok(())
    }

    /// Functional (timing-free) lookup: the leaf covering `va`, if mapped.
    pub fn lookup(&self, va: VirtAddr) -> Option<LeafInfo> {
        let mut node = self.root;
        for level in (1..=self.levels).rev() {
            let pte = self.read_entry(node, va.pt_index(level));
            if !pte.is_present() {
                return None;
            }
            if pte.is_leaf(level) {
                return pte.decode_leaf(level).ok();
            }
            node = pte.next_table();
        }
        None
    }

    /// Functional translation of `va` to a physical address.
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        let leaf = self.lookup(va)?;
        Some(PhysAddr::new(
            leaf.base.value() + va.page_offset(leaf.order.shift()),
        ))
    }

    /// Sets the `ACCESSED` (and optionally `DIRTY`) bit on the true PTE for
    /// `va`. Returns `true` if any bit actually changed (i.e. hardware would
    /// have performed a memory store).
    pub fn mark_accessed(&mut self, va: VirtAddr, dirty: bool) -> bool {
        let mut node = self.root;
        for level in (1..=self.levels).rev() {
            let idx = va.pt_index(level);
            let pte = self.read_entry(node, idx);
            if !pte.is_present() {
                return false;
            }
            if pte.is_leaf(level) {
                let mut stored = false;
                // A leaf that fails to decode is a corrupt entry; hardware
                // would fault, the model simply performs no store.
                let Ok(leaf) = pte.decode_leaf(level) else {
                    return false;
                };
                if dirty && self.fine_grained_ad && leaf.order.is_tailored() {
                    // Record which sixteenth of the page was written.
                    let base = va.align_down(leaf.order.shift());
                    let off = va.page_offset(leaf.order.shift());
                    let bit = ((off * 16) >> leaf.order.shift()).min(15) as u16;
                    let vector = self.ad_vectors.entry(base.value()).or_insert(0);
                    if *vector & (1 << bit) == 0 {
                        *vector |= 1 << bit;
                        stored = true;
                    }
                }
                // A/D bits live in the *true* PTE (the walker may have
                // landed on an alias slot, but the true PTE is the
                // authority for bookkeeping).
                let rel = leaf.order.get() - level_base_order(level);
                let true_idx = idx & !((1usize << rel) - 1);
                let true_pte = self.read_entry(node, true_idx);
                let mut updated = true_pte.with_accessed();
                if dirty {
                    updated = updated.with_dirty();
                }
                if updated != true_pte {
                    self.write_entry(node, true_idx, updated);
                    return true;
                }
                return stored;
            }
            node = pte.next_table();
        }
        false
    }

    /// Counts distinct mapped pages per order (paper Fig. 18). Alias PTEs
    /// are not double-counted: only the true PTE (aligned slot) counts.
    pub fn page_census(&self) -> BTreeMap<PageOrder, u64> {
        let mut census = BTreeMap::new();
        self.census_node(self.root, self.levels, &mut census);
        census
    }

    fn census_node(&self, node: PhysAddr, level: u8, census: &mut BTreeMap<PageOrder, u64>) {
        let entries = &self.nodes[&node.value()];
        let mut idx = 0usize;
        while idx < PT_ENTRIES {
            let pte = entries[idx];
            if pte.is_present() {
                if pte.is_leaf(level) {
                    // `is_leaf` passed, so decode cannot fail; an undecodable
                    // entry is skipped rather than panicking mid-census.
                    let Ok(leaf) = pte.decode_leaf(level) else {
                        idx += 1;
                        continue;
                    };
                    let rel = leaf.order.get() - level_base_order(level);
                    *census.entry(leaf.order).or_insert(0) += 1;
                    idx += 1usize << rel; // skip alias PTEs
                    continue;
                } else if level > 1 {
                    self.census_node(pte.next_table(), level - 1, census);
                }
            }
            idx += 1;
        }
    }

    /// Total bytes of virtual address space currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.page_census()
            .iter()
            .map(|(order, count)| order.bytes() * count)
            .sum()
    }

    /// Checks the radix tree's structural invariants; used by the
    /// cross-layer auditor in `tps-check` and by tests.
    ///
    /// Verified:
    /// * every table PTE points at a live node, every pooled node is
    ///   reachable from the root, and no node is reachable twice;
    /// * each tailored leaf occupies a full, slot-aligned run of `2^rel`
    ///   identical alias PTEs (the paper's Fig. 5 encoding);
    /// * every leaf's physical base is aligned to its order.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        self.check_node(self.root, self.levels, &mut seen)?;
        if seen.len() != self.nodes.len() {
            return Err(format!(
                "{} page-table nodes unreachable from the root",
                self.nodes.len() - seen.len()
            ));
        }
        Ok(())
    }

    fn check_node(
        &self,
        node: PhysAddr,
        level: u8,
        seen: &mut std::collections::HashSet<u64>,
    ) -> Result<(), String> {
        if !seen.insert(node.value()) {
            return Err(format!("node {:#x} reachable twice", node.value()));
        }
        let Some(entries) = self.nodes.get(&node.value()) else {
            return Err(format!("dangling table pointer to {:#x}", node.value()));
        };
        let mut idx = 0usize;
        while idx < PT_ENTRIES {
            let pte = entries[idx];
            if !pte.is_present() {
                idx += 1;
                continue;
            }
            if pte.is_leaf(level) {
                let leaf = pte
                    .decode_leaf(level)
                    .map_err(|e| format!("undecodable leaf at level {level} slot {idx}: {e}"))?;
                let Some(rel) = leaf.order.get().checked_sub(level_base_order(level)) else {
                    return Err(format!(
                        "leaf of order {} below its level-{level} base order",
                        leaf.order.get()
                    ));
                };
                let span = 1usize << rel;
                if !idx.is_multiple_of(span) {
                    return Err(format!(
                        "tailored leaf not slot-aligned at level {level} slot {idx}"
                    ));
                }
                if !leaf.base.is_aligned(leaf.order.shift()) {
                    return Err(format!(
                        "leaf base {:#x} misaligned for order {}",
                        leaf.base.value(),
                        leaf.order.get()
                    ));
                }
                // A/D bits are maintained on the true PTE only, so compare
                // the aliases with those bits masked out.
                let ad = PteFlags::ACCESSED.bits() | PteFlags::DIRTY.bits();
                for j in 0..span {
                    if entries[idx + j].bits() & !ad != pte.bits() & !ad {
                        return Err(format!(
                            "alias PTE {j} differs from true PTE at level {level} slot {idx}"
                        ));
                    }
                }
                idx += span;
                continue;
            }
            if level == 1 {
                return Err(format!("table pointer in a leaf-level node (slot {idx})"));
            }
            self.check_node(pte.next_table(), level - 1, seen)?;
            idx += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::{GIB, MIB};

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    fn w() -> PteFlags {
        PteFlags::WRITABLE | PteFlags::USER
    }

    #[test]
    fn map_and_translate_4k() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(BASE_PAGE_SIZE),
            PhysAddr::new(0x5000),
            o(0),
            w(),
        )
        .unwrap();
        assert_eq!(pt.translate(VirtAddr::new(0x1234)).unwrap().value(), 0x5234);
        assert!(pt.translate(VirtAddr::new(0x2000)).is_none());
        assert_eq!(pt.node_count(), 4, "root + 3 intermediate nodes");
    }

    #[test]
    fn map_and_translate_huge_pages() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(GIB), PhysAddr::new(GIB), o(9), w())
            .unwrap();
        pt.map(
            VirtAddr::new(0x8000_0000),
            PhysAddr::new(0x8000_0000),
            o(18),
            w(),
        )
        .unwrap();
        assert_eq!(
            pt.translate(VirtAddr::new(0x4012_3456)).unwrap().value(),
            0x4012_3456
        );
        assert_eq!(
            pt.translate(VirtAddr::new(0xbfff_ffff)).unwrap().value(),
            0xbfff_ffff
        );
    }

    #[test]
    fn tailored_page_aliases_written() {
        let mut pt = PageTable::new();
        // 32 KB page: 8 slots at level 1.
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap();
        // Every 4K sub-page translates correctly, through alias PTEs.
        for i in 0..8u64 {
            let va = VirtAddr::new(0x10_0000 + i * BASE_PAGE_SIZE + 42);
            assert_eq!(
                pt.translate(va).unwrap().value(),
                2 * MIB + i * BASE_PAGE_SIZE + 42
            );
        }
        assert!(pt.translate(VirtAddr::new(0x10_8000)).is_none());
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.map(
                VirtAddr::new(BASE_PAGE_SIZE),
                PhysAddr::new(0x8000),
                o(3),
                w()
            ),
            Err(TpsError::Misaligned { .. })
        ));
        assert!(matches!(
            pt.map(
                VirtAddr::new(0x8000),
                PhysAddr::new(BASE_PAGE_SIZE),
                o(3),
                w()
            ),
            Err(TpsError::Misaligned { .. })
        ));
    }

    #[test]
    fn mapping_under_existing_huge_page_rejected() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(GIB), PhysAddr::new(GIB), o(9), w())
            .unwrap();
        assert!(matches!(
            pt.map(VirtAddr::new(0x4000_1000), PhysAddr::new(0x5000), o(0), w()),
            Err(TpsError::RangeOverlap { .. })
        ));
    }

    #[test]
    fn promotion_replaces_smaller_pages() {
        let mut pt = PageTable::new();
        // Map 8 individual 4K pages, then promote to one 32K page.
        for i in 0..8u64 {
            pt.map(
                VirtAddr::new(0x10_0000 + i * BASE_PAGE_SIZE),
                PhysAddr::new(0x30_0000 + i * BASE_PAGE_SIZE),
                o(0),
                w(),
            )
            .unwrap();
        }
        pt.map(
            VirtAddr::new(0x10_0000),
            PhysAddr::new(0x30_0000),
            o(3),
            w(),
        )
        .unwrap();
        let leaf = pt.lookup(VirtAddr::new(0x10_3000)).unwrap();
        assert_eq!(leaf.order, o(3));
        assert_eq!(
            pt.translate(VirtAddr::new(0x10_3abc)).unwrap().value(),
            0x30_3abc
        );
    }

    #[test]
    fn promotion_across_levels_frees_subtree() {
        let mut pt = PageTable::new();
        // Map 4K pages across a 2M region, then promote to a 4M tailored page.
        for i in 0..16u64 {
            pt.map(
                VirtAddr::new(GIB + i * BASE_PAGE_SIZE),
                PhysAddr::new(GIB + i * BASE_PAGE_SIZE),
                o(0),
                w(),
            )
            .unwrap();
        }
        let nodes_before = pt.node_count();
        pt.map(VirtAddr::new(GIB), PhysAddr::new(GIB), o(10), w())
            .unwrap();
        assert!(pt.node_count() < nodes_before, "level-1 node reclaimed");
        let leaf = pt.lookup(VirtAddr::new(0x4020_0000)).unwrap();
        assert_eq!(leaf.order, o(10));
    }

    #[test]
    fn unmap_clears_all_aliases() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap();
        pt.unmap(VirtAddr::new(0x10_0000), o(3)).unwrap();
        for i in 0..8u64 {
            assert!(pt
                .translate(VirtAddr::new(0x10_0000 + i * BASE_PAGE_SIZE))
                .is_none());
        }
        // Unmapping again fails.
        assert!(pt.unmap(VirtAddr::new(0x10_0000), o(3)).is_err());
    }

    #[test]
    fn unmap_wrong_order_rejected() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap();
        assert!(pt.unmap(VirtAddr::new(0x10_0000), o(2)).is_err());
    }

    #[test]
    fn accessed_dirty_tracking() {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(BASE_PAGE_SIZE),
            PhysAddr::new(0x5000),
            o(0),
            w(),
        )
        .unwrap();
        assert!(
            pt.mark_accessed(VirtAddr::new(0x1234), false),
            "first access stores"
        );
        assert!(
            !pt.mark_accessed(VirtAddr::new(0x1234), false),
            "sticky: no second store"
        );
        assert!(
            pt.mark_accessed(VirtAddr::new(0x1234), true),
            "first write stores dirty"
        );
        assert!(!pt.mark_accessed(VirtAddr::new(0x1234), true));
        assert!(
            !pt.mark_accessed(VirtAddr::new(0x9000), false),
            "unmapped: no store"
        );
    }

    #[test]
    fn census_counts_true_ptes_only() {
        let mut pt = PageTable::new();
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap(); // 32K
        pt.map(VirtAddr::new(2 * MIB), PhysAddr::new(0x40_0000), o(0), w())
            .unwrap(); // 4K
        pt.map(VirtAddr::new(GIB), PhysAddr::new(GIB), o(9), w())
            .unwrap(); // 2M
        pt.map(
            VirtAddr::new(0x8000_0000),
            PhysAddr::new(0x800_0000),
            o(11),
            w(),
        )
        .unwrap(); // 8M
        let census = pt.page_census();
        assert_eq!(census.get(&o(3)), Some(&1));
        assert_eq!(census.get(&o(0)), Some(&1));
        assert_eq!(census.get(&o(9)), Some(&1));
        assert_eq!(census.get(&o(11)), Some(&1));
        assert_eq!(
            pt.mapped_bytes(),
            (32 << 10) + (4 << 10) + (2 << 20) + (8 << 20)
        );
    }

    #[test]
    fn invariant_checker_accepts_live_tables() {
        let mut pt = PageTable::new();
        pt.check_invariants().unwrap();
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap();
        pt.map(VirtAddr::new(GIB), PhysAddr::new(GIB), o(9), w())
            .unwrap();
        pt.map(
            VirtAddr::new(0x8000_0000),
            PhysAddr::new(0x800_0000),
            o(11),
            w(),
        )
        .unwrap();
        pt.mark_accessed(VirtAddr::new(0x10_3000), true); // A/D only on true PTE
        pt.check_invariants().unwrap();
        pt.unmap(VirtAddr::new(0x10_0000), o(3)).unwrap();
        pt.check_invariants().unwrap();
    }

    #[test]
    fn pte_write_counter_advances() {
        let mut pt = PageTable::new();
        let before = pt.pte_writes();
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap();
        // 3 intermediate entries + 8 leaf slots.
        assert_eq!(pt.pte_writes() - before, 3 + 8);
    }

    #[test]
    fn injected_alias_install_fault_retries_the_store() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use tps_core::{FaultPlan, FaultPlanConfig, InjectorHandle};

        let mut pt = PageTable::new();
        let plan = Rc::new(RefCell::new(FaultPlan::new(FaultPlanConfig {
            alias_install: 1.0,
            ..FaultPlanConfig::disabled(21)
        })));
        pt.set_fault_injector(Some(plan.clone() as InjectorHandle));
        let before = pt.pte_writes();
        pt.map(VirtAddr::new(0x10_0000), PhysAddr::new(2 * MIB), o(3), w())
            .unwrap();
        // Every one of the 7 alias stores faulted once and was retried:
        // 3 intermediate + 8 leaf + 7 retries.
        assert_eq!(pt.alias_install_retries(), 7);
        assert_eq!(pt.pte_writes() - before, 3 + 8 + 7);
        assert_eq!(plan.borrow().injected_at("alias-install"), 7);
        // The mapping is intact: every constituent translates.
        for i in 0..8u64 {
            let va = VirtAddr::new(0x10_0000 + i * BASE_PAGE_SIZE);
            assert_eq!(
                pt.translate(va).unwrap().value(),
                2 * MIB + i * BASE_PAGE_SIZE
            );
        }
        // A plain 4K map has no alias stores and never consults the plan.
        let consults = plan.borrow().consultations();
        pt.map(VirtAddr::new(0x80_0000), PhysAddr::new(0x5000), o(0), w())
            .unwrap();
        assert_eq!(plan.borrow().consultations(), consults);
    }
}

#[cfg(test)]
mod ad_vector_tests {
    use super::*;
    use tps_core::GIB;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    fn pt_with_64k_page() -> (PageTable, VirtAddr) {
        let mut pt = PageTable::new();
        pt.set_fine_grained_ad(true);
        let va = VirtAddr::new(0x40_0000);
        pt.map(va, PhysAddr::new(0x80_0000), o(4), PteFlags::WRITABLE)
            .unwrap();
        (pt, va)
    }

    #[test]
    fn writes_set_per_sixteenth_bits() {
        let (mut pt, va) = pt_with_64k_page();
        // A 64K page has 16 base pages: one bit each.
        pt.mark_accessed(va, true);
        pt.mark_accessed(VirtAddr::new(va.value() + 0x5000), true);
        pt.mark_accessed(VirtAddr::new(va.value() + 0xf000), true);
        let v = pt.dirty_vector(va).unwrap();
        assert_eq!(v, (1 << 0) | (1 << 5) | (1 << 15));
    }

    #[test]
    fn reads_do_not_set_vector_bits() {
        let (mut pt, va) = pt_with_64k_page();
        pt.mark_accessed(va, false);
        assert!(pt.dirty_vector(va).is_none());
    }

    #[test]
    fn large_pages_cap_at_sixteen_bits() {
        let mut pt = PageTable::new();
        pt.set_fine_grained_ad(true);
        let va = VirtAddr::new(GIB);
        pt.map(va, PhysAddr::new(0x800_0000), o(11), PteFlags::WRITABLE) // 8 MB
            .unwrap();
        // Writing near the end sets bit 15; each bit covers 512 KB.
        pt.mark_accessed(VirtAddr::new(va.value() + (8 << 20) - BASE_PAGE_SIZE), true);
        pt.mark_accessed(VirtAddr::new(va.value() + 100), true);
        assert_eq!(pt.dirty_vector(va).unwrap(), (1 << 15) | 1);
    }

    #[test]
    fn conventional_pages_are_not_tracked() {
        let mut pt = PageTable::new();
        pt.set_fine_grained_ad(true);
        let va = VirtAddr::new(GIB);
        pt.map(va, PhysAddr::new(GIB), PageOrder::P2M, PteFlags::WRITABLE)
            .unwrap();
        pt.mark_accessed(va, true);
        assert!(
            pt.dirty_vector(va).is_none(),
            "2M is conventional: plain D bit"
        );
    }

    #[test]
    fn disabled_by_default_and_cleared_on_remap() {
        let (mut pt, va) = pt_with_64k_page();
        pt.mark_accessed(va, true);
        assert!(pt.dirty_vector(va).is_some());
        // Remap (promotion path) resets the vector.
        pt.map(va, PhysAddr::new(0x80_0000), o(4), PteFlags::WRITABLE)
            .unwrap();
        assert!(pt.dirty_vector(va).is_none());
        // And a fresh table has tracking off.
        let mut plain = PageTable::new();
        plain
            .map(va, PhysAddr::new(0x80_0000), o(4), PteFlags::WRITABLE)
            .unwrap();
        plain.mark_accessed(va, true);
        assert!(plain.dirty_vector(va).is_none());
    }

    #[test]
    fn unmap_clears_vector() {
        let (mut pt, va) = pt_with_64k_page();
        pt.mark_accessed(va, true);
        pt.unmap(va, o(4)).unwrap();
        pt.map(va, PhysAddr::new(0x80_0000), o(4), PteFlags::WRITABLE)
            .unwrap();
        assert!(pt.dirty_vector(va).is_none());
    }
}

#[cfg(test)]
mod five_level_tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn five_level_maps_and_translates() {
        let mut pt = PageTable::with_levels(5);
        assert_eq!(pt.levels(), 5);
        pt.map(
            VirtAddr::new(BASE_PAGE_SIZE),
            PhysAddr::new(0x7000),
            o(0),
            PteFlags::WRITABLE,
        )
        .unwrap();
        assert_eq!(pt.translate(VirtAddr::new(0x1234)).unwrap().value(), 0x7234);
        // One extra node level: root + 4 intermediates.
        assert_eq!(pt.node_count(), 5);
    }

    #[test]
    fn five_level_supports_tailored_pages() {
        let mut pt = PageTable::with_levels(5);
        pt.map(
            VirtAddr::new(0x40_0000),
            PhysAddr::new(0x80_0000),
            o(4),
            PteFlags::WRITABLE,
        )
        .unwrap();
        let leaf = pt.lookup(VirtAddr::new(0x40_f000)).unwrap();
        assert_eq!(leaf.order, o(4));
        assert_eq!(pt.page_census().get(&o(4)), Some(&1));
        pt.unmap(VirtAddr::new(0x40_0000), o(4)).unwrap();
        assert!(pt.translate(VirtAddr::new(0x40_0000)).is_none());
    }

    #[test]
    #[should_panic(expected = "only 4- or 5-level")]
    fn rejects_other_level_counts() {
        PageTable::with_levels(3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every base page inside a mapped page of any order translates to
        /// the matching offset in the physical block; addresses outside
        /// don't translate.
        #[test]
        fn translation_covers_exactly_the_page(
            order in 0u8..14,
            va_slot in 0u64..64,
            pa_slot in 0u64..64,
            probe in 0u64..(1 << 20),
        ) {
            let ord = o(order);
            let va = VirtAddr::new((0x10_0000_0000 + va_slot * (1 << 26)) & !(ord.bytes() - 1));
            let pa = PhysAddr::new((pa_slot * (1 << 26)) & !(ord.bytes() - 1));
            let mut pt = PageTable::new();
            pt.map(va, pa, ord, PteFlags::WRITABLE).unwrap();
            let inside = VirtAddr::new(va.value() + probe % ord.bytes());
            prop_assert_eq!(
                pt.translate(inside).unwrap().value(),
                pa.value() + probe % ord.bytes()
            );
            let outside = VirtAddr::new(va.value() + ord.bytes() + probe % ord.bytes());
            prop_assert!(pt.translate(outside).is_none());
        }

        /// map → unmap round-trips to an empty translation.
        #[test]
        fn map_unmap_round_trip(order in 0u8..12, slot in 0u64..32) {
            let ord = o(order);
            let va = VirtAddr::new((0x20_0000_0000 + slot * (1 << 25)) & !(ord.bytes() - 1));
            let pa = PhysAddr::new((slot * (1 << 25)) & !(ord.bytes() - 1));
            let mut pt = PageTable::new();
            pt.map(va, pa, ord, PteFlags::WRITABLE).unwrap();
            pt.unmap(va, ord).unwrap();
            prop_assert!(pt.translate(va).is_none());
            prop_assert_eq!(pt.page_census().values().sum::<u64>(), 0);
        }
    }
}
