//! MMU caches (page-structure caches).
//!
//! Commercial MMUs cache recently used entries from the *upper* levels of
//! the page-table tree so a walk can skip one or more memory accesses
//! (paper §II-A). We model one small fully-associative LRU cache per
//! non-leaf level, tagged by the virtual-address prefix that selects the
//! entry:
//!
//! * **PML4E cache** (level 4 entries): tag `VA[47:39]` → level-3 node.
//! * **PDPTE cache** (level 3 entries): tag `VA[47:30]` → level-2 node.
//! * **PDE cache** (level 2 entries): tag `VA[47:21]` → level-1 node.
//!
//! A hit in the PDE cache leaves only the leaf access to perform.

use tps_core::inject::should_fault;
use tps_core::lru::LruCache;
use tps_core::{FaultSite, InjectorHandle, PhysAddr, VirtAddr};

/// Address-space id distinguishing processes sharing the MMU caches (SMT).
pub type Asid = u16;

/// Sizes of the three page-structure caches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MmuCacheConfig {
    /// Entries caching level-4 (PML4) entries.
    pub pml4e_entries: usize,
    /// Entries caching level-3 (PDPT) entries.
    pub pdpte_entries: usize,
    /// Entries caching level-2 (PD) entries.
    pub pde_entries: usize,
}

impl Default for MmuCacheConfig {
    /// Sizes in the spirit of recent Intel parts.
    fn default() -> Self {
        MmuCacheConfig {
            pml4e_entries: 4,
            pdpte_entries: 8,
            pde_entries: 32,
        }
    }
}

/// The per-level MMU caches plus hit statistics.
#[derive(Clone, Debug)]
pub struct MmuCaches {
    /// caches[0] = PDE (level 2), caches[1] = PDPTE (level 3),
    /// caches[2] = PML4E (level 4). Value = node of the next-lower level.
    caches: [LruCache<(Asid, u64), PhysAddr>; 3],
    hits: [u64; 3],
    misses: u64,
    injector: Option<InjectorHandle>,
    fill_drops: u64,
}

impl Default for MmuCaches {
    fn default() -> Self {
        Self::new(MmuCacheConfig::default())
    }
}

impl MmuCaches {
    /// Creates MMU caches with the given sizes.
    pub fn new(config: MmuCacheConfig) -> Self {
        MmuCaches {
            caches: [
                LruCache::new(config.pde_entries),
                LruCache::new(config.pdpte_entries),
                LruCache::new(config.pml4e_entries),
            ],
            hits: [0; 3],
            misses: 0,
            injector: None,
            fill_drops: 0,
        }
    }

    /// Installs (or removes) a fault injector consulted at every fill. A
    /// [`FaultSite::MmuCacheFill`] hit drops the insertion: later walks
    /// miss and re-reference the page table — slower, never incorrect.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.injector = injector;
    }

    /// How many fills were dropped by injected [`FaultSite::MmuCacheFill`]
    /// faults (degradation counter).
    pub fn fill_drops(&self) -> u64 {
        self.fill_drops
    }

    fn tag(asid: Asid, va: VirtAddr, level: u8) -> (Asid, u64) {
        // The prefix that selects the level-`level` entry: everything above
        // the bits translated below that entry.
        (asid, va.value() >> (12 + 9 * (level as u32 - 1)))
    }

    /// Finds the deepest cached pointer for `va`.
    ///
    /// Returns `(resume_level, node)`: the walk should next read the entry
    /// at `resume_level` inside `node`. With no hit the caller resumes at
    /// level 4 from the root (and this records a miss).
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<(u8, PhysAddr)> {
        // Deepest first: PDE (level-2 entries) lets us skip 3 accesses.
        for (slot, level) in [(0usize, 2u8), (1, 3), (2, 4)] {
            if let Some(&node) = self.caches[slot].get(&Self::tag(asid, va, level)) {
                self.hits[slot] += 1;
                // A cached level-L entry points at the level L-1 node.
                return Some((level - 1, node));
            }
        }
        self.misses += 1;
        None
    }

    /// Records the non-leaf entry read at `level` for `va`, whose content
    /// points to `next_node`.
    ///
    /// Levels outside 2..=4 are ignored (leaf levels are cached by TLBs,
    /// not MMU caches), as are fills dropped by an injected
    /// [`FaultSite::MmuCacheFill`] fault.
    pub fn insert(&mut self, asid: Asid, va: VirtAddr, level: u8, next_node: PhysAddr) {
        let slot = match level {
            2 => 0,
            3 => 1,
            4 => 2,
            other => {
                debug_assert!(
                    false,
                    "MMU caches hold only level 2..=4 entries, not {other}"
                );
                return;
            }
        };
        if should_fault(&self.injector, FaultSite::MmuCacheFill) {
            self.fill_drops += 1;
            return;
        }
        self.caches[slot].insert(Self::tag(asid, va, level), next_node);
    }

    /// Flushes everything (TLB shootdown / CR3 write).
    pub fn invalidate_all(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
    }

    /// Hits in the PDE / PDPTE / PML4E caches respectively.
    pub fn hit_counts(&self) -> (u64, u64, u64) {
        (self.hits[0], self.hits[1], self.hits[2])
    }

    /// Walks that found no cached prefix at all.
    pub fn miss_count(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::{BASE_PAGE_SIZE, MIB};

    #[test]
    fn miss_then_hit_at_deepest_level() {
        let mut c = MmuCaches::default();
        let va = VirtAddr::new(0x12_3456_7000);
        assert!(c.lookup(0, va).is_none());
        c.insert(0, va, 4, PhysAddr::new(BASE_PAGE_SIZE));
        c.insert(0, va, 3, PhysAddr::new(0x2000));
        c.insert(0, va, 2, PhysAddr::new(0x3000));
        // Deepest wins: resume at level 1 with the PDE-cached node.
        assert_eq!(c.lookup(0, va), Some((1, PhysAddr::new(0x3000))));
        // A different ASID with the same VA prefix misses.
        assert!(c.lookup(1, va).is_none());
        assert_eq!(c.hit_counts().0, 1);
    }

    #[test]
    fn falls_back_to_shallower_levels() {
        let mut c = MmuCaches::default();
        let va = VirtAddr::new(0x12_3456_7000);
        c.insert(0, va, 4, PhysAddr::new(BASE_PAGE_SIZE));
        // Same PML4 region, different PDPT/PD region: only level 4 applies.
        let va2 = VirtAddr::new(0x12_0000_0000);
        assert_eq!(
            MmuCaches::tag(0, va, 4),
            MmuCaches::tag(0, va2, 4),
            "both in the same 512G region"
        );
        assert_eq!(c.lookup(0, va2), Some((3, PhysAddr::new(BASE_PAGE_SIZE))));
    }

    #[test]
    fn different_regions_do_not_alias() {
        let mut c = MmuCaches::default();
        c.insert(0, VirtAddr::new(0), 2, PhysAddr::new(0x3000));
        assert!(c.lookup(0, VirtAddr::new(2 << 21)).is_none());
        assert!(
            c.lookup(0, VirtAddr::new(0x1fffff)).is_some(),
            "same 2M region hits"
        );
    }

    #[test]
    fn capacity_eviction() {
        let mut c = MmuCaches::new(MmuCacheConfig {
            pml4e_entries: 1,
            pdpte_entries: 1,
            pde_entries: 2,
        });
        c.insert(0, VirtAddr::new(0), 2, PhysAddr::new(BASE_PAGE_SIZE));
        c.insert(0, VirtAddr::new(2 * MIB), 2, PhysAddr::new(0x2000));
        c.insert(0, VirtAddr::new(2 << 21), 2, PhysAddr::new(0x3000));
        assert!(
            c.lookup(0, VirtAddr::new(0)).is_none(),
            "oldest PDE evicted"
        );
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = MmuCaches::default();
        c.insert(0, VirtAddr::new(0), 2, PhysAddr::new(BASE_PAGE_SIZE));
        c.invalidate_all();
        assert!(c.lookup(0, VirtAddr::new(0)).is_none());
        assert_eq!(c.miss_count(), 1);
    }

    #[test]
    fn injected_fill_fault_drops_the_insert() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use tps_core::{FaultPlan, FaultPlanConfig, InjectorHandle};

        let mut c = MmuCaches::default();
        let plan = Rc::new(RefCell::new(FaultPlan::new(FaultPlanConfig {
            mmu_cache_fill: 1.0,
            ..FaultPlanConfig::disabled(11)
        })));
        c.set_fault_injector(Some(plan.clone() as InjectorHandle));
        c.insert(0, VirtAddr::new(0), 2, PhysAddr::new(BASE_PAGE_SIZE));
        assert_eq!(c.fill_drops(), 1);
        assert!(c.lookup(0, VirtAddr::new(0)).is_none(), "fill was dropped");
        assert_eq!(plan.borrow().injected_at("mmu-cache-fill"), 1);
        // Removing the injector restores normal fills.
        c.set_fault_injector(None);
        c.insert(0, VirtAddr::new(0), 2, PhysAddr::new(BASE_PAGE_SIZE));
        assert!(c.lookup(0, VirtAddr::new(0)).is_some());
    }
}
