//! The hardware page walker, including the alias-PTE extra access.

use crate::mmu_cache::{Asid, MmuCaches};
use crate::table::PageTable;
use tps_core::inject::should_fault;
use tps_core::{level_base_order, FaultSite, InjectorHandle, LeafInfo, PhysAddr, VirtAddr};

/// How alias PTEs of tailored pages behave (paper §III-A1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum AliasPolicy {
    /// Alias PTEs only carry the size; a walk landing on one performs one
    /// extra memory access to the true PTE (the paper's default, Fig. 6).
    #[default]
    Pointer,
    /// Alias PTEs are complete copies of the true PTE: no extra walk
    /// access, but every PTE update must store to all aliases (the paper's
    /// alternative; ablated in the benches).
    FullCopy,
}

/// The page-table accesses of one walk, in order, stored inline.
///
/// A walk performs at most 10 accesses — up to 4 before the single
/// permitted fault-injected restart, 5 LA57 levels after it, and 1
/// alias-PTE extra — so the buffer never spills in practice. The walker
/// used to collect these into a `Vec`, which was the translation fast
/// path's only per-access heap allocation (`hot-path-alloc`); the inline
/// buffer saturates (with a `debug_assert`) instead of growing.
#[derive(Clone, Copy)]
pub struct WalkRefs {
    buf: [PhysAddr; Self::MAX],
    len: u8,
}

impl WalkRefs {
    /// Inline capacity: the 10-access worst case plus headroom.
    pub const MAX: usize = 12;

    /// An empty access list.
    pub fn new() -> Self {
        WalkRefs {
            buf: [PhysAddr::new(0); Self::MAX],
            len: 0,
        }
    }

    /// Appends an access, saturating at [`Self::MAX`]. Saturation would
    /// mean the walker's access bound is wrong, so debug builds assert.
    fn push(&mut self, pa: PhysAddr) {
        debug_assert!(
            (self.len as usize) < Self::MAX,
            "walk exceeded the {}-access bound",
            Self::MAX
        );
        if (self.len as usize) < Self::MAX {
            self.buf[self.len as usize] = pa;
            self.len += 1;
        }
    }
}

impl Default for WalkRefs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for WalkRefs {
    type Target = [PhysAddr];

    fn deref(&self) -> &[PhysAddr] {
        &self.buf[..self.len as usize]
    }
}

impl std::fmt::Debug for WalkRefs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for WalkRefs {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for WalkRefs {}

/// A successful walk.
#[derive(Clone, Debug)]
pub struct WalkOk {
    /// The decoded leaf.
    pub leaf: LeafInfo,
    /// Physical addresses of every page-table access performed, in order.
    pub refs: WalkRefs,
    /// True if the final access landed on an alias PTE and (under
    /// [`AliasPolicy::Pointer`]) an extra access to the true PTE occurred.
    pub alias_extra: bool,
}

impl WalkOk {
    /// The physical address `va` translates to.
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        PhysAddr::new(self.leaf.base.value() + va.page_offset(self.leaf.order.shift()))
    }
}

/// A walk that found no mapping (page fault).
#[derive(Clone, Debug)]
pub struct WalkFault {
    /// The level whose entry was not present.
    pub level: u8,
    /// Page-table accesses performed before faulting.
    pub refs: WalkRefs,
}

/// The hardware page-table walker.
///
/// # Example
///
/// ```
/// use tps_core::{PageOrder, PhysAddr, PteFlags, VirtAddr, BASE_PAGE_SIZE};
/// use tps_pt::{AliasPolicy, PageTable, Walker};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtAddr::new(BASE_PAGE_SIZE), PhysAddr::new(0x7000), PageOrder::P4K,
///        PteFlags::WRITABLE).unwrap();
/// let mut walker = Walker::new(AliasPolicy::Pointer);
/// let ok = walker.walk(&pt, VirtAddr::new(0x1abc), None).unwrap();
/// assert_eq!(ok.refs.len(), 4); // full 4-level walk, no MMU caches
/// assert_eq!(ok.translate(VirtAddr::new(0x1abc)).value(), 0x7abc);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Walker {
    alias_policy: AliasPolicy,
    injector: Option<InjectorHandle>,
    walk_restarts: u64,
}

impl Walker {
    /// Creates a walker with the given alias-PTE policy.
    pub fn new(alias_policy: AliasPolicy) -> Self {
        Walker {
            alias_policy,
            injector: None,
            walk_restarts: 0,
        }
    }

    /// The configured alias policy.
    pub fn alias_policy(&self) -> AliasPolicy {
        self.alias_policy
    }

    /// Installs (or removes) a fault injector consulted at every walk
    /// step. A [`FaultSite::WalkStep`] hit models a transient translation
    /// error: the walk restarts from the root, bypassing the MMU caches,
    /// at most once per walk — slower, never incorrect.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.injector = injector;
    }

    /// How many walks restarted from the root due to an injected
    /// [`FaultSite::WalkStep`] fault (degradation counter).
    pub fn walk_restarts(&self) -> u64 {
        self.walk_restarts
    }

    /// Walks the page table for `va`.
    ///
    /// If `caches` is provided, the walk starts from the deepest cached
    /// upper-level entry and newly read non-leaf entries are inserted.
    ///
    /// # Errors
    ///
    /// Returns [`WalkFault`] when an entry on the path is not present.
    pub fn walk(
        &mut self,
        pt: &PageTable,
        va: VirtAddr,
        caches: Option<&mut MmuCaches>,
    ) -> Result<WalkOk, WalkFault> {
        self.walk_for(0, pt, va, caches)
    }

    /// [`Walker::walk`] with an explicit address-space id for the MMU-cache
    /// tags (SMT threads share the caches).
    ///
    /// # Errors
    ///
    /// Returns [`WalkFault`] when an entry on the path is not present.
    pub fn walk_for(
        &mut self,
        asid: Asid,
        pt: &PageTable,
        va: VirtAddr,
        mut caches: Option<&mut MmuCaches>,
    ) -> Result<WalkOk, WalkFault> {
        let mut refs = WalkRefs::new();
        let (mut level, mut node) = match caches.as_deref_mut().and_then(|c| c.lookup(asid, va)) {
            Some((lvl, node)) => (lvl, node),
            None => (pt.levels(), pt.root()),
        };
        let mut restarted = false;
        loop {
            if !restarted && should_fault(&self.injector, FaultSite::WalkStep { level }) {
                // Transient step fault: restart from the root, bypassing
                // the MMU caches. At most one restart per walk keeps the
                // walk finite under a pathological (p = 1.0) plan.
                restarted = true;
                self.walk_restarts += 1;
                (level, node) = (pt.levels(), pt.root());
            }
            let idx = va.pt_index(level);
            let entry_pa = PhysAddr::new(node.value() + (idx as u64) * 8);
            refs.push(entry_pa);
            let pte = pt.read_entry(node, idx);
            if !pte.is_present() {
                return Err(WalkFault { level, refs });
            }
            if pte.is_leaf(level) {
                // `is_leaf` passed, so decode cannot fail; treat a decode
                // error as a not-present entry rather than panicking.
                let Ok(leaf) = pte.decode_leaf(level) else {
                    return Err(WalkFault { level, refs });
                };
                // Alias detection: the index bits that are really page
                // offset must be zero in the true PTE's slot.
                let rel = leaf.order.get() - level_base_order(level);
                let low = idx & ((1usize << rel) - 1);
                let mut alias_extra = false;
                if low != 0 && self.alias_policy == AliasPolicy::Pointer {
                    alias_extra = true;
                    let true_idx = idx & !((1usize << rel) - 1);
                    refs.push(PhysAddr::new(node.value() + (true_idx as u64) * 8));
                }
                return Ok(WalkOk {
                    leaf,
                    refs,
                    alias_extra,
                });
            }
            // Non-leaf: record in the MMU caches and descend.
            let next = pte.next_table();
            if let Some(c) = caches.as_deref_mut() {
                // Only levels 2..=4 have page-structure caches; the extra
                // fifth level is the uncached access LA57 pays for.
                if (2..=4).contains(&level) {
                    c.insert(asid, va, level, next);
                }
            }
            node = next;
            level -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmu_cache::MmuCacheConfig;
    use tps_core::{PageOrder, PteFlags, BASE_PAGE_SIZE, GIB};

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    fn mapped_pt() -> PageTable {
        let mut pt = PageTable::new();
        pt.map(
            VirtAddr::new(BASE_PAGE_SIZE),
            PhysAddr::new(0x7000),
            o(0),
            PteFlags::WRITABLE,
        )
        .unwrap();
        pt.map(
            VirtAddr::new(GIB),
            PhysAddr::new(GIB),
            o(9),
            PteFlags::WRITABLE,
        )
        .unwrap();
        pt.map(
            VirtAddr::new(0x10_0000),
            PhysAddr::new(0x80_0000),
            o(3),
            PteFlags::WRITABLE,
        )
        .unwrap();
        pt
    }

    #[test]
    fn walk_refs_push_saturates_at_capacity() {
        let mut refs = WalkRefs::new();
        assert!(refs.is_empty());
        for i in 0..WalkRefs::MAX {
            refs.push(PhysAddr::new((i as u64) * 8));
        }
        assert_eq!(refs.len(), WalkRefs::MAX);
        assert_eq!(
            refs[WalkRefs::MAX - 1].value(),
            ((WalkRefs::MAX - 1) * 8) as u64
        );
        // Release-mode saturation: a 13th push is dropped, not UB. (Debug
        // builds assert instead — construct past the bound only here.)
        if cfg!(not(debug_assertions)) {
            refs.push(PhysAddr::new(0xdead));
            assert_eq!(refs.len(), WalkRefs::MAX);
        }
        // Equality and Debug go through the live prefix.
        let other = refs;
        assert_eq!(refs, other);
        assert!(format!("{refs:?}").starts_with('['));
    }

    #[test]
    fn full_walk_is_four_accesses() {
        let pt = mapped_pt();
        let ok = Walker::default()
            .walk(&pt, VirtAddr::new(0x1123), None)
            .unwrap();
        assert_eq!(ok.refs.len(), 4);
        assert_eq!(ok.leaf.order, o(0));
    }

    #[test]
    fn huge_page_walk_is_shorter() {
        let pt = mapped_pt();
        let ok = Walker::default()
            .walk(&pt, VirtAddr::new(0x4012_3456), None)
            .unwrap();
        assert_eq!(ok.refs.len(), 3, "2M leaf found at level 2");
        assert_eq!(
            ok.translate(VirtAddr::new(0x4012_3456)).value(),
            0x4012_3456
        );
    }

    #[test]
    fn alias_pte_costs_one_extra_access() {
        let pt = mapped_pt();
        let mut w = Walker::new(AliasPolicy::Pointer);
        // First 4K slot of the 32K page: true PTE, no extra access.
        let ok = w.walk(&pt, VirtAddr::new(0x10_0abc), None).unwrap();
        assert!(!ok.alias_extra);
        assert_eq!(ok.refs.len(), 4);
        // Interior slot: alias PTE, one extra access.
        let ok = w.walk(&pt, VirtAddr::new(0x10_5abc), None).unwrap();
        assert!(ok.alias_extra);
        assert_eq!(ok.refs.len(), 5);
        assert_eq!(ok.translate(VirtAddr::new(0x10_5abc)).value(), 0x80_5abc);
        // The extra access targets the true PTE's slot (5 slots earlier).
        let last = ok.refs[4].value();
        let alias = ok.refs[3].value();
        assert_eq!(alias - last, 5 * 8);
    }

    #[test]
    fn full_copy_policy_has_no_extra_access() {
        let pt = mapped_pt();
        let mut w = Walker::new(AliasPolicy::FullCopy);
        let ok = w.walk(&pt, VirtAddr::new(0x10_5abc), None).unwrap();
        assert!(!ok.alias_extra);
        assert_eq!(ok.refs.len(), 4);
    }

    #[test]
    fn fault_reports_level_and_refs() {
        let pt = mapped_pt();
        let err = Walker::default()
            .walk(&pt, VirtAddr::new(0x9999_0000_0000), None)
            .unwrap_err();
        assert_eq!(err.level, 4);
        assert_eq!(err.refs.len(), 1);
        // Fault below the root: same 2M region as a mapped page but a
        // different 4K slot.
        let err = Walker::default()
            .walk(&pt, VirtAddr::new(0x3000), None)
            .unwrap_err();
        assert_eq!(err.level, 1);
        assert_eq!(err.refs.len(), 4);
    }

    #[test]
    fn mmu_caches_shorten_repeat_walks() {
        let pt = mapped_pt();
        let mut caches = MmuCaches::new(MmuCacheConfig::default());
        let mut w = Walker::default();
        let first = w
            .walk(&pt, VirtAddr::new(0x1123), Some(&mut caches))
            .unwrap();
        assert_eq!(first.refs.len(), 4);
        let second = w
            .walk(&pt, VirtAddr::new(0x1456), Some(&mut caches))
            .unwrap();
        assert_eq!(
            second.refs.len(),
            1,
            "PDE cache hit leaves only the leaf access"
        );
        // The 2M page at 1 GB shares only the PML4 region: PML4E cache hit,
        // then the level-3 entry and the level-2 leaf are read.
        let third = w
            .walk(&pt, VirtAddr::new(0x4000_0123), Some(&mut caches))
            .unwrap();
        assert_eq!(third.refs.len(), 2, "PML4E cache hit, leaf at level 2");
        // A second access to the same 2M page hits the PDPTE cache.
        let fourth = w
            .walk(&pt, VirtAddr::new(0x4000_0456), Some(&mut caches))
            .unwrap();
        assert_eq!(fourth.refs.len(), 1, "PDPTE cache hit, leaf at level 2");
    }

    #[test]
    fn cached_walk_translates_identically() {
        let pt = mapped_pt();
        let mut caches = MmuCaches::default();
        let mut w = Walker::default();
        let va = VirtAddr::new(0x10_6eef);
        let cold = w.walk(&pt, va, None).unwrap();
        let warm = w.walk(&pt, va, Some(&mut caches)).unwrap();
        let hot = w.walk(&pt, va, Some(&mut caches)).unwrap();
        assert_eq!(cold.translate(va), warm.translate(va));
        assert_eq!(warm.translate(va), hot.translate(va));
        assert!(hot.refs.len() < warm.refs.len());
    }

    #[test]
    fn five_level_walk_costs_one_more_access() {
        let mut pt = PageTable::with_levels(5);
        pt.map(
            VirtAddr::new(BASE_PAGE_SIZE),
            PhysAddr::new(0x7000),
            o(0),
            PteFlags::WRITABLE,
        )
        .unwrap();
        let ok = Walker::default()
            .walk(&pt, VirtAddr::new(0x1123), None)
            .unwrap();
        assert_eq!(ok.refs.len(), 5, "LA57 full walk");
        // With warm MMU caches the extra level is skipped along with the
        // other upper levels.
        let mut caches = MmuCaches::default();
        Walker::default()
            .walk(&pt, VirtAddr::new(0x1123), Some(&mut caches))
            .unwrap();
        let warm = Walker::default()
            .walk(&pt, VirtAddr::new(0x1456), Some(&mut caches))
            .unwrap();
        assert_eq!(warm.refs.len(), 1);
    }

    #[test]
    fn walker_agrees_with_functional_lookup() {
        let pt = mapped_pt();
        let mut w = Walker::default();
        for raw in [0x1001u64, 0x10_0000, 0x10_7fff, GIB, 0x401f_ffff] {
            let va = VirtAddr::new(raw);
            let ok = w.walk(&pt, va, None).unwrap();
            assert_eq!(Some(ok.translate(va)), pt.translate(va), "va {va}");
        }
    }

    #[test]
    fn injected_step_fault_restarts_once_and_translates_correctly() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use tps_core::{FaultPlan, FaultPlanConfig, InjectorHandle};

        let pt = mapped_pt();
        let mut w = Walker::default();
        let plan = Rc::new(RefCell::new(FaultPlan::new(FaultPlanConfig {
            walk_step: 1.0,
            ..FaultPlanConfig::disabled(3)
        })));
        w.set_fault_injector(Some(plan.clone() as InjectorHandle));
        let va = VirtAddr::new(0x1123);
        let ok = w.walk(&pt, va, None).unwrap();
        // One restart: the first step faulted, the rerun's four accesses
        // follow the aborted attempt's zero accesses.
        assert_eq!(w.walk_restarts(), 1);
        assert_eq!(ok.refs.len(), 4);
        assert_eq!(Some(ok.translate(va)), pt.translate(va));
        assert_eq!(plan.borrow().injected_at("walk-step"), 1);
        // Warm caches are bypassed on restart: a faulted cached walk still
        // translates identically.
        let mut caches = MmuCaches::default();
        let warm = w.walk(&pt, va, Some(&mut caches)).unwrap();
        assert_eq!(Some(warm.translate(va)), pt.translate(va));
        assert_eq!(w.walk_restarts(), 2);
    }
}
