//! Property tests: the hardware walker and the functional lookup must
//! agree on every translation, cached or not, at any page size and at
//! both 4 and 5 levels.

use proptest::prelude::*;
use tps_core::rng::Rng;
use tps_core::{PageOrder, PhysAddr, PteFlags, VirtAddr};
use tps_pt::{AliasPolicy, MmuCaches, PageTable, Walker};

/// Builds a page table with `n` random non-overlapping pages and returns
/// the mappings. VAs are spread over slots large enough that no two pages
/// can overlap.
fn random_mappings(
    seed: u64,
    n: usize,
    levels: u8,
) -> (PageTable, Vec<(VirtAddr, PhysAddr, PageOrder)>) {
    let mut rng = Rng::new(seed);
    let mut pt = PageTable::with_levels(levels);
    let mut maps = Vec::new();
    for slot in 0..n as u64 {
        let order = PageOrder::new(rng.below(15) as u8).unwrap();
        // 128 MB VA slots, 64 MB PA slots: both exceed the largest order
        // used (order 14 = 64 MB), so mappings never collide.
        let va = VirtAddr::new((0x100_0000_0000 + slot * (1 << 27)) & !(order.bytes() - 1));
        let pa = PhysAddr::new((slot * (1 << 26)) & !(order.bytes() - 1));
        pt.map(va, pa, order, PteFlags::WRITABLE).unwrap();
        maps.push((va, pa, order));
    }
    (pt, maps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Walks translate identically to functional lookups, with MMU caches
    /// warm or cold, under both alias policies.
    #[test]
    fn walker_matches_functional_lookup(
        seed in 0u64..100_000,
        levels in 4u8..=5,
        probes in proptest::collection::vec((0usize..12, 0u64..(1 << 27)), 1..40),
    ) {
        let (pt, maps) = random_mappings(seed, 12, levels);
        let mut caches = MmuCaches::default();
        for policy in [AliasPolicy::Pointer, AliasPolicy::FullCopy] {
            let mut walker = Walker::new(policy);
            for &(slot, off) in &probes {
                let (va_base, _, order) = maps[slot];
                let va = VirtAddr::new(va_base.value() + off % order.bytes());
                let expect = pt.translate(va).expect("mapped");
                let cold = walker.walk(&pt, va, None).unwrap();
                prop_assert_eq!(cold.translate(va), expect);
                let warm = walker.walk(&pt, va, Some(&mut caches)).unwrap();
                prop_assert_eq!(warm.translate(va), expect);
                prop_assert!(warm.refs.len() <= cold.refs.len());
            }
        }
    }

    /// Walk cost accounting: a cold walk of a level-1 leaf makes `levels`
    /// accesses, plus exactly one more when it lands on an alias PTE under
    /// the pointer policy, and never more.
    #[test]
    fn walk_reference_counts_are_exact(
        levels in 4u8..=5,
        order in 1u8..=8,
        off in 0u64..(1 << 20),
    ) {
        let o = PageOrder::new(order).unwrap();
        let mut pt = PageTable::with_levels(levels);
        let va_base = VirtAddr::new(0x200_0000_0000u64 & !(o.bytes() - 1));
        pt.map(va_base, PhysAddr::new(0x1000_0000 & !(o.bytes() - 1)), o, PteFlags::WRITABLE)
            .unwrap();
        let va = VirtAddr::new(va_base.value() + off % o.bytes());
        let is_alias_slot = (va.pt_index(1) & ((1usize << order) - 1)) != 0;

        let ptr = Walker::new(AliasPolicy::Pointer).walk(&pt, va, None).unwrap();
        let copy = Walker::new(AliasPolicy::FullCopy).walk(&pt, va, None).unwrap();
        prop_assert_eq!(copy.refs.len(), levels as usize);
        prop_assert_eq!(
            ptr.refs.len(),
            levels as usize + usize::from(is_alias_slot),
            "alias slot: {}", is_alias_slot
        );
        prop_assert_eq!(ptr.alias_extra, is_alias_slot);
        prop_assert!(!copy.alias_extra);
    }

    /// Unmapped probes fault at the correct level and never translate.
    #[test]
    fn unmapped_probes_fault(seed in 0u64..100_000) {
        let (pt, _maps) = random_mappings(seed, 4, 4);
        let mut walker = Walker::default();
        // Far outside any mapping slot.
        let va = VirtAddr::new(0x7000_0000_0000);
        let fault = walker.walk(&pt, va, None).unwrap_err();
        prop_assert!(fault.level >= 1 && fault.level <= 4);
        prop_assert!(!fault.refs.is_empty());
        prop_assert!(pt.translate(va).is_none());
    }
}
