//! SPEC CPU2017-like memory kernels.
//!
//! PIN-tracing real SPEC binaries is replaced by deterministic kernels that
//! reproduce each benchmark's *address-stream character* — footprint,
//! allocation shape and locality class (DESIGN.md §2). The TLB-intensive
//! subset (MPKI > 5, paper Fig. 8) plus a few low-MPKI benchmarks for the
//! profiling figure are provided.

use crate::event::{Event, Workload, WorkloadProfile};
use crate::zipf::{CyclePermutation, Zipf};
use std::collections::VecDeque;
use tps_core::rng::Rng;

/// The modeled SPEC CPU2017 benchmarks.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecBench {
    Gcc,
    Mcf,
    Omnetpp,
    Xalancbmk,
    CactuBssn,
    Fotonik3d,
    Roms,
    // Low-MPKI benchmarks, present for the Fig. 8 profiling sweep only.
    Perlbench,
    X264,
    Leela,
    Exchange2,
}

impl SpecBench {
    /// Every modeled benchmark (the Fig. 8 profiling set).
    pub fn all() -> [SpecBench; 11] {
        [
            SpecBench::Gcc,
            SpecBench::Mcf,
            SpecBench::Omnetpp,
            SpecBench::Xalancbmk,
            SpecBench::CactuBssn,
            SpecBench::Fotonik3d,
            SpecBench::Roms,
            SpecBench::Perlbench,
            SpecBench::X264,
            SpecBench::Leela,
            SpecBench::Exchange2,
        ]
    }

    /// The TLB-intensive subset used in the evaluation figures.
    pub fn tlb_intensive() -> [SpecBench; 7] {
        [
            SpecBench::Gcc,
            SpecBench::Mcf,
            SpecBench::Omnetpp,
            SpecBench::Xalancbmk,
            SpecBench::CactuBssn,
            SpecBench::Fotonik3d,
            SpecBench::Roms,
        ]
    }

    /// Benchmark name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SpecBench::Gcc => "gcc",
            SpecBench::Mcf => "mcf",
            SpecBench::Omnetpp => "omnetpp",
            SpecBench::Xalancbmk => "xalancbmk",
            SpecBench::CactuBssn => "cactuBSSN",
            SpecBench::Fotonik3d => "fotonik3d",
            SpecBench::Roms => "roms",
            SpecBench::Perlbench => "perlbench",
            SpecBench::X264 => "x264",
            SpecBench::Leela => "leela",
            SpecBench::Exchange2 => "exchange2",
        }
    }
}

/// The locality class driving a kernel's address stream.
#[derive(Clone, Debug)]
enum Pattern {
    /// Dependent pointer chase over a node array (mcf).
    PointerChase {
        nodes: u64,
        node_bytes: u64,
        perm: CyclePermutation,
        cursor: u64,
        write_fraction: f64,
    },
    /// A hot structure plus a cold heap (omnetpp; also the low-MPKI set).
    HotCold {
        hot_bytes: u64,
        cold_bytes: u64,
        hot_fraction: f64,
        write_fraction: f64,
    },
    /// Local random walk with occasional long jumps (xalancbmk).
    TreeWalk {
        bytes: u64,
        window: u64,
        jump_fraction: f64,
        cursor: u64,
        write_fraction: f64,
    },
    /// A large main heap plus many allocation arenas; arena popularity is
    /// Zipf-skewed, as allocator arenas are in practice (gcc). Region 0 is
    /// the heap and draws `heap_fraction` of all accesses.
    MultiRegion {
        region_bytes: Vec<u64>,
        region_zipf: Zipf,
        heap_fraction: f64,
        sequential_fraction: f64,
        cursors: Vec<u64>,
        write_fraction: f64,
    },
    /// 3-D stencil sweep (cactuBSSN).
    Stencil3d {
        nx: u64,
        ny: u64,
        nz: u64,
        elem: u64,
        cell: u64,
    },
    /// Multi-array streaming sweep (fotonik3d, roms).
    Stream {
        arrays: u64,
        array_bytes: u64,
        stride: u64,
        cursor: u64,
        write_every: u64,
    },
}

/// A SPEC-like kernel workload.
#[derive(Clone, Debug)]
pub struct Spec17Kernel {
    bench: SpecBench,
    pattern: Pattern,
    rng: Rng,
    accesses: u64,
    emitted: u64,
    pending: VecDeque<Event>,
    setup_done: bool,
    /// (region, bytes) to mmap on startup.
    regions: Vec<u64>,
}

impl Spec17Kernel {
    /// Builds a kernel with paper-scale footprints and the given access
    /// budget.
    ///
    /// `shrink` divides every footprint by `2^shrink` (0 for evaluation
    /// runs; larger values make unit tests fast).
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is zero or `shrink > 10`.
    pub fn new(bench: SpecBench, accesses: u64, shrink: u32, seed: u64) -> Self {
        assert!(accesses > 0, "need a positive access budget");
        assert!(shrink <= 10, "shrink too aggressive");
        let sh = |bytes: u64| (bytes >> shrink).max(64 << 10);
        let mut rng = Rng::new(seed ^ (bench as u64) << 32);
        let (pattern, regions) = match bench {
            SpecBench::Mcf => {
                let bytes = sh(512 << 20);
                // Largest power of two not exceeding the node budget.
                let nodes = 1u64 << (63 - (bytes / 64).leading_zeros());
                let k = nodes.trailing_zeros();
                (
                    Pattern::PointerChase {
                        nodes,
                        node_bytes: 64,
                        perm: CyclePermutation::new(k, seed),
                        cursor: 0,
                        write_fraction: 0.12,
                    },
                    vec![nodes * 64],
                )
            }
            SpecBench::Omnetpp => {
                let cold = sh(256 << 20);
                (
                    Pattern::HotCold {
                        hot_bytes: sh(4 << 20).min(cold / 4),
                        cold_bytes: cold,
                        hot_fraction: 0.45,
                        write_fraction: 0.3,
                    },
                    vec![cold],
                )
            }
            SpecBench::Xalancbmk => {
                let bytes = sh(192 << 20);
                (
                    Pattern::TreeWalk {
                        bytes,
                        window: 32 << 10,
                        jump_fraction: 0.3,
                        cursor: 0,
                        write_fraction: 0.1,
                    },
                    vec![bytes],
                )
            }
            SpecBench::Gcc => {
                // One big IR heap plus ~190 allocation arenas. The arena
                // count is poison for a 32-entry Range TLB; the heap is one
                // tailored page for TPS but dozens of 2M pages for THP.
                let n_arenas = 191usize;
                let mut region_bytes = vec![sh(192 << 20)]; // region 0: heap
                region_bytes.extend((0..n_arenas).map(|_| sh((1 << 20) << rng.below(3))));
                (
                    Pattern::MultiRegion {
                        cursors: vec![0; n_arenas + 1],
                        region_bytes: region_bytes.clone(),
                        region_zipf: Zipf::new(n_arenas as u64, 0.6),
                        heap_fraction: 0.7,
                        sequential_fraction: 0.5,
                        write_fraction: 0.25,
                    },
                    region_bytes,
                )
            }
            SpecBench::CactuBssn => {
                let n = (320u64 >> (shrink / 3)).max(48);
                (
                    Pattern::Stencil3d {
                        nx: n,
                        ny: n,
                        nz: n,
                        elem: 8,
                        cell: 0,
                    },
                    vec![n * n * n * 8],
                )
            }
            SpecBench::Fotonik3d => {
                let arrays = 6u64;
                let ab = sh(96 << 20);
                (
                    Pattern::Stream {
                        arrays,
                        array_bytes: ab,
                        stride: 256,
                        cursor: 0,
                        write_every: 3,
                    },
                    vec![ab; arrays as usize],
                )
            }
            SpecBench::Roms => {
                let arrays = 10u64;
                let ab = sh(48 << 20);
                (
                    Pattern::Stream {
                        arrays,
                        array_bytes: ab,
                        stride: 128,
                        cursor: 0,
                        write_every: 4,
                    },
                    vec![ab; arrays as usize],
                )
            }
            SpecBench::Perlbench | SpecBench::X264 | SpecBench::Leela | SpecBench::Exchange2 => {
                let cold = sh(64 << 20);
                (
                    Pattern::HotCold {
                        hot_bytes: 128 << 10,
                        cold_bytes: cold,
                        hot_fraction: 0.985,
                        write_fraction: 0.2,
                    },
                    vec![cold],
                )
            }
        };
        Spec17Kernel {
            bench,
            pattern,
            rng,
            accesses,
            emitted: 0,
            pending: VecDeque::new(),
            setup_done: false,
            regions,
        }
    }

    /// The benchmark this kernel models.
    pub fn bench(&self) -> SpecBench {
        self.bench
    }

    fn queue_step(&mut self) {
        match &mut self.pattern {
            Pattern::PointerChase {
                nodes,
                node_bytes,
                perm,
                cursor,
                write_fraction,
            } => {
                *cursor = perm.next(*cursor) % *nodes;
                let write = self.rng.chance(*write_fraction);
                self.pending.push_back(Event::Access {
                    region: 0,
                    offset: *cursor * *node_bytes,
                    write,
                });
            }
            Pattern::HotCold {
                hot_bytes,
                cold_bytes,
                hot_fraction,
                write_fraction,
            } => {
                let hot = self.rng.chance(*hot_fraction);
                let offset = if hot {
                    self.rng.below(*hot_bytes / 8) * 8
                } else {
                    *hot_bytes + self.rng.below((*cold_bytes - *hot_bytes) / 8) * 8
                };
                let write = self.rng.chance(*write_fraction);
                self.pending.push_back(Event::Access {
                    region: 0,
                    offset,
                    write,
                });
            }
            Pattern::TreeWalk {
                bytes,
                window,
                jump_fraction,
                cursor,
                write_fraction,
            } => {
                if self.rng.chance(*jump_fraction) {
                    *cursor = self.rng.below(*bytes / 8) * 8;
                } else {
                    let lo = cursor.saturating_sub(*window / 2);
                    let hi = (*cursor + *window / 2).min(*bytes - 8);
                    *cursor = self.rng.range(lo / 8, hi / 8 + 1) * 8;
                }
                let write = self.rng.chance(*write_fraction);
                self.pending.push_back(Event::Access {
                    region: 0,
                    offset: *cursor,
                    write,
                });
            }
            Pattern::MultiRegion {
                region_bytes,
                region_zipf,
                heap_fraction,
                sequential_fraction,
                cursors,
                write_fraction,
            } => {
                let r = if self.rng.chance(*heap_fraction) {
                    0 // the heap, randomly accessed
                } else {
                    1 + region_zipf.sample(&mut self.rng) as usize
                };
                let len = region_bytes[r];
                let offset = if r != 0 && self.rng.chance(*sequential_fraction) {
                    cursors[r] = (cursors[r] + 64) % len;
                    cursors[r]
                } else {
                    self.rng.below(len / 8) * 8
                };
                let write = self.rng.chance(*write_fraction);
                self.pending.push_back(Event::Access {
                    region: r as u32,
                    offset,
                    write,
                });
            }
            Pattern::Stencil3d {
                nx,
                ny,
                nz,
                elem,
                cell,
            } => {
                let total = *nx * *ny * *nz;
                let c = *cell % total;
                *cell = (*cell + 7) % total; // coprime stride: full sweep
                let plane = *nx * *ny;
                // Center read, ±j neighbor, ±k neighbor (cross-page), write.
                for (delta, write) in [
                    (0i64, false),
                    (*nx as i64, false),
                    (-(*nx as i64), false),
                    (plane as i64, false),
                    (-(plane as i64), false),
                    (0, true),
                ] {
                    let idx = (c as i64 + delta).rem_euclid(total as i64) as u64;
                    self.pending.push_back(Event::Access {
                        region: 0,
                        offset: idx * *elem,
                        write,
                    });
                }
            }
            Pattern::Stream {
                arrays,
                array_bytes,
                stride,
                cursor,
                write_every,
            } => {
                let pos = (*cursor * *stride) % *array_bytes;
                for a in 0..*arrays {
                    self.pending.push_back(Event::Access {
                        region: a as u32,
                        offset: pos,
                        write: a % *write_every == *write_every - 1,
                    });
                }
                *cursor += 1;
            }
        }
    }
}

impl Workload for Spec17Kernel {
    fn profile(&self) -> WorkloadProfile {
        // Criticality reflects how much of a 9-cycle STLB-hit latency the
        // 256-entry out-of-order window cannot hide: highest for serial
        // pointer chasing, near zero for prefetchable streams.
        let (cpi, ipa, crit, savable, smt) = match self.bench {
            SpecBench::Mcf => (0.9, 8.0, 0.35, 0.85, 1.25),
            SpecBench::Omnetpp => (0.8, 10.0, 0.3, 0.7, 1.3),
            SpecBench::Xalancbmk => (0.7, 12.0, 0.3, 0.7, 1.3),
            SpecBench::Gcc => (0.6, 14.0, 0.3, 0.6, 1.35),
            SpecBench::CactuBssn => (0.5, 16.0, 0.15, 0.45, 1.45),
            SpecBench::Fotonik3d => (0.45, 16.0, 0.12, 0.35, 1.5),
            SpecBench::Roms => (0.45, 16.0, 0.12, 0.35, 1.5),
            _ => (0.5, 18.0, 0.3, 0.5, 1.3),
        };
        WorkloadProfile {
            name: self.bench.label().into(),
            base_cpi: cpi,
            insts_per_access: ipa,
            l1_miss_criticality: crit,
            walk_savable: savable,
            smt_slowdown: smt,
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        if !self.setup_done {
            self.setup_done = true;
            for (i, &bytes) in self.regions.iter().enumerate() {
                self.pending.push_back(Event::Mmap {
                    region: i as u32,
                    bytes,
                });
            }
        }
        loop {
            if let Some(e) = self.pending.pop_front() {
                if matches!(e, Event::Access { .. }) {
                    if self.emitted >= self.accesses {
                        return None;
                    }
                    self.emitted += 1;
                }
                return Some(e);
            }
            self.queue_step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;

    fn run_events(bench: SpecBench, accesses: u64) -> Vec<Event> {
        let mut k = Spec17Kernel::new(bench, accesses, 6, 1);
        std::iter::from_fn(move || k.next_event()).collect()
    }

    #[test]
    fn every_bench_emits_valid_streams() {
        for bench in SpecBench::all() {
            let events = run_events(bench, 2000);
            let mut region_size = std::collections::HashMap::new();
            let mut accesses = 0u64;
            for e in &events {
                match e {
                    Event::Mmap { region, bytes } => {
                        assert!(*bytes > 0);
                        region_size.insert(*region, *bytes);
                    }
                    Event::Access { region, offset, .. } => {
                        let sz = region_size
                            .get(region)
                            .unwrap_or_else(|| panic!("{bench:?}: unmapped region {region}"));
                        assert!(offset < sz, "{bench:?}: offset {offset} >= {sz}");
                        accesses += 1;
                    }
                    _ => {}
                }
            }
            assert_eq!(accesses, 2000, "{bench:?}");
        }
    }

    #[test]
    fn gcc_creates_many_regions() {
        let events = run_events(SpecBench::Gcc, 10);
        let mmaps = events
            .iter()
            .filter(|e| matches!(e, Event::Mmap { .. }))
            .count();
        assert!(mmaps > 100, "gcc needs many arenas, got {mmaps}");
    }

    #[test]
    fn mcf_is_a_permutation_chase() {
        let events = run_events(SpecBench::Mcf, 5000);
        let offsets: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Access { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        // A full-cycle chase never revisits a node within the cycle.
        let unique: std::collections::HashSet<_> = offsets.iter().collect();
        assert_eq!(unique.len(), offsets.len());
    }

    #[test]
    fn stencil_strides_cross_pages() {
        let events = run_events(SpecBench::CactuBssn, 600);
        let mut deltas = std::collections::HashSet::new();
        let offsets: Vec<i64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Access { offset, .. } => Some(*offset as i64),
                _ => None,
            })
            .collect();
        for w in offsets.windows(2) {
            deltas.insert(w[1] - w[0]);
        }
        // Plane-stride neighbors are > 4 KB apart.
        assert!(
            deltas.iter().any(|d| d.abs() > BASE_PAGE_SIZE as i64),
            "deltas {deltas:?}"
        );
    }

    #[test]
    fn low_mpki_benches_have_high_locality() {
        let events = run_events(SpecBench::Leela, 10_000);
        let mut pages = std::collections::HashMap::new();
        for e in &events {
            if let Event::Access { offset, .. } = e {
                *pages.entry(offset >> 12).or_insert(0u64) += 1;
            }
        }
        let hot: u64 = pages.values().filter(|&&c| c > 50).sum();
        assert!(
            hot as f64 > 0.8 * 10_000.0,
            "hot pages draw most accesses: {hot}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run_events(SpecBench::Omnetpp, 1000);
        let b = run_events(SpecBench::Omnetpp, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_cover_all() {
        for b in SpecBench::all() {
            assert!(!b.label().is_empty());
        }
        assert_eq!(SpecBench::tlb_intensive().len(), 7);
    }
}
