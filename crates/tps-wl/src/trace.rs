//! Trace recording and replay.
//!
//! The paper drives its simulator from PIN traces of real binaries. This
//! module provides the equivalent interchange point: any [`Workload`] can
//! be *recorded* to a compact line-oriented text format, and a trace file
//! (from here, or converted from a real PIN/DynamoRIO tool) can be
//! *replayed* as a workload.
//!
//! # Format
//!
//! One event per line, whitespace-separated:
//!
//! ```text
//! # comment
//! M <region> <bytes>        mmap
//! U <region>                munmap
//! A <region> <offset> R|W   access (read / write)
//! C <insts>                 compute
//! B                         stats barrier (ROI begin)
//! ```
//!
//! # Example
//!
//! ```
//! use tps_wl::{replay, Event, Recorder, Workload, Gups, GupsParams};
//!
//! let inner = Gups::new(GupsParams { table_bytes: 1 << 20, updates: 10, seed: 1 });
//! let mut buf = Vec::new();
//! let mut rec = Recorder::new(inner, &mut buf);
//! while rec.next_event().is_some() {}
//! drop(rec);
//!
//! let mut replayed = replay(&buf[..], rec_profile()).unwrap();
//! assert!(matches!(replayed.next_event(), Some(Event::Mmap { .. })));
//! # fn rec_profile() -> tps_wl::WorkloadProfile { tps_wl::WorkloadProfile::named("gups") }
//! ```

use crate::event::{Event, Workload, WorkloadProfile};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Serializes one event as a trace line (without the newline).
pub fn format_event(event: &Event) -> String {
    match event {
        Event::Mmap { region, bytes } => format!("M {region} {bytes}"),
        Event::Munmap { region } => format!("U {region}"),
        Event::Access {
            region,
            offset,
            write,
        } => {
            format!("A {region} {offset} {}", if *write { "W" } else { "R" })
        }
        Event::Compute { insts } => format!("C {insts}"),
        Event::StatsBarrier => "B".to_string(),
    }
}

/// Parses one trace line; empty lines and `#` comments yield `None`.
///
/// # Errors
///
/// Returns a descriptive error for malformed lines.
pub fn parse_event(line: &str) -> Result<Option<Event>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let tag = parts.next().expect("non-empty line has a first token");
    let mut num = |what: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("missing {what} in {line:?}"))?
            .parse::<u64>()
            .map_err(|e| format!("bad {what} in {line:?}: {e}"))
    };
    let event = match tag {
        "M" => Event::Mmap {
            region: num("region")? as u32,
            bytes: num("bytes")?,
        },
        "U" => Event::Munmap {
            region: num("region")? as u32,
        },
        "A" => {
            let region = num("region")? as u32;
            let offset = num("offset")?;
            let rw = parts
                .next()
                .ok_or_else(|| format!("missing R|W in {line:?}"))?;
            Event::Access {
                region,
                offset,
                write: match rw {
                    "W" => true,
                    "R" => false,
                    other => return Err(format!("bad access kind {other:?} in {line:?}")),
                },
            }
        }
        "C" => Event::Compute {
            insts: num("insts")?,
        },
        "B" => Event::StatsBarrier,
        other => return Err(format!("unknown event tag {other:?} in {line:?}")),
    };
    Ok(Some(event))
}

/// Wraps a workload, writing every emitted event to a trace writer.
///
/// The recorder is itself a [`Workload`], so it can drive a simulation
/// while capturing the stream (record-while-run).
#[derive(Debug)]
pub struct Recorder<W, O: Write> {
    inner: W,
    out: O,
    events: u64,
}

impl<W: Workload, O: Write> Recorder<W, O> {
    /// Wraps `inner`, recording to `out`.
    ///
    /// A mutable reference can be passed for `out` (e.g. `&mut Vec<u8>`),
    /// per the standard `Write` blanket impls.
    pub fn new(inner: W, out: O) -> Self {
        Recorder {
            inner,
            out,
            events: 0,
        }
    }

    /// Number of events recorded so far.
    pub fn events_recorded(&self) -> u64 {
        self.events
    }

    /// Finishes recording, returning the inner workload and the writer.
    ///
    /// # Errors
    ///
    /// Returns the flush error, if any.
    pub fn finish(mut self) -> io::Result<(W, O)> {
        self.out.flush()?;
        Ok((self.inner, self.out))
    }
}

impl<W: Workload, O: Write> Workload for Recorder<W, O> {
    fn profile(&self) -> WorkloadProfile {
        self.inner.profile()
    }

    fn next_event(&mut self) -> Option<Event> {
        let event = self.inner.next_event()?;
        writeln!(self.out, "{}", format_event(&event)).expect("trace write failed");
        self.events += 1;
        Some(event)
    }
}

/// A workload replayed from a trace.
#[derive(Debug)]
pub struct TraceReplay<R> {
    lines: io::Lines<BufReader<R>>,
    profile: WorkloadProfile,
    line_no: u64,
}

impl<R: Read> Workload for TraceReplay<R> {
    fn profile(&self) -> WorkloadProfile {
        self.profile.clone()
    }

    fn next_event(&mut self) -> Option<Event> {
        loop {
            let line = self.lines.next()?.expect("trace read failed");
            self.line_no += 1;
            match parse_event(&line) {
                Ok(Some(event)) => return Some(event),
                Ok(None) => continue,
                Err(e) => panic!("trace line {}: {e}", self.line_no),
            }
        }
    }
}

/// Opens a trace for replay as a [`Workload`], with the timing profile to
/// attribute to it (traces carry addresses, not timing parameters).
///
/// # Errors
///
/// IO errors surface on construction only for convenience-of-signature;
/// read errors during replay panic (the trace is trusted local input).
pub fn replay<R: Read>(reader: R, profile: WorkloadProfile) -> io::Result<TraceReplay<R>> {
    Ok(TraceReplay {
        lines: BufReader::new(reader).lines(),
        profile,
        line_no: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gups::{Gups, GupsParams};
    use crate::init::Initialized;
    use tps_core::GIB;

    fn collect<W: Workload>(mut w: W) -> Vec<Event> {
        std::iter::from_fn(move || w.next_event()).collect()
    }

    #[test]
    fn event_format_round_trips() {
        let events = [
            Event::Mmap {
                region: 3,
                bytes: GIB,
            },
            Event::Munmap { region: 3 },
            Event::Access {
                region: 0,
                offset: 0xdeadbeef,
                write: true,
            },
            Event::Access {
                region: 7,
                offset: 0,
                write: false,
            },
            Event::Compute { insts: 12345 },
            Event::StatsBarrier,
        ];
        for e in events {
            let line = format_event(&e);
            assert_eq!(parse_event(&line).unwrap(), Some(e), "{line}");
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        assert_eq!(parse_event("").unwrap(), None);
        assert_eq!(parse_event("   ").unwrap(), None);
        assert_eq!(parse_event("# hello").unwrap(), None);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse_event("A 1").is_err());
        assert!(parse_event("A 1 2 X").is_err());
        assert!(parse_event("Z 9").is_err());
        assert!(parse_event("M x 4096").is_err());
    }

    #[test]
    fn record_replay_is_identity() {
        let make = || {
            Initialized::new(Gups::new(GupsParams {
                table_bytes: 256 << 10,
                updates: 50,
                seed: 9,
            }))
        };
        let reference = collect(make());
        let mut buf = Vec::new();
        let recorder = Recorder::new(make(), &mut buf);
        let recorded = collect(recorder);
        assert_eq!(recorded, reference);
        let replayed = collect(replay(&buf[..], WorkloadProfile::named("gups")).unwrap());
        assert_eq!(replayed, reference);
    }

    #[test]
    fn recorder_counts_and_finishes() {
        let mut buf = Vec::new();
        let mut rec = Recorder::new(
            Gups::new(GupsParams {
                table_bytes: 8 << 10,
                updates: 3,
                seed: 1,
            }),
            &mut buf,
        );
        while rec.next_event().is_some() {}
        assert_eq!(rec.events_recorded(), 4); // 1 mmap + 3 updates
        let (_inner, _out) = rec.finish().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 4);
    }

    #[test]
    fn replay_drives_a_simulation_identically() {
        use tps_core::rng::Rng;
        // Record a small random workload, then replay it: the event
        // streams must match event for event.
        let mut rng = Rng::new(4);
        let mut lines = vec!["# synthetic trace".to_string(), "M 0 65536".into()];
        for _ in 0..100 {
            lines.push(format!(
                "A 0 {} {}",
                rng.below(65536),
                if rng.chance(0.5) { "W" } else { "R" }
            ));
        }
        let text = lines.join("\n");
        let events = collect(replay(text.as_bytes(), WorkloadProfile::named("trace")).unwrap());
        assert_eq!(events.len(), 101);
        assert!(matches!(
            events[0],
            Event::Mmap {
                region: 0,
                bytes: 65536
            }
        ));
    }
}
