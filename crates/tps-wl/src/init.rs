//! Initialization-sweep wrapper.
//!
//! Real applications fault their data structures in during startup (file
//! loading, `calloc` zeroing, table initialization) before entering the
//! measured access pattern. [`Initialized`] reproduces that: after the
//! inner workload's leading `Mmap` events, it emits one write per 4 KB page
//! of every mapped region, then resumes the inner stream. This is what
//! lets reservation-based policies (THP and TPS alike) finish their page
//! promotions early, as they do for the paper's start-to-finish traces.

use crate::event::{Event, Workload, WorkloadProfile};
use tps_core::BASE_PAGE_SHIFT;

/// Wraps a workload with a page-granular initialization sweep.
#[derive(Clone, Debug)]
pub struct Initialized<W> {
    inner: W,
    /// Regions gathered from the leading mmap events: (region, bytes).
    regions: Vec<(u32, u64)>,
    /// The first non-mmap event, held back until the sweep finishes.
    deferred: Option<Event>,
    phase: Phase,
    cursor_region: usize,
    cursor_page: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Mmaps,
    Sweep,
    Compute,
    Barrier,
    Run,
}

impl<W: Workload> Initialized<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Initialized {
            inner,
            regions: Vec::new(),
            deferred: None,
            phase: Phase::Mmaps,
            cursor_region: 0,
            cursor_page: 0,
        }
    }

    /// Consumes the wrapper, returning the inner workload.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Workload> Workload for Initialized<W> {
    fn profile(&self) -> WorkloadProfile {
        self.inner.profile()
    }

    fn next_event(&mut self) -> Option<Event> {
        loop {
            match self.phase {
                Phase::Mmaps => match self.inner.next_event() {
                    Some(e @ Event::Mmap { region, bytes }) => {
                        let _ = (region, bytes);
                        if let Event::Mmap { region, bytes } = e {
                            self.regions.push((region, bytes));
                        }
                        return Some(e);
                    }
                    other => {
                        self.deferred = other;
                        self.phase = Phase::Sweep;
                    }
                },
                Phase::Sweep => {
                    while self.cursor_region < self.regions.len() {
                        let (region, bytes) = self.regions[self.cursor_region];
                        let pages = bytes.div_ceil(1 << BASE_PAGE_SHIFT);
                        if self.cursor_page < pages {
                            let offset = self.cursor_page << BASE_PAGE_SHIFT;
                            self.cursor_page += 1;
                            return Some(Event::Access {
                                region,
                                offset,
                                write: true,
                            });
                        }
                        self.cursor_region += 1;
                        self.cursor_page = 0;
                    }
                    self.phase = Phase::Compute;
                }
                Phase::Compute => {
                    // Real initialization executes far more than one
                    // instruction per page (zeroing, parsing, building):
                    // account ~1k instructions per initialized page so
                    // full-run instruction counts stay realistic.
                    self.phase = Phase::Barrier;
                    let pages: u64 = self
                        .regions
                        .iter()
                        .map(|(_, b)| b.div_ceil(1 << BASE_PAGE_SHIFT))
                        .sum();
                    return Some(Event::Compute {
                        insts: pages * 1024,
                    });
                }
                Phase::Barrier => {
                    self.phase = Phase::Run;
                    return Some(Event::StatsBarrier);
                }
                Phase::Run => {
                    if let Some(e) = self.deferred.take() {
                        return Some(e);
                    }
                    return self.inner.next_event();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gups::{Gups, GupsParams};
    use tps_core::BASE_PAGE_SIZE;

    #[test]
    fn sweep_touches_every_page_before_run() {
        let inner = Gups::new(GupsParams {
            table_bytes: 64 << 10, // 16 pages
            updates: 5,
            seed: 1,
        });
        let mut w = Initialized::new(inner);
        assert!(matches!(w.next_event(), Some(Event::Mmap { .. })));
        // 16 init writes at page stride.
        for i in 0..16u64 {
            match w.next_event() {
                Some(Event::Access {
                    offset,
                    write: true,
                    ..
                }) => {
                    assert_eq!(offset, i * BASE_PAGE_SIZE)
                }
                other => panic!("expected init write, got {other:?}"),
            }
        }
        // Then the init-work accounting, the ROI barrier, and the 5 updates.
        assert!(matches!(w.next_event(), Some(Event::Compute { insts }) if insts == 16 * 1024));
        assert!(matches!(w.next_event(), Some(Event::StatsBarrier)));
        let rest: Vec<_> = std::iter::from_fn(|| w.next_event()).collect();
        assert_eq!(rest.len(), 5);
    }

    #[test]
    fn profile_passes_through() {
        let w = Initialized::new(Gups::new(GupsParams::default()));
        assert_eq!(w.profile().name, "gups");
    }
}
