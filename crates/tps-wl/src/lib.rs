//! Deterministic workload generators for the TPS reproduction.
//!
//! Replaces the paper's PIN-traced SPEC CPU2017 + big-data binaries with
//! seeded kernels that reproduce each benchmark's address-stream character
//! (see DESIGN.md §2):
//!
//! * [`Gups`] — random read-modify-write over a giant table.
//! * [`Graph500`] — real R-MAT graph construction + BFS replay.
//! * [`XsBench`] — unionized-energy-grid binary search + nuclide gathers.
//! * [`Dbx1000`] — Zipf-skewed OLTP with hash index and log.
//! * [`Spec17Kernel`] — locality-class kernels for the SPEC17 benchmarks.
//! * [`Initialized`] — the startup page-touch sweep real applications do.
//! * [`trace`] — record any workload to a text trace and replay traces
//!   (including ones converted from real PIN/DynamoRIO tools).
//! * [`build`]/[`suite_names`] — the paper's benchmark sets at three scales.
//!
//! All generators are deterministic: same parameters, same event stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dbx1000;
mod event;
mod graph500;
mod gups;
mod init;
mod spec17;
mod suite;
pub mod trace;
mod xsbench;
pub mod zipf;

pub use dbx1000::{Dbx1000, Dbx1000Params};
pub use event::{Event, Workload, WorkloadProfile};
pub use graph500::{Graph500, Graph500Params};
pub use gups::{Gups, GupsParams};
pub use init::Initialized;
pub use spec17::{Spec17Kernel, SpecBench};
pub use suite::{
    build, build_seeded, build_tenants_seeded, default_suite_seed, profiling_names, suite_names,
    tenant_seeds, SuiteScale,
};
pub use trace::{format_event, parse_event, replay, Recorder, TraceReplay};
pub use xsbench::{XsBench, XsBenchParams};
