//! DBx1000: a YCSB-style main-memory OLTP kernel.
//!
//! Transactions pick Zipf-skewed keys, probe a hash index (random bucket),
//! read/update the tuple, and append to a log. The hot-key skew gives some
//! reuse, but the index and tuple heaps are large enough that the TLB tail
//! is long (paper Figs. 8/10).

use crate::event::{Event, Workload, WorkloadProfile};
use crate::zipf::{CyclePermutation, Zipf};
use std::collections::VecDeque;
use tps_core::rng::Rng;

/// DBx1000 parameters.
#[derive(Copy, Clone, Debug)]
pub struct Dbx1000Params {
    /// Number of rows in the table (rounded up to a power of two).
    pub rows: u64,
    /// Bytes per row.
    pub row_bytes: u64,
    /// Transactions to execute.
    pub txns: u64,
    /// Operations (reads/updates) per transaction.
    pub ops_per_txn: u32,
    /// Fraction of operations that are updates.
    pub update_fraction: f64,
    /// Zipf skew of key popularity.
    pub zipf_theta: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Dbx1000Params {
    fn default() -> Self {
        Dbx1000Params {
            rows: 4 << 20,
            row_bytes: 128,
            txns: 150_000,
            ops_per_txn: 10,
            update_fraction: 0.5,
            zipf_theta: 0.8,
            seed: 0xdb10,
        }
    }
}

const R_INDEX: u32 = 0; // hash index: rows * 16 bytes
const R_TUPLES: u32 = 1; // row storage: rows * row_bytes
const R_LOG: u32 = 2; // append-only log

/// Size of the circular log region.
const LOG_BYTES: u64 = 64 << 20;

/// The DBx1000 generator.
#[derive(Clone, Debug)]
pub struct Dbx1000 {
    params: Dbx1000Params,
    zipf: Zipf,
    scramble: CyclePermutation,
    rng: Rng,
    pending: VecDeque<Event>,
    done: u64,
    log_tail: u64,
    setup_done: bool,
}

impl Dbx1000 {
    /// Creates a DBx1000 run.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `txns` is zero.
    pub fn new(params: Dbx1000Params) -> Self {
        assert!(params.rows > 1, "need rows");
        assert!(params.txns > 0, "need transactions");
        let rows_pow2 = params.rows.next_power_of_two();
        Dbx1000 {
            zipf: Zipf::new(params.rows, params.zipf_theta),
            scramble: CyclePermutation::new(rows_pow2.trailing_zeros(), params.seed ^ 0xa5),
            rng: Rng::new(params.seed),
            params,
            pending: VecDeque::new(),
            done: 0,
            log_tail: 0,
            setup_done: false,
        }
    }

    fn queue_txn(&mut self) {
        let p = self.params;
        for _ in 0..p.ops_per_txn {
            // Zipf rank -> scrambled key so hot rows scatter over the heap.
            let rank = self.zipf.sample(&mut self.rng);
            let key = self.scramble.next(rank) % p.rows;
            let write = self.rng.chance(p.update_fraction);
            // Hash-index probe: bucket array is key-hashed (random page).
            let bucket = (key.wrapping_mul(0x9e3779b97f4a7c15) >> 16) % p.rows;
            self.pending.push_back(Event::Access {
                region: R_INDEX,
                offset: bucket * 16,
                write: false,
            });
            // Tuple access.
            self.pending.push_back(Event::Access {
                region: R_TUPLES,
                offset: key * p.row_bytes,
                write,
            });
            if write {
                // Log append (sequential, wraps).
                self.pending.push_back(Event::Access {
                    region: R_LOG,
                    offset: self.log_tail % LOG_BYTES,
                    write: true,
                });
                self.log_tail += 64;
            }
        }
    }
}

impl Workload for Dbx1000 {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "dbx1000".into(),
            base_cpi: 0.8,
            insts_per_access: 16.0,
            l1_miss_criticality: 0.25,
            walk_savable: 0.65,
            smt_slowdown: 1.4,
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        if !self.setup_done {
            self.setup_done = true;
            let p = self.params;
            self.pending.extend([
                Event::Mmap {
                    region: R_INDEX,
                    bytes: p.rows * 16,
                },
                Event::Mmap {
                    region: R_TUPLES,
                    bytes: p.rows * p.row_bytes,
                },
                Event::Mmap {
                    region: R_LOG,
                    bytes: LOG_BYTES,
                },
            ]);
        }
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(e);
            }
            if self.done >= self.params.txns {
                return None;
            }
            self.done += 1;
            self.queue_txn();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dbx1000Params {
        Dbx1000Params {
            rows: 10_000,
            row_bytes: 128,
            txns: 200,
            ops_per_txn: 10,
            update_fraction: 0.5,
            zipf_theta: 0.8,
            seed: 17,
        }
    }

    #[test]
    fn stream_shape_and_bounds() {
        let p = small();
        let mut d = Dbx1000::new(p);
        for _ in 0..3 {
            assert!(matches!(d.next_event(), Some(Event::Mmap { .. })));
        }
        let mut reads = 0u64;
        let mut writes = 0u64;
        while let Some(e) = d.next_event() {
            if let Event::Access {
                region,
                offset,
                write,
            } = e
            {
                let limit = match region {
                    R_INDEX => p.rows * 16,
                    R_TUPLES => p.rows * p.row_bytes,
                    R_LOG => LOG_BYTES,
                    _ => panic!("unknown region"),
                };
                assert!(offset < limit);
                if write {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        assert!(reads > 0 && writes > 0);
        // 2 accesses per op + 1 log write per update.
        assert!(reads + writes >= 200 * 10 * 2);
    }

    #[test]
    fn skew_produces_hot_rows() {
        let mut d = Dbx1000::new(small());
        let mut tuple_pages = std::collections::HashMap::new();
        while let Some(e) = d.next_event() {
            if let Event::Access {
                region: R_TUPLES,
                offset,
                ..
            } = e
            {
                *tuple_pages.entry(offset >> 12).or_insert(0u64) += 1;
            }
        }
        let max = tuple_pages.values().max().copied().unwrap_or(0);
        let mean = tuple_pages.values().sum::<u64>() as f64 / tuple_pages.len() as f64;
        assert!(max as f64 > 3.0 * mean, "hot page {max} vs mean {mean}");
    }

    #[test]
    fn log_appends_are_sequential() {
        let mut d = Dbx1000::new(small());
        let mut prev = None;
        while let Some(e) = d.next_event() {
            if let Event::Access {
                region: R_LOG,
                offset,
                ..
            } = e
            {
                if let Some(p) = prev {
                    let delta = (offset as i64 - p as i64).rem_euclid(LOG_BYTES as i64);
                    assert_eq!(delta, 64, "log stride");
                }
                prev = Some(offset);
            }
        }
        assert!(prev.is_some());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut d = Dbx1000::new(small());
            let mut sum = 0u64;
            while let Some(e) = d.next_event() {
                if let Event::Access { offset, .. } = e {
                    sum = sum.wrapping_mul(31).wrapping_add(offset);
                }
            }
            sum
        };
        assert_eq!(run(), run());
    }
}
