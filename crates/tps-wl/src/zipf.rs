//! Zipfian sampling (YCSB-style) and full-cycle index permutations.

use tps_core::rng::Rng;

/// Zipf-distributed sampler over `[0, n)` with skew `theta` (YCSB's
/// `ScrambledZipfian` construction, minus the scrambling — callers that
/// want scattered hot keys compose with [`CyclePermutation`]).
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` items with skew `theta` (0 < theta < 1;
    /// YCSB default 0.99; larger = more skew).
    ///
    /// Construction is O(n) (zeta sum) — build once, sample many.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation tail for large n
        // keeps construction cheap at the billions scale.
        const DIRECT: u64 = 1_000_000;
        let direct_n = n.min(DIRECT);
        let mut sum = 0.0;
        for i in 1..=direct_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > DIRECT {
            // ∫ x^-theta dx from DIRECT to n.
            let a = 1.0 - theta;
            sum += ((n as f64).powf(a) - (DIRECT as f64).powf(a)) / a;
        }
        sum
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Samples an item index (0 is the hottest).
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.n - 1)
    }
}

/// A full-cycle affine permutation of `[0, 2^k)`: `x -> a*x + c mod 2^k`
/// with `a ≡ 1 (mod 4)` and odd `c` visits every element exactly once.
///
/// Used two ways: as a *scrambler* (spread zipf-hot indices across a
/// region) and as a deterministic pointer-chase successor function (mcf).
#[derive(Copy, Clone, Debug)]
pub struct CyclePermutation {
    mask: u64,
    a: u64,
    c: u64,
}

impl CyclePermutation {
    /// Builds a permutation over `[0, 2^k)`, parameterized by a seed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds 62.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!((1..=62).contains(&k), "k must be in 1..=62");
        let mut sm = tps_core::rng::SplitMix64::new(seed);
        // a ≡ 1 mod 4 guarantees a full cycle together with odd c
        // (Hull–Dobell theorem for modulus 2^k).
        let a = (sm.next_u64() & !3) | 1 | 4;
        let c = sm.next_u64() | 1;
        CyclePermutation {
            mask: (1u64 << k) - 1,
            a: a & ((1u64 << k) - 1) | 5,
            c: c & ((1u64 << k) - 1) | 1,
        }
    }

    /// The successor of `x` in the cycle.
    #[inline]
    pub fn next(&self, x: u64) -> u64 {
        (x.wrapping_mul(self.a).wrapping_add(self.c)) & self.mask
    }

    /// The cycle length (`2^k`).
    pub fn len(&self) -> u64 {
        self.mask + 1
    }

    /// Always false; permutations cover at least two elements.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_respects_bounds() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = Rng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(10_000, 0.99);
        let mut rng = Rng::new(2);
        let mut head = 0u64;
        const SAMPLES: u64 = 20_000;
        for _ in 0..SAMPLES {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 1% of keys should draw far more than 1% of accesses.
        assert!(
            head as f64 / SAMPLES as f64 > 0.3,
            "head fraction {}",
            head as f64 / SAMPLES as f64
        );
    }

    #[test]
    fn zipf_mild_theta_less_skewed_than_high_theta() {
        let mut rng = Rng::new(3);
        let count_head = |theta: f64, rng: &mut Rng| {
            let z = Zipf::new(10_000, theta);
            (0..10_000).filter(|_| z.sample(rng) < 10).count()
        };
        let mild = count_head(0.5, &mut rng);
        let hot = count_head(0.99, &mut rng);
        assert!(hot > mild, "hot {hot} vs mild {mild}");
    }

    #[test]
    fn zipf_large_n_constructs_quickly_and_samples() {
        let z = Zipf::new(1 << 28, 0.9); // 268M keys: uses the integral tail
        let mut rng = Rng::new(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 1 << 28);
        }
    }

    #[test]
    fn permutation_is_full_cycle() {
        for seed in 0..4 {
            let p = CyclePermutation::new(10, seed);
            let mut seen = vec![false; 1024];
            let mut x = 0u64;
            for _ in 0..1024 {
                assert!(!seen[x as usize], "revisited {x} (seed {seed})");
                seen[x as usize] = true;
                x = p.next(x);
            }
            assert_eq!(x, 0, "cycle returns to start");
        }
    }

    #[test]
    fn permutation_jumps_are_not_local() {
        let p = CyclePermutation::new(20, 7);
        let mut x = 0u64;
        let mut long_jumps = 0;
        for _ in 0..1000 {
            let nxt = p.next(x);
            if nxt.abs_diff(x) > 1 << 10 {
                long_jumps += 1;
            }
            x = nxt;
        }
        assert!(
            long_jumps > 900,
            "pointer chase must be non-local: {long_jumps}"
        );
    }
}
