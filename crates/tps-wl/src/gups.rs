//! GUPS (Giga-Updates Per Second): random read-modify-write updates over
//! one huge table — the adversarial TLB workload of the paper (no spatial
//! locality whatsoever; only very large pages help).

use crate::event::{Event, Workload, WorkloadProfile};
use tps_core::rng::Rng;
use tps_core::GIB;

/// GUPS parameters.
#[derive(Copy, Clone, Debug)]
pub struct GupsParams {
    /// Size of the update table in bytes.
    pub table_bytes: u64,
    /// Number of read-modify-write updates.
    pub updates: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GupsParams {
    fn default() -> Self {
        GupsParams {
            table_bytes: GIB,
            updates: 2_000_000,
            seed: 0x6075,
        }
    }
}

/// The GUPS generator.
///
/// # Example
///
/// ```
/// use tps_wl::{Event, Gups, GupsParams, Workload};
/// let mut g = Gups::new(GupsParams { table_bytes: 1 << 20, updates: 4, seed: 1 });
/// assert!(matches!(g.next_event(), Some(Event::Mmap { .. })));
/// assert!(matches!(g.next_event(), Some(Event::Access { write: true, .. })));
/// ```
#[derive(Clone, Debug)]
pub struct Gups {
    params: GupsParams,
    rng: Rng,
    emitted_mmap: bool,
    done: u64,
}

impl Gups {
    /// Creates a GUPS run.
    ///
    /// # Panics
    ///
    /// Panics if the table is smaller than one word or `updates` is zero.
    pub fn new(params: GupsParams) -> Self {
        assert!(params.table_bytes >= 8, "table must hold at least one word");
        assert!(params.updates > 0, "need at least one update");
        Gups {
            rng: Rng::new(params.seed),
            params,
            emitted_mmap: false,
            done: 0,
        }
    }
}

impl Workload for Gups {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "gups".into(),
            base_cpi: 0.55,
            insts_per_access: 10.0,
            // Updates are mutually independent: the out-of-order window
            // overlaps almost all of each miss (high MLP).
            l1_miss_criticality: 0.15,
            walk_savable: 0.85,
            smt_slowdown: 1.25,
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        if !self.emitted_mmap {
            self.emitted_mmap = true;
            return Some(Event::Mmap {
                region: 0,
                bytes: self.params.table_bytes,
            });
        }
        if self.done >= self.params.updates {
            return None;
        }
        self.done += 1;
        let word = self.rng.below(self.params.table_bytes / 8);
        Some(Event::Access {
            region: 0,
            offset: word * 8,
            write: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_stream_shape() {
        let mut g = Gups::new(GupsParams {
            table_bytes: 1 << 20,
            updates: 100,
            seed: 3,
        });
        assert!(
            matches!(g.next_event(), Some(Event::Mmap { region: 0, bytes }) if bytes == 1 << 20)
        );
        let mut count = 0;
        while let Some(e) = g.next_event() {
            match e {
                Event::Access {
                    region: 0,
                    offset,
                    write: true,
                } => {
                    assert!(offset < 1 << 20);
                    assert_eq!(offset % 8, 0);
                }
                other => panic!("unexpected event {other:?}"),
            }
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn deterministic() {
        let collect = || {
            let mut g = Gups::new(GupsParams {
                table_bytes: 1 << 20,
                updates: 50,
                seed: 9,
            });
            std::iter::from_fn(move || g.next_event()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn accesses_spread_across_whole_table() {
        let mut g = Gups::new(GupsParams {
            table_bytes: 64 << 20,
            updates: 10_000,
            seed: 5,
        });
        g.next_event();
        let mut pages = std::collections::HashSet::new();
        while let Some(Event::Access { offset, .. }) = g.next_event() {
            pages.insert(offset >> 12);
        }
        // 10k random accesses over 16k pages: expect to touch thousands.
        assert!(pages.len() > 4000, "touched {} pages", pages.len());
    }
}
