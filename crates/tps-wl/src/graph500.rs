//! Graph500: Kronecker (R-MAT) graph generation plus BFS traversal.
//!
//! The generator builds a real CSR graph in host memory (deterministically,
//! from the seed) and replays the memory accesses a level-synchronous BFS
//! performs over it: frontier pops, offset-array reads, adjacency scans and
//! visited-bitmap updates. Adjacency scans have run-length locality; vertex
//! lookups are effectively random — the mix that makes Graph500 respond
//! well to TPS but only partially to CoLT (paper Figs. 10/16).

use crate::event::{Event, Workload, WorkloadProfile};
use std::collections::VecDeque;
use tps_core::rng::Rng;

/// Graph500 parameters.
#[derive(Copy, Clone, Debug)]
pub struct Graph500Params {
    /// log2 of the vertex count (Graph500 "scale").
    pub scale: u32,
    /// Average directed edges per vertex.
    pub edge_factor: u32,
    /// Number of BFS roots to traverse from.
    pub bfs_roots: u32,
    /// Cap on emitted access events (0 = unlimited).
    pub max_accesses: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for Graph500Params {
    fn default() -> Self {
        Graph500Params {
            scale: 19,
            edge_factor: 8,
            bfs_roots: 4,
            max_accesses: 4_000_000,
            seed: 0x6500,
        }
    }
}

/// Region ids used by the generator.
const R_XADJ: u32 = 0; // CSR offsets: (n+1) * 8 bytes
const R_ADJ: u32 = 1; // CSR adjacency: m * 8 bytes
const R_VISITED: u32 = 2; // parent + distance arrays: n * 16 bytes
const R_QUEUE: u32 = 3; // frontier queue: n * 8 bytes

/// The Graph500 generator.
#[derive(Clone, Debug)]
pub struct Graph500 {
    params: Graph500Params,
    xadj: Vec<u64>,
    adj: Vec<u64>,
    /// Pending events to drain before stepping the BFS.
    pending: VecDeque<Event>,
    /// BFS state.
    visited: Vec<bool>,
    queue: VecDeque<u64>,
    queue_emitted: u64,
    roots_left: u32,
    rng: Rng,
    emitted: u64,
    setup_done: bool,
}

impl Graph500 {
    /// Builds the graph and prepares the BFS replay.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or larger than 26 (host-memory guard).
    pub fn new(params: Graph500Params) -> Self {
        assert!((1..=26).contains(&params.scale), "scale out of range");
        let n = 1u64 << params.scale;
        let m = n * params.edge_factor as u64;
        let mut rng = Rng::new(params.seed);
        // R-MAT edge generation (A=0.57, B=0.19, C=0.19, D=0.05).
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let (mut u, mut v) = (0u64, 0u64);
            for _ in 0..params.scale {
                let r = rng.next_f64();
                let (bu, bv) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | bu;
                v = (v << 1) | bv;
            }
            edges.push((u as u32, v as u32));
        }
        // CSR construction.
        let mut degree = vec![0u64; n as usize];
        for &(u, _) in &edges {
            degree[u as usize] += 1;
        }
        let mut xadj = vec![0u64; n as usize + 1];
        for i in 0..n as usize {
            xadj[i + 1] = xadj[i] + degree[i];
        }
        let mut cursor = xadj.clone();
        let mut adj = vec![0u64; m as usize];
        for &(u, v) in &edges {
            adj[cursor[u as usize] as usize] = v as u64;
            cursor[u as usize] += 1;
        }
        Graph500 {
            params,
            xadj,
            adj,
            pending: VecDeque::new(),
            visited: vec![false; n as usize],
            queue: VecDeque::new(),
            queue_emitted: 0,
            roots_left: params.bfs_roots,
            rng,
            emitted: 0,
            setup_done: false,
        }
    }

    fn n(&self) -> u64 {
        1u64 << self.params.scale
    }

    fn start_next_root(&mut self) -> bool {
        while self.roots_left > 0 {
            self.roots_left -= 1;
            // Graph500 samples search keys among vertices with degree >= 1,
            // so retry the draw (bounded, to stay total when every such
            // vertex is already visited) instead of dropping the root.
            for _ in 0..4 * self.n() {
                let root = self.rng.below(self.n());
                if !self.visited[root as usize]
                    && self.xadj[root as usize] != self.xadj[root as usize + 1]
                {
                    self.visited[root as usize] = true;
                    self.queue.push_back(root);
                    return true;
                }
            }
        }
        false
    }

    /// Runs one BFS vertex expansion, queueing its memory accesses.
    fn step(&mut self) -> bool {
        let u = loop {
            match self.queue.pop_front() {
                Some(u) => break u,
                None => {
                    if !self.start_next_root() {
                        return false;
                    }
                }
            }
        };
        // Pop from the frontier queue (sequential).
        self.pending.push_back(Event::Access {
            region: R_QUEUE,
            offset: (self.queue_emitted % self.n()) * 8,
            write: false,
        });
        self.queue_emitted += 1;
        // Read xadj[u] and xadj[u+1] (adjacent words: one page).
        self.pending.push_back(Event::Access {
            region: R_XADJ,
            offset: u * 8,
            write: false,
        });
        let (start, end) = (self.xadj[u as usize], self.xadj[u as usize + 1]);
        // Scan the adjacency run at cache-line granularity.
        let mut line = u64::MAX;
        for e in start..end {
            let l = (e * 8) / 64;
            if l != line {
                line = l;
                self.pending.push_back(Event::Access {
                    region: R_ADJ,
                    offset: e * 8,
                    write: false,
                });
            }
            let v = self.adj[e as usize];
            // Visited check: a random-vertex lookup (16 B of metadata:
            // parent + distance).
            self.pending.push_back(Event::Access {
                region: R_VISITED,
                offset: v * 16,
                write: false,
            });
            if !self.visited[v as usize] {
                self.visited[v as usize] = true;
                self.queue.push_back(v);
                // Parent write.
                self.pending.push_back(Event::Access {
                    region: R_VISITED,
                    offset: v * 16,
                    write: true,
                });
            }
        }
        true
    }
}

impl Workload for Graph500 {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "graph500".into(),
            base_cpi: 0.7,
            insts_per_access: 8.0,
            l1_miss_criticality: 0.3,
            walk_savable: 0.75,
            smt_slowdown: 1.3,
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        if !self.setup_done {
            self.setup_done = true;
            let n = self.n();
            let m = self.adj.len() as u64;
            self.pending.extend([
                Event::Mmap {
                    region: R_XADJ,
                    bytes: (n + 1) * 8,
                },
                Event::Mmap {
                    region: R_ADJ,
                    bytes: m.max(1) * 8,
                },
                Event::Mmap {
                    region: R_VISITED,
                    bytes: n * 16,
                },
                Event::Mmap {
                    region: R_QUEUE,
                    bytes: n * 8,
                },
            ]);
        }
        loop {
            if let Some(e) = self.pending.pop_front() {
                if matches!(e, Event::Access { .. }) {
                    if self.params.max_accesses != 0 && self.emitted >= self.params.max_accesses {
                        return None;
                    }
                    self.emitted += 1;
                }
                return Some(e);
            }
            if !self.step() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph500Params {
        Graph500Params {
            scale: 10,
            edge_factor: 8,
            bfs_roots: 4,
            max_accesses: 0,
            seed: 42,
        }
    }

    #[test]
    fn emits_mmaps_then_accesses() {
        let mut g = Graph500::new(small());
        for expected in [R_XADJ, R_ADJ, R_VISITED, R_QUEUE] {
            match g.next_event() {
                Some(Event::Mmap { region, bytes }) => {
                    assert_eq!(region, expected);
                    assert!(bytes > 0);
                }
                other => panic!("expected mmap, got {other:?}"),
            }
        }
        assert!(matches!(g.next_event(), Some(Event::Access { .. })));
    }

    #[test]
    fn accesses_stay_in_bounds() {
        let mut g = Graph500::new(small());
        let n = 1u64 << 10;
        let m = g.adj.len() as u64;
        let mut count = 0u64;
        while let Some(e) = g.next_event() {
            if let Event::Access { region, offset, .. } = e {
                let limit = match region {
                    R_XADJ => (n + 1) * 8,
                    R_ADJ => m * 8,
                    R_VISITED => n * 16,
                    R_QUEUE => n * 8,
                    _ => panic!("unknown region"),
                };
                assert!(offset < limit, "region {region} offset {offset}");
                count += 1;
            }
        }
        // BFS from 4 roots over a 1K-vertex graph visits plenty.
        assert!(count > 1000, "only {count} accesses");
    }

    #[test]
    fn bfs_visits_most_of_the_giant_component() {
        let mut g = Graph500::new(small());
        while g.next_event().is_some() {}
        let visited = g.visited.iter().filter(|&&v| v).count();
        // R-MAT graphs have a giant component holding most non-isolated
        // vertices.
        assert!(visited > 300, "visited {visited}");
    }

    #[test]
    fn max_accesses_caps_the_run() {
        let mut p = small();
        p.max_accesses = 500;
        let mut g = Graph500::new(p);
        let mut count = 0;
        while let Some(e) = g.next_event() {
            if matches!(e, Event::Access { .. }) {
                count += 1;
            }
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut g = Graph500::new(small());
            let mut sum = 0u64;
            while let Some(Event::Access { offset, .. } | Event::Mmap { bytes: offset, .. }) =
                g.next_event()
            {
                sum = sum.wrapping_mul(31).wrapping_add(offset);
            }
            sum
        };
        assert_eq!(run(), run());
    }
}
