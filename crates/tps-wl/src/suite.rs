//! The paper's benchmark suite at three reproducibility scales.

use crate::dbx1000::{Dbx1000, Dbx1000Params};
use crate::event::Workload;
use crate::graph500::{Graph500, Graph500Params};
use crate::gups::{Gups, GupsParams};
use crate::init::Initialized;
use crate::spec17::{Spec17Kernel, SpecBench};
use crate::xsbench::{XsBench, XsBenchParams};
use tps_core::{TpsError, GIB};

/// How large a suite run should be.
///
/// The paper traces full executions; we provide three deterministic scales
/// trading fidelity for wall-clock time. Relative behavior (who wins and by
/// roughly how much) is stable across scales.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SuiteScale {
    /// Tiny footprints for unit tests (seconds).
    Test,
    /// Mid footprints for iterating on experiments.
    Small,
    /// The default evaluation scale used by the figure harnesses.
    Paper,
}

impl SuiteScale {
    /// Every scale, smallest first (CLI help, round-trip tests).
    pub fn all() -> [SuiteScale; 3] {
        [SuiteScale::Test, SuiteScale::Small, SuiteScale::Paper]
    }

    /// Canonical name as accepted by [`SuiteScale::from_str`] and used in
    /// CLI flags and JSON labels.
    pub fn label(self) -> &'static str {
        match self {
            SuiteScale::Test => "test",
            SuiteScale::Small => "small",
            SuiteScale::Paper => "paper",
        }
    }

    fn spec_shrink(self) -> u32 {
        match self {
            SuiteScale::Test => 6,
            SuiteScale::Small => 1,
            SuiteScale::Paper => 0,
        }
    }

    fn spec_accesses(self) -> u64 {
        match self {
            SuiteScale::Test => 20_000,
            SuiteScale::Small => 800_000,
            SuiteScale::Paper => 2_500_000,
        }
    }

    /// Physical memory a [`SuiteScale`] machine should model.
    pub fn recommended_memory(self) -> u64 {
        match self {
            SuiteScale::Test => 256 << 20,
            SuiteScale::Small => 2 << 30,
            SuiteScale::Paper => 4 << 30,
        }
    }
}

impl std::fmt::Display for SuiteScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SuiteScale {
    type Err = TpsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SuiteScale::all()
            .into_iter()
            .find(|scale| scale.label() == s)
            .ok_or_else(|| {
                TpsError::invalid_spec(format!("unknown scale {s:?} (test, small, paper)"))
            })
    }
}

/// The suite's default seed for one benchmark, as used by [`build`].
pub fn default_suite_seed(name: &str) -> u64 {
    0x7e57_0000 ^ name.len() as u64
}

/// Builds one suite benchmark by name (see [`suite_names`]).
///
/// All workloads are wrapped in the [`Initialized`] sweep, matching the
/// paper's start-to-finish traces.
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn build(name: &str, scale: SuiteScale) -> Box<dyn Workload> {
    build_seeded(name, scale, default_suite_seed(name))
}

/// Per-tenant workload seeds for a multi-tenant machine: a SplitMix64
/// stream over `base`, one draw per tenant in slot order. Deterministic
/// in `(base, count)` alone — never in scheduling — and the seeds are
/// pairwise distinct with overwhelming probability, so co-scheduled
/// tenants of the same benchmark walk different access streams.
pub fn tenant_seeds(base: u64, count: u32) -> Vec<u64> {
    let mut rng = tps_core::rng::SplitMix64::new(base);
    (0..count).map(|_| rng.next_u64()).collect()
}

/// Builds `count` independently seeded copies of one suite benchmark —
/// the per-tenant seeded form of [`build_seeded`], with seeds drawn from
/// [`tenant_seeds`].
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn build_tenants_seeded(
    name: &str,
    scale: SuiteScale,
    base: u64,
    count: u32,
) -> Vec<Box<dyn Workload>> {
    tenant_seeds(base, count)
        .into_iter()
        .map(|seed| build_seeded(name, scale, seed))
        .collect()
}

/// [`build`] with an explicit workload seed, for experiment matrices that
/// pin per-cell seeds. `build(name, scale)` is
/// `build_seeded(name, scale, default_suite_seed(name))`.
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn build_seeded(name: &str, scale: SuiteScale, seed: u64) -> Box<dyn Workload> {
    if let Some(bench) = SpecBench::all().iter().find(|b| b.label() == name) {
        return Box::new(Initialized::new(Spec17Kernel::new(
            *bench,
            scale.spec_accesses(),
            scale.spec_shrink(),
            seed,
        )));
    }
    match name {
        "gups" => {
            let params = match scale {
                SuiteScale::Test => GupsParams {
                    table_bytes: 16 << 20,
                    updates: 20_000,
                    seed,
                },
                SuiteScale::Small => GupsParams {
                    table_bytes: 256 << 20,
                    updates: 800_000,
                    seed,
                },
                SuiteScale::Paper => GupsParams {
                    table_bytes: GIB,
                    updates: 2_500_000,
                    seed,
                },
            };
            Box::new(Initialized::new(Gups::new(params)))
        }
        "graph500" => {
            let params = match scale {
                SuiteScale::Test => Graph500Params {
                    scale: 12,
                    edge_factor: 8,
                    bfs_roots: 2,
                    max_accesses: 20_000,
                    seed,
                },
                SuiteScale::Small => Graph500Params {
                    scale: 22,
                    edge_factor: 6,
                    bfs_roots: 4,
                    max_accesses: 800_000,
                    seed,
                },
                SuiteScale::Paper => Graph500Params {
                    scale: 24,
                    edge_factor: 4,
                    bfs_roots: 6,
                    max_accesses: 2_500_000,
                    seed,
                },
            };
            Box::new(Initialized::new(Graph500::new(params)))
        }
        "xsbench" => {
            let params = match scale {
                SuiteScale::Test => XsBenchParams {
                    grid_points: 1 << 16,
                    nuclides: 16,
                    nuclide_grid_points: 1 << 10,
                    lookups: 1_000,
                    seed,
                },
                SuiteScale::Small => XsBenchParams {
                    grid_points: 1 << 22,
                    nuclides: 68,
                    nuclide_grid_points: 16 << 10,
                    lookups: 30_000,
                    seed,
                },
                SuiteScale::Paper => XsBenchParams {
                    grid_points: 8 << 20,
                    nuclides: 68,
                    nuclide_grid_points: 64 << 10,
                    lookups: 80_000,
                    seed,
                },
            };
            Box::new(Initialized::new(XsBench::new(params)))
        }
        "dbx1000" => {
            let params = match scale {
                SuiteScale::Test => Dbx1000Params {
                    rows: 1 << 16,
                    txns: 1_000,
                    seed,
                    ..Default::default()
                },
                SuiteScale::Small => Dbx1000Params {
                    rows: 1 << 21, // tps-lint::allow(no-magic-page-size, reason = "row count, not a byte size")
                    txns: 40_000,
                    seed,
                    ..Default::default()
                },
                SuiteScale::Paper => Dbx1000Params {
                    rows: 4 << 20,
                    txns: 100_000,
                    seed,
                    ..Default::default()
                },
            };
            Box::new(Initialized::new(Dbx1000::new(params)))
        }
        other => panic!("unknown benchmark {other:?}"),
    }
}

/// Names of the TLB-intensive evaluation suite (paper Figs. 10–18):
/// the MPKI > 5 SPEC17 benchmarks plus the four big-data workloads.
pub fn suite_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = SpecBench::tlb_intensive()
        .iter()
        .map(|b| b.label())
        .collect();
    names.extend(["gups", "graph500", "xsbench", "dbx1000"]);
    names
}

/// Names of the full profiling sweep (paper Fig. 8): every modeled SPEC17
/// benchmark plus the big-data workloads.
pub fn profiling_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = SpecBench::all().iter().map(|b| b.label()).collect();
    names.extend(["gups", "graph500", "xsbench", "dbx1000"]);
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn every_suite_member_builds_and_runs() {
        for name in suite_names() {
            let mut wl = build(name, SuiteScale::Test);
            assert_eq!(wl.name(), name);
            let mut accesses = 0u64;
            let mut mmaps = 0u64;
            for _ in 0..200_000 {
                match wl.next_event() {
                    Some(Event::Access { .. }) => accesses += 1,
                    Some(Event::Mmap { .. }) => mmaps += 1,
                    Some(_) => {}
                    None => break,
                }
            }
            assert!(mmaps > 0, "{name}");
            assert!(accesses > 1000, "{name}: {accesses} accesses");
        }
    }

    #[test]
    fn tenant_seeds_are_pinned_and_distinct() {
        let a = tenant_seeds(0xfeed, 64);
        let b = tenant_seeds(0xfeed, 64);
        assert_eq!(a, b, "seeds depend on (base, count) alone");
        let unique: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        assert_eq!(unique.len(), 64, "tenants draw distinct streams");
        // The first seeds of a shorter draw are a prefix of a longer one,
        // so growing a tenant set never reshuffles existing tenants.
        assert_eq!(tenant_seeds(0xfeed, 8), a[..8].to_vec());
        let builds = build_tenants_seeded("gups", SuiteScale::Test, 0xfeed, 3);
        assert_eq!(builds.len(), 3);
    }

    #[test]
    fn profiling_superset_of_suite() {
        let prof = profiling_names();
        for name in suite_names() {
            assert!(prof.contains(&name), "{name} missing from profiling set");
        }
        assert!(prof.len() > suite_names().len());
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        build("nonesuch", SuiteScale::Test);
    }

    #[test]
    fn scale_labels_round_trip() {
        // Exhaustive over SuiteScale: adding a scale must extend `all()`
        // (asserted by the length check) and keep parse(label) == scale.
        let all = SuiteScale::all();
        assert_eq!(all.len(), 3);
        for scale in all {
            let label = match scale {
                SuiteScale::Test => "test",
                SuiteScale::Small => "small",
                SuiteScale::Paper => "paper",
            };
            assert_eq!(scale.label(), label);
            assert_eq!(scale.to_string(), label);
            assert_eq!(label.parse::<SuiteScale>().unwrap(), scale);
        }
        assert!("huge".parse::<SuiteScale>().is_err());
        assert!(
            "Test".parse::<SuiteScale>().is_err(),
            "labels are lowercase"
        );
    }

    #[test]
    fn build_seeded_controls_the_stream() {
        let drain = |seed: u64| {
            let mut wl = build_seeded("gups", SuiteScale::Test, seed);
            // Skip the seed-independent Initialized sweep: sample the
            // measured region after the ROI barrier.
            while !matches!(wl.next_event(), Some(Event::StatsBarrier) | None) {}
            let mut sig = Vec::new();
            for _ in 0..500 {
                match wl.next_event() {
                    Some(Event::Access { offset, .. }) => sig.push(offset),
                    Some(_) => {}
                    None => break,
                }
            }
            sig
        };
        assert_eq!(drain(1), drain(1), "same seed, same stream");
        assert_ne!(drain(1), drain(2), "different seed, different stream");
        // `build` is exactly `build_seeded` at the default suite seed.
        let mut a = build("gups", SuiteScale::Test);
        let mut b = build_seeded("gups", SuiteScale::Test, default_suite_seed("gups"));
        for _ in 0..200 {
            assert_eq!(
                format!("{:?}", a.next_event()),
                format!("{:?}", b.next_event())
            );
        }
    }

    #[test]
    fn scales_report_memory() {
        assert!(SuiteScale::Test.recommended_memory() < SuiteScale::Small.recommended_memory());
        assert!(SuiteScale::Small.recommended_memory() <= SuiteScale::Paper.recommended_memory());
    }
}
