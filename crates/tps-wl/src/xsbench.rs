//! XSBench: the Monte-Carlo neutron-transport macroscopic-cross-section
//! lookup kernel.
//!
//! Each lookup binary-searches a large unionized energy grid, then gathers
//! per-nuclide cross-section data at grid-directed locations. The binary
//! search hops across gigabytes with exponentially shrinking stride — no
//! useful spatial locality for small pages, but excellent coverage for a
//! few very large tailored pages.

use crate::event::{Event, Workload, WorkloadProfile};
use std::collections::VecDeque;
use tps_core::rng::Rng;

/// XSBench parameters.
#[derive(Copy, Clone, Debug)]
pub struct XsBenchParams {
    /// Entries in the unionized energy grid.
    pub grid_points: u64,
    /// Number of nuclides in the fuel material.
    pub nuclides: u64,
    /// Grid points per nuclide in the per-nuclide tables.
    pub nuclide_grid_points: u64,
    /// Cross-section lookups to perform.
    pub lookups: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for XsBenchParams {
    fn default() -> Self {
        XsBenchParams {
            grid_points: 8 << 20, // 64 MB of u64 energies
            nuclides: 68,
            nuclide_grid_points: 64 << 10,
            lookups: 300_000,
            seed: 0x5bc4,
        }
    }
}

const R_EGRID: u32 = 0; // unionized energy grid: grid_points * 8
const R_INDEX: u32 = 1; // index grid: grid_points * 8 (compressed vs. real XSBench)
const R_NUCLIDE: u32 = 2; // per-nuclide data: nuclides * nuclide_grid_points * 48

/// The XSBench generator.
#[derive(Clone, Debug)]
pub struct XsBench {
    params: XsBenchParams,
    rng: Rng,
    pending: VecDeque<Event>,
    done: u64,
    setup_done: bool,
}

impl XsBench {
    /// Creates an XSBench run.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn new(params: XsBenchParams) -> Self {
        assert!(params.grid_points > 1, "grid must have at least two points");
        assert!(params.nuclides > 0 && params.nuclide_grid_points > 0);
        XsBench {
            rng: Rng::new(params.seed),
            params,
            pending: VecDeque::new(),
            done: 0,
            setup_done: false,
        }
    }

    fn queue_lookup(&mut self) {
        let p = self.params;
        // Binary search over the unionized grid.
        let target = self.rng.below(p.grid_points);
        let (mut lo, mut hi) = (0u64, p.grid_points);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.pending.push_back(Event::Access {
                region: R_EGRID,
                offset: mid * 8,
                write: false,
            });
            if mid < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Read the index-grid entry for the located point.
        self.pending.push_back(Event::Access {
            region: R_INDEX,
            offset: target * 8,
            write: false,
        });
        // Gather cross sections for a sample of nuclides in the material.
        let sampled = 8.min(p.nuclides);
        for _ in 0..sampled {
            let nuclide = self.rng.below(p.nuclides);
            let point =
                (target * p.nuclide_grid_points / p.grid_points).min(p.nuclide_grid_points - 1);
            let offset = (nuclide * p.nuclide_grid_points + point) * 48;
            self.pending.push_back(Event::Access {
                region: R_NUCLIDE,
                offset,
                write: false,
            });
        }
    }
}

impl Workload for XsBench {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile {
            name: "xsbench".into(),
            base_cpi: 0.65,
            insts_per_access: 12.0,
            // The binary-search chain is serial, but independent lookups
            // overlap in the window.
            l1_miss_criticality: 0.35,
            walk_savable: 0.8,
            smt_slowdown: 1.3,
        }
    }

    fn next_event(&mut self) -> Option<Event> {
        if !self.setup_done {
            self.setup_done = true;
            let p = self.params;
            self.pending.extend([
                Event::Mmap {
                    region: R_EGRID,
                    bytes: p.grid_points * 8,
                },
                Event::Mmap {
                    region: R_INDEX,
                    bytes: p.grid_points * 8,
                },
                Event::Mmap {
                    region: R_NUCLIDE,
                    bytes: p.nuclides * p.nuclide_grid_points * 48,
                },
            ]);
        }
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(e);
            }
            if self.done >= self.params.lookups {
                return None;
            }
            self.done += 1;
            self.queue_lookup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> XsBenchParams {
        XsBenchParams {
            grid_points: 1 << 14,
            nuclides: 16,
            nuclide_grid_points: 1 << 10,
            lookups: 100,
            seed: 11,
        }
    }

    #[test]
    fn lookup_emits_log_n_search_accesses() {
        let mut x = XsBench::new(small());
        // Drain mmaps.
        for _ in 0..3 {
            assert!(matches!(x.next_event(), Some(Event::Mmap { .. })));
        }
        let mut egrid_in_first_lookup = 0;
        for _ in 0..14 {
            if let Some(Event::Access {
                region: R_EGRID, ..
            }) = x.next_event()
            {
                egrid_in_first_lookup += 1;
            } else {
                break;
            }
        }
        // A binary search over 2^14 entries performs 14 probes.
        assert_eq!(egrid_in_first_lookup, 14);
    }

    #[test]
    fn offsets_in_bounds() {
        let p = small();
        let mut x = XsBench::new(p);
        let mut n = 0;
        while let Some(e) = x.next_event() {
            if let Event::Access { region, offset, .. } = e {
                let limit = match region {
                    R_EGRID | R_INDEX => p.grid_points * 8,
                    R_NUCLIDE => p.nuclides * p.nuclide_grid_points * 48,
                    _ => panic!("unknown region"),
                };
                assert!(offset < limit);
                n += 1;
            }
        }
        // ~ lookups * (log2(grid) + 1 + 8)
        assert!(n > 100 * 20, "events {n}");
    }

    #[test]
    fn search_strides_shrink_geometrically() {
        let mut x = XsBench::new(small());
        for _ in 0..3 {
            x.next_event();
        }
        let mut offsets = Vec::new();
        while offsets.len() < 5 {
            if let Some(Event::Access {
                region: R_EGRID,
                offset,
                ..
            }) = x.next_event()
            {
                offsets.push(offset as i64);
            }
        }
        let d1 = (offsets[1] - offsets[0]).abs();
        let d2 = (offsets[2] - offsets[1]).abs();
        assert!(d1 > d2, "binary search strides shrink: {offsets:?}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut x = XsBench::new(small());
            let mut sum = 0u64;
            while let Some(e) = x.next_event() {
                if let Event::Access { offset, .. } = e {
                    sum = sum.wrapping_mul(31).wrapping_add(offset);
                }
            }
            sum
        };
        assert_eq!(run(), run());
    }
}
