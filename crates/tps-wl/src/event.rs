//! The workload → machine interface.

/// One event emitted by a workload.
///
/// Workloads address memory by `(region, offset)`; the simulated OS decides
/// where each region lives in the virtual address space. This keeps
/// generators independent of layout and policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Map a region of the given size (an `mmap` call).
    Mmap {
        /// Workload-chosen region identifier (unique while mapped).
        region: u32,
        /// Requested size in bytes.
        bytes: u64,
    },
    /// Unmap a previously mapped region.
    Munmap {
        /// The region to unmap.
        region: u32,
    },
    /// A load or store at `region[offset]`.
    Access {
        /// Target region.
        region: u32,
        /// Byte offset within the region.
        offset: u64,
        /// True for a store.
        write: bool,
    },
    /// Non-memory work: `insts` instructions that execute without memory
    /// references (most generators instead report a static
    /// instructions-per-access ratio in their [`WorkloadProfile`]).
    Compute {
        /// Number of instructions.
        insts: u64,
    },
    /// Region-of-interest marker: separates initialization from the
    /// measured steady state, like the ROI markers of architectural
    /// simulators. The machine snapshots/resets its *measured* counters
    /// here while full-run counters keep accumulating.
    StatsBarrier,
}

/// Per-workload timing-model parameters.
///
/// These replace what the paper measures with ZSim and hardware performance
/// counters; see DESIGN.md §2 for the substitution rationale. All are
/// explicit calibration knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name as it appears in the paper's figures.
    pub name: String,
    /// Ideal cycles per instruction with perfect translation.
    pub base_cpi: f64,
    /// Average non-memory instructions executed per memory access
    /// (used to compute MPKI and total instruction counts).
    pub insts_per_access: f64,
    /// Fraction of an L1-miss/STLB-hit latency the out-of-order window
    /// cannot hide (≈1 for pointer chasing, ≈0 for streaming) — drives
    /// Fig. 3.
    pub l1_miss_criticality: f64,
    /// Fraction of page-walk cycles that convert into lost execution time
    /// (the paper's "savable page walker cycles", Fig. 12).
    pub walk_savable: f64,
    /// Multiplicative slowdown of the ideal execution when sharing the
    /// core with an SMT sibling (non-TLB resource contention, Fig. 14).
    pub smt_slowdown: f64,
}

impl WorkloadProfile {
    /// A neutral profile with the given name (medium criticality).
    pub fn named(name: impl Into<String>) -> Self {
        WorkloadProfile {
            name: name.into(),
            base_cpi: 0.6,
            insts_per_access: 3.0,
            l1_miss_criticality: 0.5,
            walk_savable: 0.6,
            smt_slowdown: 1.35,
        }
    }
}

/// A deterministic memory-access workload.
///
/// Implementations are state machines: [`Workload::next_event`] yields the
/// next event or `None` at end of run. Re-running a freshly constructed
/// workload with the same parameters yields the identical event stream.
pub trait Workload {
    /// The benchmark's timing profile.
    fn profile(&self) -> WorkloadProfile;

    /// Produces the next event, or `None` when the run is complete.
    fn next_event(&mut self) -> Option<Event>;

    /// The benchmark name (defaults to the profile name).
    fn name(&self) -> String {
        self.profile().name
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn profile(&self) -> WorkloadProfile {
        (**self).profile()
    }

    fn next_event(&mut self) -> Option<Event> {
        (**self).next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(u8);
    impl Workload for Two {
        fn profile(&self) -> WorkloadProfile {
            WorkloadProfile::named("two")
        }
        fn next_event(&mut self) -> Option<Event> {
            if self.0 == 0 {
                return None;
            }
            self.0 -= 1;
            Some(Event::Compute { insts: 1 })
        }
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut b: Box<dyn Workload> = Box::new(Two(2));
        assert_eq!(b.name(), "two");
        assert!(b.next_event().is_some());
        assert!(b.next_event().is_some());
        assert!(b.next_event().is_none());
    }

    #[test]
    fn named_profile_defaults_sane() {
        let p = WorkloadProfile::named("x");
        assert!(p.base_cpi > 0.0);
        assert!(p.insts_per_access >= 1.0);
        assert!((0.0..=1.0).contains(&p.l1_miss_criticality));
        assert!((0.0..=1.0).contains(&p.walk_savable));
        assert!(p.smt_slowdown >= 1.0);
    }
}
