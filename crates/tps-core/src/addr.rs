//! Virtual and physical address newtypes.

use std::fmt;
use std::ops::{Add, Sub};

/// Log2 of the base (smallest) page size. 4 KB, as in x86-64.
pub const BASE_PAGE_SHIFT: u32 = 12;
/// The base page size in bytes (4 KB).
pub const BASE_PAGE_SIZE: u64 = 1 << BASE_PAGE_SHIFT;
/// Bytes in a 2 MB page (order 9) — the x86-64 "huge page" TPS subsumes.
pub const PAGE_2M_BYTES: u64 = 1 << (BASE_PAGE_SHIFT + 9);
/// Bytes in a 1 GB page (order 18) — the largest conventional x86-64 size.
pub const PAGE_1G_BYTES: u64 = 1 << (BASE_PAGE_SHIFT + 18);
/// One binary kilobyte.
pub const KIB: u64 = 1 << 10;
/// One binary megabyte.
pub const MIB: u64 = 1 << 20;
/// One binary gigabyte.
pub const GIB: u64 = 1 << 30;
/// Number of meaningful virtual-address bits (x86-64 4-level paging).
pub const VA_BITS: u32 = 48;
/// Number of physical-address bits modeled (the paper's example uses 40).
pub const PA_BITS: u32 = 40;

/// A virtual address in a process address space.
///
/// Only the low [`VA_BITS`] bits are meaningful; constructors mask the rest
/// (we model the canonical lower half of the address space).
///
/// # Example
///
/// ```
/// use tps_core::VirtAddr;
/// let va = VirtAddr::new(0x7f00_1234);
/// assert_eq!(va.align_down(12).value(), 0x7f00_1000);
/// assert_eq!(va.page_offset(12), 0x234);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical address (a location in simulated DRAM).
///
/// Only the low [`PA_BITS`] bits are meaningful.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct PhysAddr(u64);

macro_rules! addr_impl {
    ($t:ident, $bits:expr) => {
        impl $t {
            /// Mask selecting the meaningful address bits.
            pub const MASK: u64 = (1u64 << $bits) - 1;

            /// Creates an address, masking to the modeled width.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw & Self::MASK)
            }

            /// The zero address.
            pub const ZERO: Self = Self(0);

            /// Returns the raw numeric value.
            #[inline]
            pub const fn value(self) -> u64 {
                self.0
            }

            /// Returns the address rounded down to a `1 << shift` boundary.
            #[inline]
            pub const fn align_down(self, shift: u32) -> Self {
                Self(self.0 & !((1u64 << shift) - 1))
            }

            /// Returns the address rounded up to a `1 << shift` boundary.
            ///
            /// Wraps within the modeled address width (masked), which never
            /// occurs for the address ranges the simulator uses.
            #[inline]
            pub const fn align_up(self, shift: u32) -> Self {
                let sz = 1u64 << shift;
                Self((self.0.wrapping_add(sz - 1) & !(sz - 1)) & Self::MASK)
            }

            /// True if the address is aligned to a `1 << shift` boundary.
            #[inline]
            pub const fn is_aligned(self, shift: u32) -> bool {
                self.0 & ((1u64 << shift) - 1) == 0
            }

            /// The offset of this address within its enclosing page of the
            /// given shift (`shift = 12 + order`).
            #[inline]
            pub const fn page_offset(self, shift: u32) -> u64 {
                self.0 & ((1u64 << shift) - 1)
            }

            /// The page frame / page number at the base page granularity.
            #[inline]
            pub const fn base_page_number(self) -> u64 {
                self.0 >> BASE_PAGE_SHIFT
            }

            /// Adds a byte offset, saturating within the modeled width.
            #[inline]
            pub const fn offset(self, bytes: u64) -> Self {
                Self((self.0 + bytes) & Self::MASK)
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $t {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }

        impl From<$t> for u64 {
            fn from(a: $t) -> u64 {
                a.0
            }
        }

        impl Add<u64> for $t {
            type Output = Self;
            fn add(self, rhs: u64) -> Self {
                Self::new(self.0 + rhs)
            }
        }

        impl Sub<$t> for $t {
            type Output = u64;
            fn sub(self, rhs: $t) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

addr_impl!(VirtAddr, VA_BITS);
addr_impl!(PhysAddr, PA_BITS);

impl VirtAddr {
    /// The virtual page number at the base page granularity (synonym for
    /// [`VirtAddr::base_page_number`], named as hardware documentation does).
    #[inline]
    pub const fn vpn(self) -> u64 {
        self.base_page_number()
    }

    /// The 9-bit page-table index for the given level (1 = leaf level,
    /// 4 = root of 4-level paging, 5 = root of 5-level paging; with 48-bit
    /// VAs the level-5 index is always 0, modeling the extra constant
    /// lookup five-level hardware performs).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=5`.
    #[inline]
    pub fn pt_index(self, level: u8) -> usize {
        assert!((1..=5).contains(&level), "page table level out of range");
        let shift = BASE_PAGE_SHIFT + 9 * (level as u32 - 1);
        ((self.0 >> shift) & 0x1ff) as usize
    }
}

impl PhysAddr {
    /// The physical frame number at the base page granularity.
    #[inline]
    pub const fn pfn(self) -> u64 {
        self.base_page_number()
    }

    /// Constructs a physical address from a base-page frame number.
    #[inline]
    pub const fn from_pfn(pfn: u64) -> Self {
        Self::new(pfn << BASE_PAGE_SHIFT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_to_width() {
        assert_eq!(VirtAddr::new(u64::MAX).value(), (1 << VA_BITS) - 1);
        assert_eq!(PhysAddr::new(u64::MAX).value(), (1 << PA_BITS) - 1);
    }

    #[test]
    fn align_round_trip() {
        let a = VirtAddr::new(0x1234_5678);
        assert_eq!(a.align_down(12).value(), 0x1234_5000);
        assert_eq!(a.align_up(12).value(), 0x1234_6000);
        assert!(a.align_down(21).is_aligned(21));
        assert_eq!(a.align_down(12).align_up(12), a.align_down(12));
    }

    #[test]
    fn page_offset_and_vpn() {
        let a = VirtAddr::new(0xdead_beef);
        assert_eq!(a.page_offset(12), 0xeef);
        assert_eq!(a.vpn(), 0xdead_beef >> 12);
        assert_eq!(a.page_offset(15), 0xdead_beef & 0x7fff);
    }

    #[test]
    fn pt_index_decomposition() {
        // VA bits: [47:39]=idx4, [38:30]=idx3, [29:21]=idx2, [20:12]=idx1.
        let va = VirtAddr::new((5u64 << 39) | (6 << 30) | (7 << 21) | (8 << 12) | 0x123);
        assert_eq!(va.pt_index(4), 5);
        assert_eq!(va.pt_index(3), 6);
        assert_eq!(va.pt_index(2), 7);
        assert_eq!(va.pt_index(1), 8);
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn pt_index_rejects_bad_level() {
        VirtAddr::new(0).pt_index(6);
    }

    #[test]
    fn level_five_index_is_zero_for_48_bit_vas() {
        assert_eq!(VirtAddr::new((1 << VA_BITS) - 1).pt_index(5), 0);
    }

    #[test]
    fn pfn_round_trip() {
        let pa = PhysAddr::from_pfn(0x1_2345);
        assert_eq!(pa.pfn(), 0x1_2345);
        assert_eq!(pa.value(), 0x1_2345 << 12);
    }

    #[test]
    fn arithmetic() {
        let a = PhysAddr::new(0x1000);
        let b = a + 0x234;
        assert_eq!(b.value(), 0x1234);
        assert_eq!(b - a, 0x234);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VirtAddr::new(0xabc)), "0xabc");
        assert_eq!(format!("{:?}", PhysAddr::new(0xabc)), "PhysAddr(0xabc)");
    }
}
