//! Deterministic fault-injection hooks (robustness substrate).
//!
//! The OS model's graceful-degradation claims — 4 KB fallback under
//! fragmentation, reservation denial, interrupted compaction, retried TLB
//! shootdowns — are only trustworthy if those paths are actually exercised.
//! This module defines the *vocabulary* for injecting such faults: a
//! [`FaultSite`] enumeration of the places a fault can strike and a
//! [`FaultInjector`] trait the lower layers consult before committing an
//! operation.
//!
//! The hooks are held as `Option<InjectorHandle>` by the structures they
//! instrument (the buddy allocator and the OS model). The
//! default is `None`, which every site checks with a single branch before
//! doing anything else — no injector state, no RNG draw, no behavioral
//! difference. The rich, seeded injector implementation lives in the
//! `tps-check` crate; this crate only defines the interface so that
//! `tps-mem`/`tps-os` need no dependency on the checker.

use std::cell::RefCell;
use std::rc::Rc;

/// A place where a fault can be injected.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A buddy-allocator block allocation (forced [`OutOfMemory`]
    /// (crate::TpsError::OutOfMemory)). Carries the requested order.
    BuddyAlloc {
        /// The order being allocated.
        order: u8,
    },
    /// A whole-span reservation request (forced denial before any block is
    /// taken — the fragmentation fallback path).
    ReserveSpan,
    /// One block-migration step of the compaction daemon; a fault here
    /// interrupts the pass, leaving the remaining blocks unmoved.
    CompactionStep,
    /// Delivery of one TLB-shootdown IPI; a fault models a dropped
    /// interrupt the OS must detect and retry.
    ShootdownDeliver,
}

impl FaultSite {
    /// Short label for stats and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::BuddyAlloc { .. } => "buddy-alloc",
            FaultSite::ReserveSpan => "reserve-span",
            FaultSite::CompactionStep => "compaction-step",
            FaultSite::ShootdownDeliver => "shootdown-deliver",
        }
    }
}

/// Decides whether a fault strikes at a given site.
///
/// Implementations must be deterministic for reproducibility (seeded RNG,
/// scripted schedules). The trait is object-safe: instrumented structures
/// hold `Rc<RefCell<dyn FaultInjector>>` so one plan can be shared across
/// the allocator and the OS and consulted in program order.
pub trait FaultInjector: std::fmt::Debug {
    /// Returns `true` if the operation at `site` should fail.
    ///
    /// Called once per potential fault; implementations typically count
    /// calls per site and draw from a seeded RNG.
    fn should_fault(&mut self, site: FaultSite) -> bool;
}

/// Shared handle to a fault injector.
///
/// `Rc` (not `Arc`): the simulator is single-threaded, and cloning an
/// instrumented structure intentionally shares the injector stream.
pub type InjectorHandle = Rc<RefCell<dyn FaultInjector>>;

/// Consults an optional injector; the `None` fast path is a single branch.
#[inline]
pub fn should_fault(handle: &Option<InjectorHandle>, site: FaultSite) -> bool {
    match handle {
        None => false,
        Some(h) => h.borrow_mut().should_fault(site),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct EveryOther {
        calls: u64,
    }

    impl FaultInjector for EveryOther {
        fn should_fault(&mut self, _site: FaultSite) -> bool {
            self.calls += 1;
            self.calls % 2 == 0
        }
    }

    #[test]
    fn none_never_faults() {
        assert!(!should_fault(&None, FaultSite::ReserveSpan));
    }

    #[test]
    fn handle_is_shared_and_stateful() {
        let h: InjectorHandle = Rc::new(RefCell::new(EveryOther::default()));
        let a = Some(Rc::clone(&h));
        let b = Some(h);
        assert!(!should_fault(&a, FaultSite::ReserveSpan));
        assert!(should_fault(&b, FaultSite::ReserveSpan), "state is shared");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultSite::BuddyAlloc { order: 3 }.label(), "buddy-alloc");
        assert_eq!(FaultSite::ShootdownDeliver.label(), "shootdown-deliver");
    }
}
