//! Deterministic fault-injection hooks (robustness substrate).
//!
//! The OS model's graceful-degradation claims — 4 KB fallback under
//! fragmentation, reservation denial, interrupted compaction, retried TLB
//! shootdowns — are only trustworthy if those paths are actually exercised.
//! The same holds one layer down: the paper's core mechanism (one PTE per
//! arbitrarily sized power-of-two region) lives in the page-table walker,
//! the alias-PTE install paths, and the any-size TLBs, so those structures
//! carry injection hooks too. This module defines the *vocabulary* for
//! injecting such faults — a [`FaultSite`] enumeration of the places a
//! fault can strike and a [`FaultInjector`] trait the lower layers consult
//! before committing an operation — plus [`FaultPlan`], the standard
//! seeded injector implementation shared by the harnesses and the
//! experiment runner.
//!
//! The hooks are held as `Option<InjectorHandle>` by the structures they
//! instrument (the buddy allocator, the OS model, the walker, the MMU
//! caches, and the TLBs). The default is `None`, which every site checks
//! with a single branch before doing anything else — no injector state, no
//! RNG draw, no behavioral difference.

use crate::rng::Rng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A place where a fault can be injected.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A buddy-allocator block allocation (forced [`OutOfMemory`]
    /// (crate::TpsError::OutOfMemory)). Carries the requested order.
    BuddyAlloc {
        /// The order being allocated.
        order: u8,
    },
    /// A whole-span reservation request (forced denial before any block is
    /// taken — the fragmentation fallback path).
    ReserveSpan,
    /// One block-migration step of the compaction daemon; a fault here
    /// interrupts the pass, leaving the remaining blocks unmoved.
    CompactionStep,
    /// Delivery of one TLB-shootdown IPI; a fault models a dropped
    /// interrupt the OS must detect and retry.
    ShootdownDeliver,
    /// One step of a page-table walk; a fault models a transient
    /// translation error and forces the walker to restart the walk from
    /// the root, bypassing the MMU caches. Carries the level being read.
    WalkStep {
        /// The page-table level (1 = leaf level) being stepped through.
        level: u8,
    },
    /// Installation of one alias PTE while mapping a tailored page (both
    /// pointer and full-copy policies); a fault models a dropped store the
    /// page table must detect and retry.
    AliasInstall,
    /// Insertion of a non-leaf entry into the MMU page-structure caches;
    /// a fault drops the fill, so later walks miss and re-reference the
    /// page table — slower, never incorrect.
    MmuCacheFill,
    /// Fill of one entry into an any-size (fully associative) TLB; a fault
    /// drops the fill, degrading hit rate without affecting correctness.
    AnySizeFill,
    /// Eviction from a full any-size TLB; a fault evicts the victim but
    /// abandons the incoming entry, leaving the slot empty.
    AnySizeEvict,
    /// One dual probe of the set-associative STLB; a fault forces the
    /// lookup to miss, falling through to the walk path.
    StlbProbe,
}

impl FaultSite {
    /// Short label for stats and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::BuddyAlloc { .. } => "buddy-alloc",
            FaultSite::ReserveSpan => "reserve-span",
            FaultSite::CompactionStep => "compaction-step",
            FaultSite::ShootdownDeliver => "shootdown-deliver",
            FaultSite::WalkStep { .. } => "walk-step",
            FaultSite::AliasInstall => "alias-install",
            FaultSite::MmuCacheFill => "mmu-cache-fill",
            FaultSite::AnySizeFill => "any-size-fill",
            FaultSite::AnySizeEvict => "any-size-evict",
            FaultSite::StlbProbe => "stlb-probe",
        }
    }
}

/// Decides whether a fault strikes at a given site.
///
/// Implementations must be deterministic for reproducibility (seeded RNG,
/// scripted schedules). The trait is object-safe: instrumented structures
/// hold `Rc<RefCell<dyn FaultInjector>>` so one plan can be shared across
/// the allocator and the OS and consulted in program order.
pub trait FaultInjector: std::fmt::Debug {
    /// Returns `true` if the operation at `site` should fail.
    ///
    /// Called once per potential fault; implementations typically count
    /// calls per site and draw from a seeded RNG.
    fn should_fault(&mut self, site: FaultSite) -> bool;
}

/// Shared handle to a fault injector.
///
/// `Rc` (not `Arc`): the simulator is single-threaded, and cloning an
/// instrumented structure intentionally shares the injector stream.
pub type InjectorHandle = Rc<RefCell<dyn FaultInjector>>;

/// Consults an optional injector; the `None` fast path is a single branch.
#[inline]
pub fn should_fault(handle: &Option<InjectorHandle>, site: FaultSite) -> bool {
    match handle {
        None => false,
        Some(h) => h.borrow_mut().should_fault(site),
    }
}

/// Per-site fault probabilities plus the stream seed.
///
/// A probability of `0.0` disables a site without consuming randomness,
/// so the injected stream depends only on the enabled sites.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultPlanConfig {
    /// Seed for the injector's private random stream.
    pub seed: u64,
    /// Probability that a buddy allocation is forced to fail.
    pub buddy_alloc: f64,
    /// Probability that a whole-span reservation is denied.
    pub reserve_span: f64,
    /// Probability that a compaction pass is interrupted at each block.
    pub compaction_step: f64,
    /// Probability that a TLB shootdown delivery is dropped (and retried).
    pub shootdown_deliver: f64,
    /// Probability that one page-table walk step forces a restart.
    pub walk_step: f64,
    /// Probability that one alias-PTE store is dropped (and retried).
    pub alias_install: f64,
    /// Probability that one MMU page-structure-cache fill is dropped.
    pub mmu_cache_fill: f64,
    /// Probability that one any-size TLB fill is dropped.
    pub any_size_fill: f64,
    /// Probability that one any-size TLB eviction abandons the new entry.
    pub any_size_evict: f64,
    /// Probability that one dual STLB probe is forced to miss.
    pub stlb_probe: f64,
}

impl FaultPlanConfig {
    /// A plan that never faults. Installing it must be behaviorally
    /// indistinguishable from installing no injector at all — the
    /// zero-cost-default property the campaign tests pin down.
    pub fn disabled(seed: u64) -> Self {
        FaultPlanConfig {
            seed,
            buddy_alloc: 0.0,
            reserve_span: 0.0,
            compaction_step: 0.0,
            shootdown_deliver: 0.0,
            walk_step: 0.0,
            alias_install: 0.0,
            mmu_cache_fill: 0.0,
            any_size_fill: 0.0,
            any_size_evict: 0.0,
            stlb_probe: 0.0,
        }
    }

    /// The same probability at every OS-layer site; hardware-model sites
    /// stay disabled. (The original campaign harness predates the
    /// hardware-layer sites and its schedules are pinned to this stream.)
    pub fn uniform(seed: u64, p: f64) -> Self {
        FaultPlanConfig {
            buddy_alloc: p,
            reserve_span: p,
            compaction_step: p,
            shootdown_deliver: p,
            ..FaultPlanConfig::disabled(seed)
        }
    }

    /// The same probability at every hardware-model site (walker, page
    /// table, MMU caches, TLBs); OS-layer sites stay disabled. These
    /// faults are correctness-preserving degradations, so a run under
    /// `uniform_hw` must still translate every address correctly.
    pub fn uniform_hw(seed: u64, p: f64) -> Self {
        FaultPlanConfig {
            walk_step: p,
            alias_install: p,
            mmu_cache_fill: p,
            any_size_fill: p,
            any_size_evict: p,
            stlb_probe: p,
            ..FaultPlanConfig::disabled(seed)
        }
    }
}

/// A seeded, replayable fault injector with per-site hit counters.
///
/// Each consultation draws from a seeded [`Rng`] stream against a per-site
/// probability, so a (seed, config) pair replays the exact same fault
/// sequence every run — a failing schedule is reproducible from its seed
/// alone.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    rng: Rng,
    consultations: u64,
    injected: BTreeMap<&'static str, u64>,
}

impl FaultPlan {
    /// Builds a plan from its configuration.
    pub fn new(cfg: FaultPlanConfig) -> Self {
        FaultPlan {
            cfg,
            rng: Rng::new(cfg.seed),
            consultations: 0,
            injected: BTreeMap::new(),
        }
    }

    /// Builds a plan and returns both a shareable [`InjectorHandle`] (to
    /// install via `Os::set_fault_injector`) and a concrete handle the
    /// caller keeps for reading counters after the run.
    pub fn handles(cfg: FaultPlanConfig) -> (InjectorHandle, Rc<RefCell<FaultPlan>>) {
        let concrete = Rc::new(RefCell::new(FaultPlan::new(cfg)));
        let dyn_handle: InjectorHandle = concrete.clone();
        (dyn_handle, concrete)
    }

    /// How many times any site consulted this plan.
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }

    /// Faults injected at the site with the given [`FaultSite::label`].
    pub fn injected_at(&self, label: &str) -> u64 {
        self.injected.get(label).copied().unwrap_or(0)
    }

    /// Per-site injection counts keyed by [`FaultSite::label`], in
    /// stable label order.
    pub fn injected(&self) -> &BTreeMap<&'static str, u64> {
        &self.injected
    }
}

impl FaultInjector for FaultPlan {
    fn should_fault(&mut self, site: FaultSite) -> bool {
        self.consultations += 1;
        let p = match site {
            FaultSite::BuddyAlloc { .. } => self.cfg.buddy_alloc,
            FaultSite::ReserveSpan => self.cfg.reserve_span,
            FaultSite::CompactionStep => self.cfg.compaction_step,
            FaultSite::ShootdownDeliver => self.cfg.shootdown_deliver,
            FaultSite::WalkStep { .. } => self.cfg.walk_step,
            FaultSite::AliasInstall => self.cfg.alias_install,
            FaultSite::MmuCacheFill => self.cfg.mmu_cache_fill,
            FaultSite::AnySizeFill => self.cfg.any_size_fill,
            FaultSite::AnySizeEvict => self.cfg.any_size_evict,
            FaultSite::StlbProbe => self.cfg.stlb_probe,
        };
        let hit = p > 0.0 && self.rng.chance(p);
        if hit {
            *self.injected.entry(site.label()).or_insert(0) += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct EveryOther {
        calls: u64,
    }

    impl FaultInjector for EveryOther {
        fn should_fault(&mut self, _site: FaultSite) -> bool {
            self.calls += 1;
            self.calls.is_multiple_of(2)
        }
    }

    #[test]
    fn none_never_faults() {
        assert!(!should_fault(&None, FaultSite::ReserveSpan));
    }

    #[test]
    fn handle_is_shared_and_stateful() {
        let h: InjectorHandle = Rc::new(RefCell::new(EveryOther::default()));
        let a = Some(Rc::clone(&h));
        let b = Some(h);
        assert!(!should_fault(&a, FaultSite::ReserveSpan));
        assert!(should_fault(&b, FaultSite::ReserveSpan), "state is shared");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultSite::BuddyAlloc { order: 3 }.label(), "buddy-alloc");
        assert_eq!(FaultSite::ShootdownDeliver.label(), "shootdown-deliver");
        assert_eq!(FaultSite::WalkStep { level: 2 }.label(), "walk-step");
        assert_eq!(FaultSite::AliasInstall.label(), "alias-install");
        assert_eq!(FaultSite::MmuCacheFill.label(), "mmu-cache-fill");
        assert_eq!(FaultSite::AnySizeFill.label(), "any-size-fill");
        assert_eq!(FaultSite::AnySizeEvict.label(), "any-size-evict");
        assert_eq!(FaultSite::StlbProbe.label(), "stlb-probe");
    }

    fn drive(plan: &mut FaultPlan, n: u64) -> Vec<bool> {
        (0..n)
            .map(|i| {
                plan.should_fault(FaultSite::BuddyAlloc {
                    order: (i % 10) as u8,
                })
            })
            .collect()
    }

    #[test]
    fn replays_identically_from_the_seed() {
        let cfg = FaultPlanConfig::uniform(42, 0.3);
        let a = drive(&mut FaultPlan::new(cfg), 500);
        let b = drive(&mut FaultPlan::new(cfg), 500);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.3 over 500 draws must hit");
        assert!(!a.iter().all(|&x| x), "p=0.3 over 500 draws must miss");
    }

    #[test]
    fn disabled_plan_never_faults_and_draws_no_randomness() {
        let mut plan = FaultPlan::new(FaultPlanConfig::disabled(7));
        for v in drive(&mut plan, 200) {
            assert!(!v);
        }
        assert_eq!(plan.consultations(), 200);
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn counters_split_by_site_label() {
        let cfg = FaultPlanConfig {
            buddy_alloc: 1.0,
            compaction_step: 1.0,
            ..FaultPlanConfig::disabled(1)
        };
        let mut plan = FaultPlan::new(cfg);
        assert!(plan.should_fault(FaultSite::BuddyAlloc { order: 0 }));
        assert!(!plan.should_fault(FaultSite::ReserveSpan));
        assert!(plan.should_fault(FaultSite::CompactionStep));
        assert!(!plan.should_fault(FaultSite::ShootdownDeliver));
        assert_eq!(plan.injected_at("buddy-alloc"), 1);
        assert_eq!(plan.injected_at("compaction-step"), 1);
        assert_eq!(plan.injected_at("reserve-span"), 0);
        assert_eq!(plan.injected_total(), 2);
    }

    #[test]
    fn shared_handle_feeds_one_stream() {
        let (handle, concrete) = FaultPlan::handles(FaultPlanConfig::uniform(9, 1.0));
        assert!(handle.borrow_mut().should_fault(FaultSite::ReserveSpan));
        assert_eq!(concrete.borrow().consultations(), 1);
        assert_eq!(concrete.borrow().injected_total(), 1);
    }

    #[test]
    fn uniform_hw_leaves_os_sites_disabled() {
        let mut plan = FaultPlan::new(FaultPlanConfig::uniform_hw(5, 1.0));
        assert!(!plan.should_fault(FaultSite::BuddyAlloc { order: 0 }));
        assert!(!plan.should_fault(FaultSite::ShootdownDeliver));
        assert!(plan.should_fault(FaultSite::WalkStep { level: 1 }));
        assert!(plan.should_fault(FaultSite::AliasInstall));
        assert!(plan.should_fault(FaultSite::MmuCacheFill));
        assert!(plan.should_fault(FaultSite::AnySizeFill));
        assert!(plan.should_fault(FaultSite::AnySizeEvict));
        assert!(plan.should_fault(FaultSite::StlbProbe));
        assert_eq!(plan.injected_total(), 6);
    }
}
