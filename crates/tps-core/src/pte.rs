//! Page table entry encoding, including the TPS tailored-size encoding.
//!
//! TPS needs each leaf PTE to say *how big* the page it maps is. The paper's
//! space-efficient scheme (Fig. 5) spends a single reserved bit (`T`): if the
//! page is tailored, its physical base is aligned to the page size, so the
//! low PFN bits of the PTE are necessarily zero and can be reused. We store,
//! in PFN bits `[12, 12+rel)`, a run of `rel-1` ones terminated by a zero,
//! where `rel` is the page order *relative to the leaf level* (1..=8). A
//! priority encoder (count of trailing ones) recovers `rel` in hardware.

use crate::addr::PhysAddr;
use crate::error::TpsError;
use crate::page::{level_base_order, level_for_order, PageOrder};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Bookkeeping flag bits of a [`Pte`].
///
/// The layout mirrors x86-64: bit 0 present, 1 writable, 2 user, 5 accessed,
/// 6 dirty, 7 page-size (PS), plus the TPS `T` bit in reserved bit 8.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Default)]
pub struct PteFlags(u64);

impl PteFlags {
    /// Entry is valid.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Page is writable.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// Page is accessible from user mode.
    pub const USER: PteFlags = PteFlags(1 << 2);
    /// Set by hardware on first access.
    pub const ACCESSED: PteFlags = PteFlags(1 << 5);
    /// Set by hardware on first write.
    pub const DIRTY: PteFlags = PteFlags(1 << 6);
    /// Conventional huge-page leaf marker at levels 2/3 (x86 `PS`).
    pub const HUGE: PteFlags = PteFlags(1 << 7);
    /// TPS tailored-page marker (`T` in the paper, a reserved bit).
    pub const TAILORED: PteFlags = PteFlags(1 << 8);

    /// The empty flag set.
    pub const fn empty() -> Self {
        PteFlags(0)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// True if every flag in `other` is set in `self`.
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: PteFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        for (bit, name) in [
            (Self::PRESENT, "PRESENT"),
            (Self::WRITABLE, "WRITABLE"),
            (Self::USER, "USER"),
            (Self::ACCESSED, "ACCESSED"),
            (Self::DIRTY, "DIRTY"),
            (Self::HUGE, "HUGE"),
            (Self::TAILORED, "TAILORED"),
        ] {
            if self.contains(bit) {
                names.push(name);
            }
        }
        if names.is_empty() {
            write!(f, "PteFlags(empty)")
        } else {
            write!(f, "PteFlags({})", names.join("|"))
        }
    }
}

/// Decoded information about a leaf PTE.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct LeafInfo {
    /// Physical base address of the mapped page (aligned to its size).
    pub base: PhysAddr,
    /// The page's order (absolute, relative to 4 KB).
    pub order: PageOrder,
    /// Flag bits of the entry.
    pub flags: PteFlags,
}

/// A 64-bit page table entry.
///
/// Three kinds of entry exist:
///
/// * **non-present** (`Pte::EMPTY`),
/// * **table pointers** (non-leaf; hold the physical address of the next
///   page-table node),
/// * **leaves** (map a page). A leaf at level 1 is conventional 4 KB unless
///   `T` is set; a leaf at level 2/3 sets `HUGE` and is the conventional
///   2 MB / 1 GB size unless `T` is also set. Tailored leaves encode their
///   relative order in low PFN bits (see module docs).
///
/// # Example
///
/// ```
/// use tps_core::{PageOrder, PhysAddr, Pte, PteFlags};
/// // 64 KB page (order 4): lives at level 1, relative order 4.
/// let pte = Pte::leaf(PhysAddr::new(0x4001_0000), PageOrder::new(4).unwrap(),
///                     PteFlags::WRITABLE);
/// let leaf = pte.decode_leaf(1).unwrap();
/// assert_eq!(leaf.order.get(), 4);
/// assert_eq!(leaf.base.value(), 0x4001_0000);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Hash, Default)]
pub struct Pte(u64);

/// PFN field mask: bits `[12, 52)`.
const PFN_FIELD: u64 = ((1u64 << 52) - 1) & !0xfff;

impl Pte {
    /// The non-present (zero) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Raw bits (useful for debugging and property tests).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Constructs an entry from raw bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        Pte(bits)
    }

    /// A non-leaf entry pointing at the next-level table node.
    ///
    /// # Panics
    ///
    /// Panics if `table` is not 4 KB aligned.
    pub fn table(table: PhysAddr) -> Self {
        assert!(table.is_aligned(12), "page table nodes are 4 KB aligned");
        Pte(table.value()
            | PteFlags::PRESENT.bits()
            | PteFlags::WRITABLE.bits()
            | PteFlags::USER.bits())
    }

    /// A leaf entry mapping a page of the given order at `base`.
    ///
    /// The leaf level is implied by the order ([`level_for_order`]). `PRESENT`
    /// is always set; `HUGE` is set for level-2/3 leaves; `TAILORED` plus the
    /// size pattern are set for non-conventional orders.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not aligned to the page size.
    pub fn leaf(base: PhysAddr, order: PageOrder, flags: PteFlags) -> Self {
        assert!(
            base.is_aligned(order.shift()),
            "page base {base} not aligned to {order}"
        );
        let level = level_for_order(order);
        let rel = order.get() - level_base_order(level);
        let mut bits = base.value() | flags.bits() | PteFlags::PRESENT.bits();
        if level > 1 {
            bits |= PteFlags::HUGE.bits();
        }
        if rel > 0 {
            // Tailored: run of rel-1 ones in bits [12, 12+rel-1), zero at
            // bit 12 + rel - 1 (already zero by alignment).
            bits |= PteFlags::TAILORED.bits();
            let ones = (1u64 << (rel - 1)) - 1; // rel-1 ones
            bits |= ones << 12;
        }
        Pte(bits)
    }

    /// True if the entry is valid.
    #[inline]
    pub const fn is_present(self) -> bool {
        self.0 & PteFlags::PRESENT.bits() != 0
    }

    /// True if this present entry is a leaf when read at `level`.
    ///
    /// Level-1 entries are always leaves; level-2/3 entries are leaves iff
    /// `HUGE`; level-4 entries are never leaves.
    pub fn is_leaf(self, level: u8) -> bool {
        self.is_present()
            && match level {
                1 => true,
                2 | 3 => self.flags().contains(PteFlags::HUGE),
                _ => false,
            }
    }

    /// The flag bits of the entry.
    #[inline]
    pub fn flags(self) -> PteFlags {
        PteFlags(self.0 & (0x1ff | (1 << 63)))
    }

    /// Physical address of the next-level table (for non-leaf entries).
    #[inline]
    pub fn next_table(self) -> PhysAddr {
        PhysAddr::new(self.0 & PFN_FIELD)
    }

    /// Decodes a leaf entry read at the given page-table level.
    ///
    /// Returns the mapped page's base, absolute order and flags. The tailored
    /// relative order is recovered with a priority encoder over the trailing
    /// ones of the PFN field, exactly as the hardware would.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::NotALeaf`] if the entry is not present or is a
    /// table pointer at this level.
    pub fn decode_leaf(self, level: u8) -> Result<LeafInfo, TpsError> {
        if !self.is_leaf(level) {
            return Err(TpsError::NotALeaf { level });
        }
        let flags = self.flags();
        let base_order = level_base_order(level);
        let order = if flags.contains(PteFlags::TAILORED) {
            // rel-1 = number of trailing ones of the PFN field.
            let pfn_bits = (self.0 & PFN_FIELD) >> 12;
            let rel = pfn_bits.trailing_ones() as u8 + 1;
            debug_assert!((1..=8).contains(&rel));
            PageOrder::new(base_order + rel)?
        } else {
            PageOrder::new(base_order)?
        };
        // Clear flag bits and the size pattern: the page base is aligned to
        // its size, so simply mask off everything below the page shift.
        let base = PhysAddr::new(self.0 & PFN_FIELD).align_down(order.shift());
        Ok(LeafInfo { base, order, flags })
    }

    /// Returns a copy with the `ACCESSED` bit set.
    #[must_use]
    pub fn with_accessed(self) -> Self {
        Pte(self.0 | PteFlags::ACCESSED.bits())
    }

    /// Returns a copy with the `DIRTY` bit set.
    #[must_use]
    pub fn with_dirty(self) -> Self {
        Pte(self.0 | PteFlags::DIRTY.bits())
    }
}

impl fmt::Debug for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_present() {
            return write!(f, "Pte(not present, {:#x})", self.0);
        }
        write!(f, "Pte({:#x}, {:?})", self.0 & PFN_FIELD, self.flags())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aligned_pa(order: u8) -> PhysAddr {
        // A base somewhere in the middle of memory, aligned to the order.
        PhysAddr::new(0x8_0000_0000u64).align_down(12 + order as u32)
    }

    #[test]
    fn empty_is_not_present() {
        assert!(!Pte::EMPTY.is_present());
        assert!(Pte::EMPTY.decode_leaf(1).is_err());
    }

    #[test]
    fn table_entry_round_trip() {
        let t = Pte::table(PhysAddr::new(0x1234_5000));
        assert!(t.is_present());
        assert!(!t.is_leaf(4));
        assert!(!t.is_leaf(2));
        assert_eq!(t.next_table().value(), 0x1234_5000);
    }

    #[test]
    fn conventional_leaves() {
        for (order, level) in [(0u8, 1u8), (9, 2), (18, 3)] {
            let o = PageOrder::new(order).unwrap();
            let pa = aligned_pa(order);
            let pte = Pte::leaf(pa, o, PteFlags::WRITABLE);
            let leaf = pte.decode_leaf(level).unwrap();
            assert_eq!(leaf.order, o, "order {order}");
            assert_eq!(leaf.base, pa);
            assert!(!pte.flags().contains(PteFlags::TAILORED));
        }
    }

    #[test]
    fn tailored_leaves_every_order() {
        for order in 1..=crate::page::MAX_PAGE_ORDER {
            let o = PageOrder::new(order).unwrap();
            if !o.is_tailored() {
                continue;
            }
            let level = level_for_order(o);
            let pa = aligned_pa(order);
            let pte = Pte::leaf(pa, o, PteFlags::empty());
            assert!(pte.flags().contains(PteFlags::TAILORED), "order {order}");
            let leaf = pte.decode_leaf(level).unwrap();
            assert_eq!(leaf.order, o, "order {order}");
            assert_eq!(leaf.base, pa, "order {order}");
        }
    }

    #[test]
    fn tailored_pattern_matches_paper() {
        // 8 KB page (rel=1): T set, bit 12 clear.
        let pte = Pte::leaf(aligned_pa(1), PageOrder::new(1).unwrap(), PteFlags::empty());
        assert_eq!((pte.bits() >> 12) & 1, 0);
        // 32 KB page (rel=3): bits 12,13 set, bit 14 clear.
        let pte = Pte::leaf(aligned_pa(3), PageOrder::new(3).unwrap(), PteFlags::empty());
        assert_eq!((pte.bits() >> 12) & 0b111, 0b011);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn leaf_rejects_misaligned_base() {
        Pte::leaf(
            PhysAddr::new(0x1000),
            PageOrder::new(3).unwrap(),
            PteFlags::empty(),
        );
    }

    #[test]
    fn huge_flag_set_only_above_level_one() {
        let l1 = Pte::leaf(aligned_pa(4), PageOrder::new(4).unwrap(), PteFlags::empty());
        assert!(!l1.flags().contains(PteFlags::HUGE));
        let l2 = Pte::leaf(
            aligned_pa(12),
            PageOrder::new(12).unwrap(),
            PteFlags::empty(),
        );
        assert!(l2.flags().contains(PteFlags::HUGE));
        assert!(l2.is_leaf(2));
        assert!(!Pte::table(PhysAddr::new(0x1000)).is_leaf(2));
    }

    #[test]
    fn accessed_dirty_bits() {
        let pte = Pte::leaf(aligned_pa(0), PageOrder::P4K, PteFlags::empty());
        assert!(!pte.flags().contains(PteFlags::ACCESSED));
        let pte = pte.with_accessed().with_dirty();
        assert!(pte.flags().contains(PteFlags::ACCESSED));
        assert!(pte.flags().contains(PteFlags::DIRTY));
        // Setting A/D must not disturb the decoded mapping.
        let leaf = pte.decode_leaf(1).unwrap();
        assert_eq!(leaf.base, aligned_pa(0));
    }

    #[test]
    fn flags_debug_nonempty() {
        assert_eq!(format!("{:?}", PteFlags::empty()), "PteFlags(empty)");
        assert!(format!("{:?}", PteFlags::PRESENT | PteFlags::DIRTY).contains("DIRTY"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::page::MAX_PAGE_ORDER;
    use proptest::prelude::*;

    proptest! {
        /// Encode/decode round-trips for every order and any aligned base.
        #[test]
        fn leaf_round_trip(order in 0u8..=MAX_PAGE_ORDER, raw in 0u64..(1 << 40)) {
            let o = PageOrder::new(order).unwrap();
            let base = PhysAddr::new(raw).align_down(o.shift());
            let level = level_for_order(o);
            let writable = raw & 1 == 1;
            let flags = if writable { PteFlags::WRITABLE } else { PteFlags::empty() };
            let pte = Pte::leaf(base, o, flags);
            let leaf = pte.decode_leaf(level).unwrap();
            prop_assert_eq!(leaf.base, base);
            prop_assert_eq!(leaf.order, o);
            prop_assert_eq!(leaf.flags.contains(PteFlags::WRITABLE), writable);
        }

        /// A/D updates never change the decoded base/order.
        #[test]
        fn ad_bits_preserve_mapping(order in 0u8..=MAX_PAGE_ORDER, raw in 0u64..(1 << 40)) {
            let o = PageOrder::new(order).unwrap();
            let base = PhysAddr::new(raw).align_down(o.shift());
            let level = level_for_order(o);
            let pte = Pte::leaf(base, o, PteFlags::USER).with_accessed().with_dirty();
            let leaf = pte.decode_leaf(level).unwrap();
            prop_assert_eq!(leaf.base, base);
            prop_assert_eq!(leaf.order, o);
        }
    }
}
