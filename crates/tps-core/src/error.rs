//! Error type shared across the TPS workspace.

use std::error::Error;
use std::fmt;

/// Errors produced by the TPS simulation stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpsError {
    /// A page order above the supported maximum was requested.
    InvalidPageOrder(u8),
    /// A byte count that is not a supported power-of-two page size.
    InvalidPageSize(u64),
    /// An address violated an alignment requirement.
    Misaligned {
        /// The offending raw address.
        addr: u64,
        /// The required alignment shift (log2 bytes).
        shift: u32,
    },
    /// The physical memory allocator could not satisfy a request.
    OutOfMemory {
        /// The order that was requested.
        order: u8,
    },
    /// A PTE expected to be a leaf was not one.
    NotALeaf {
        /// The page-table level at which the entry was read.
        level: u8,
    },
    /// A virtual address had no mapping and no fault handler created one.
    Unmapped {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// A write was attempted to a read-only mapping.
    ProtectionViolation {
        /// The faulting virtual address.
        vaddr: u64,
    },
    /// A region identifier was not found.
    UnknownRegion(u64),
    /// A requested virtual range overlaps an existing mapping.
    RangeOverlap {
        /// Start of the conflicting range.
        start: u64,
        /// Length of the conflicting range.
        len: u64,
    },
    /// An operation was attempted on a block the allocator does not own.
    InvalidFree {
        /// The offending physical address.
        addr: u64,
    },
    /// The range still contains copy-on-write-shared mappings, which this
    /// model cannot reclaim (fork the region's owner must exit first).
    SharedMapping {
        /// A shared virtual address in the range.
        vaddr: u64,
    },
    /// A cross-layer invariant did not hold: state shared between the buddy
    /// allocator, reservation table, page table, and TLB bookkeeping became
    /// inconsistent. Replaces the panics the fault paths used to raise, so
    /// an inconsistency is diagnosable instead of aborting the simulation.
    InvariantViolation {
        /// The layer that detected the inconsistency.
        layer: InvariantLayer,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// An experiment specification failed validation before any cell ran
    /// (unknown benchmark, empty matrix, out-of-range parameter).
    InvalidSpec {
        /// Human-readable description of the rejected field.
        detail: String,
    },
    /// A worker thread panicked while executing one experiment cell. The
    /// matrix runner converts the panic into this per-cell error so the
    /// remaining cells still complete.
    WorkerPanic {
        /// The panic payload (message), when one was recoverable.
        detail: String,
    },
    /// A checkpoint journal could not be written, read, or reconciled with
    /// the spec it claims to belong to (I/O failure, malformed record,
    /// version or fingerprint mismatch).
    Checkpoint {
        /// Human-readable description of what went wrong.
        detail: String,
    },
    /// A checkpoint journal was read back corrupted: a CRC mismatch,
    /// broken entry framing, or a non-monotone sequence number. Distinct
    /// from [`TpsError::Checkpoint`] so callers (and the CLI exit code)
    /// can tell "the file is damaged" from "the file does not match".
    CheckpointCorrupt {
        /// Human-readable description of the damaged record.
        detail: String,
    },
}

impl TpsError {
    /// Builds an [`TpsError::InvariantViolation`] for `layer`.
    pub fn invariant(layer: InvariantLayer, detail: impl Into<String>) -> Self {
        TpsError::InvariantViolation {
            layer,
            detail: detail.into(),
        }
    }

    /// Builds an [`TpsError::InvalidSpec`] with the given description.
    pub fn invalid_spec(detail: impl Into<String>) -> Self {
        TpsError::InvalidSpec {
            detail: detail.into(),
        }
    }

    /// Builds an [`TpsError::WorkerPanic`] from a recovered panic message.
    pub fn worker_panic(detail: impl Into<String>) -> Self {
        TpsError::WorkerPanic {
            detail: detail.into(),
        }
    }

    /// Builds an [`TpsError::Checkpoint`] with the given description.
    pub fn checkpoint(detail: impl Into<String>) -> Self {
        TpsError::Checkpoint {
            detail: detail.into(),
        }
    }

    /// Builds an [`TpsError::CheckpointCorrupt`] with the given description.
    pub fn checkpoint_corrupt(detail: impl Into<String>) -> Self {
        TpsError::CheckpointCorrupt {
            detail: detail.into(),
        }
    }
}

/// Why a tenant's event could not be executed by the machine driver.
///
/// A fault is always scoped to the tenant that raised it: the machine
/// contains the tenant (kills it and reclaims its memory) and the
/// survivors run on. The cause is the stable, serializable part of a
/// [`TenantFault`]; its `label`/`from_label` pair is the JSON encoding
/// used by experiment reports and the checkpoint journal.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum TenantFaultCause {
    /// The shared physical pool could not satisfy the tenant's request.
    Oom,
    /// The event would have pushed the tenant past its memory cap.
    CapExceeded,
    /// The event named a region the tenant has not mapped.
    UnknownRegion,
    /// The event was malformed: a duplicate region id, an out-of-bounds
    /// offset, or an event for a tenant that already retired.
    BadEvent,
}

impl TenantFaultCause {
    /// The stable serialization label of this cause.
    pub fn label(&self) -> &'static str {
        match self {
            TenantFaultCause::Oom => "oom",
            TenantFaultCause::CapExceeded => "cap-exceeded",
            TenantFaultCause::UnknownRegion => "unknown-region",
            TenantFaultCause::BadEvent => "bad-event",
        }
    }

    /// Parses a label produced by [`TenantFaultCause::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "oom" => TenantFaultCause::Oom,
            "cap-exceeded" => TenantFaultCause::CapExceeded,
            "unknown-region" => TenantFaultCause::UnknownRegion,
            "bad-event" => TenantFaultCause::BadEvent,
            _ => return None,
        })
    }
}

impl fmt::Display for TenantFaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A contained, tenant-scoped failure raised by the machine's event path.
///
/// Returned by the machine's `step`; under `run` it triggers the kill of
/// the faulting tenant (or, for [`TenantFaultCause::Oom`] under the
/// kill-victim policy, of the largest tenant) instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantFault {
    cause: TenantFaultCause,
    detail: String,
}

impl TenantFault {
    /// Builds a fault with the given cause and human-readable detail.
    pub fn new(cause: TenantFaultCause, detail: impl Into<String>) -> Self {
        TenantFault {
            cause,
            detail: detail.into(),
        }
    }

    /// The structured cause (what a kill policy dispatches on).
    pub fn cause(&self) -> TenantFaultCause {
        self.cause
    }

    /// The human-readable description of the fault.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for TenantFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant fault ({}): {}", self.cause, self.detail)
    }
}

impl Error for TenantFault {}

/// The layer at which a cross-layer invariant violation was detected.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum InvariantLayer {
    /// The buddy physical-memory allocator.
    Buddy,
    /// The paging reservation table.
    Reservation,
    /// The radix page table.
    PageTable,
    /// TLB-shootdown bookkeeping.
    Tlb,
    /// The OS model's own bookkeeping (VMAs, direct blocks, stats).
    Os,
}

impl fmt::Display for InvariantLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InvariantLayer::Buddy => "buddy",
            InvariantLayer::Reservation => "reservation",
            InvariantLayer::PageTable => "page-table",
            InvariantLayer::Tlb => "tlb",
            InvariantLayer::Os => "os",
        })
    }
}

impl fmt::Display for TpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpsError::InvalidPageOrder(o) => write!(f, "page order {o} exceeds the maximum"),
            TpsError::InvalidPageSize(b) => {
                write!(f, "{b} bytes is not a supported power-of-two page size")
            }
            TpsError::Misaligned { addr, shift } => {
                write!(f, "address {addr:#x} is not aligned to 2^{shift} bytes")
            }
            TpsError::OutOfMemory { order } => {
                write!(f, "no free physical block of order {order} available")
            }
            TpsError::NotALeaf { level } => {
                write!(f, "entry at level {level} is not a leaf")
            }
            TpsError::Unmapped { vaddr } => {
                write!(f, "virtual address {vaddr:#x} is not mapped")
            }
            TpsError::ProtectionViolation { vaddr } => {
                write!(f, "write to read-only mapping at {vaddr:#x}")
            }
            TpsError::UnknownRegion(id) => write!(f, "unknown region id {id}"),
            TpsError::RangeOverlap { start, len } => {
                write!(f, "range {start:#x}+{len:#x} overlaps an existing mapping")
            }
            TpsError::InvalidFree { addr } => {
                write!(f, "free of unowned physical block at {addr:#x}")
            }
            TpsError::SharedMapping { vaddr } => {
                write!(f, "range holds shared (CoW) mapping at {vaddr:#x}")
            }
            TpsError::InvariantViolation { layer, detail } => {
                write!(f, "invariant violation at {layer} layer: {detail}")
            }
            TpsError::InvalidSpec { detail } => {
                write!(f, "invalid experiment spec: {detail}")
            }
            TpsError::WorkerPanic { detail } => {
                write!(f, "worker thread panicked: {detail}")
            }
            TpsError::Checkpoint { detail } => {
                write!(f, "checkpoint error: {detail}")
            }
            TpsError::CheckpointCorrupt { detail } => {
                write!(f, "checkpoint corruption detected: {detail}")
            }
        }
    }
}

impl Error for TpsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_nonempty() {
        let errs: Vec<TpsError> = vec![
            TpsError::InvalidPageOrder(31),
            TpsError::InvalidPageSize(3000),
            TpsError::Misaligned {
                addr: 0x123,
                shift: 12,
            },
            TpsError::OutOfMemory { order: 9 },
            TpsError::NotALeaf { level: 2 },
            TpsError::Unmapped { vaddr: 0x1000 },
            TpsError::ProtectionViolation { vaddr: 0x1000 },
            TpsError::UnknownRegion(7),
            TpsError::RangeOverlap {
                start: 0,
                len: 4096,
            },
            TpsError::InvalidFree { addr: 0x2000 },
            TpsError::SharedMapping { vaddr: 0x3000 },
            TpsError::invariant(InvariantLayer::Buddy, "free list lost a block"),
            TpsError::invalid_spec("unknown benchmark \"nonesuch\""),
            TpsError::worker_panic("machine out of physical memory"),
            TpsError::checkpoint("journal header missing"),
            TpsError::checkpoint_corrupt("entry 3 failed its crc"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(char::is_numeric));
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<TpsError>();
        assert_traits::<TenantFault>();
    }

    #[test]
    fn tenant_fault_cause_labels_round_trip() {
        for cause in [
            TenantFaultCause::Oom,
            TenantFaultCause::CapExceeded,
            TenantFaultCause::UnknownRegion,
            TenantFaultCause::BadEvent,
        ] {
            let label = cause.label();
            assert_eq!(label, label.to_lowercase(), "labels are lowercase");
            assert_eq!(TenantFaultCause::from_label(label), Some(cause));
            assert_eq!(cause.to_string(), label);
        }
        assert_eq!(TenantFaultCause::from_label("nonesuch"), None);
    }

    #[test]
    fn tenant_fault_carries_cause_and_detail() {
        let fault = TenantFault::new(TenantFaultCause::CapExceeded, "64 over a 32-byte cap");
        assert_eq!(fault.cause(), TenantFaultCause::CapExceeded);
        assert_eq!(fault.detail(), "64 over a 32-byte cap");
        assert_eq!(
            fault.to_string(),
            "tenant fault (cap-exceeded): 64 over a 32-byte cap"
        );
        assert!(fault.source().is_none());
    }

    #[test]
    fn invariant_violation_carries_layer_and_detail() {
        let e = TpsError::invariant(InvariantLayer::PageTable, "leaf without reservation");
        assert_eq!(
            e.to_string(),
            "invariant violation at page-table layer: leaf without reservation"
        );
        assert!(e.source().is_none(), "leaf error: no underlying source");
        // Every layer label is lowercase and stable.
        for layer in [
            InvariantLayer::Buddy,
            InvariantLayer::Reservation,
            InvariantLayer::PageTable,
            InvariantLayer::Tlb,
            InvariantLayer::Os,
        ] {
            let s = layer.to_string();
            assert!(!s.is_empty());
            assert_eq!(s, s.to_lowercase());
        }
    }
}
