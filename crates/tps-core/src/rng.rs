//! Small deterministic PRNG used by workload generators and the
//! fragmentation engine.
//!
//! Every experiment in the reproduction must be exactly repeatable, so we
//! use an in-tree xoshiro256++ generator (seeded through SplitMix64, as its
//! authors recommend) instead of an external crate whose stream might change
//! across versions.
//!
//! # Example
//!
//! ```
//! use tps_core::rng::Rng;
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
//! let x = a.below(10);
//! assert!(x < 10);
//! ```

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ deterministic PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Unbiased enough for simulation purposes (bias < 2^-64 * bound).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(3);
        for bound in [1u64, 2, 7, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Rng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }
}
