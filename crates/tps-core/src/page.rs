//! Page sizes expressed as power-of-two *orders* above the 4 KB base page.

use crate::addr::BASE_PAGE_SHIFT;
use crate::error::TpsError;
use std::fmt;

/// Number of index bits per page-table level (512-entry tables).
pub const PT_INDEX_BITS: u32 = 9;
/// Number of entries in one page-table node.
pub const PT_ENTRIES: usize = 1 << PT_INDEX_BITS;
/// Number of page-table levels modeled (x86-64 4-level paging).
pub const LEVELS: u8 = 4;

/// The largest supported page order.
///
/// Order 26 is a 256 GB page — the largest size a level-3 leaf can express
/// with the tailored encoding (level 3 hosts orders 18..=26).
pub const MAX_PAGE_ORDER: u8 = 26;

/// A power-of-two page size expressed as an order above the base page:
/// `size = 4 KB << order`.
///
/// Order 0 is 4 KB, order 9 is 2 MB, order 18 is 1 GB — the conventional
/// x86-64 page sizes. Every other order in `1..=26` is a *tailored* size
/// introduced by TPS.
///
/// # Example
///
/// ```
/// use tps_core::PageOrder;
/// let o = PageOrder::new(3).unwrap(); // 32 KB
/// assert_eq!(o.bytes(), 32 * 1024);
/// assert_eq!(o.base_pages(), 8);
/// assert!(o.is_tailored());
/// assert!(!PageOrder::P2M.is_tailored());
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Default)]
pub struct PageOrder(u8);

impl PageOrder {
    /// The 4 KB base page.
    pub const P4K: PageOrder = PageOrder(0);
    /// The conventional 2 MB huge page.
    pub const P2M: PageOrder = PageOrder(9);
    /// The conventional 1 GB huge page.
    pub const P1G: PageOrder = PageOrder(18);

    /// Creates a page order.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidPageOrder`] if `order > MAX_PAGE_ORDER`.
    pub fn new(order: u8) -> Result<Self, TpsError> {
        if order > MAX_PAGE_ORDER {
            Err(TpsError::InvalidPageOrder(order))
        } else {
            Ok(PageOrder(order))
        }
    }

    /// Creates a page order without bounds checking against
    /// [`MAX_PAGE_ORDER`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `order > MAX_PAGE_ORDER`.
    #[inline]
    pub const fn new_unchecked(order: u8) -> Self {
        debug_assert!(order <= MAX_PAGE_ORDER);
        PageOrder(order)
    }

    /// The numeric order.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// The page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// Log2 of the page size (`12 + order`).
    #[inline]
    pub const fn shift(self) -> u32 {
        BASE_PAGE_SHIFT + self.0 as u32
    }

    /// Number of 4 KB base pages this page spans.
    #[inline]
    pub const fn base_pages(self) -> u64 {
        1u64 << self.0
    }

    /// True for sizes other than the conventional 4 KB / 2 MB / 1 GB —
    /// i.e. the sizes that only TPS supports.
    #[inline]
    pub const fn is_tailored(self) -> bool {
        !matches!(self.0, 0 | 9 | 18)
    }

    /// The smallest order whose page covers at least `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidPageOrder`] if `bytes` exceeds the largest
    /// supported page.
    pub fn covering(bytes: u64) -> Result<Self, TpsError> {
        if bytes == 0 {
            return Ok(PageOrder(0));
        }
        let shift = 64 - (bytes - 1).leading_zeros();
        let order = shift.saturating_sub(BASE_PAGE_SHIFT) as u8;
        PageOrder::new(order)
    }

    /// The largest order whose page fits within `bytes`
    /// (`None` if `bytes < 4 KB`).
    pub fn fitting(bytes: u64) -> Option<Self> {
        if bytes < (1 << BASE_PAGE_SHIFT) {
            return None;
        }
        let order = (63 - bytes.leading_zeros()).saturating_sub(BASE_PAGE_SHIFT) as u8;
        Some(PageOrder(order.min(MAX_PAGE_ORDER)))
    }

    /// Iterator over all supported orders, smallest first.
    pub fn all() -> impl Iterator<Item = PageOrder> {
        (0..=MAX_PAGE_ORDER).map(PageOrder)
    }

    /// A human-readable size string like `"4K"`, `"32K"`, `"2M"`, `"1G"`.
    pub fn label(self) -> String {
        let b = self.bytes();
        if b >= 1 << 30 {
            format!("{}G", b >> 30)
        } else if b >= 1 << 20 {
            format!("{}M", b >> 20)
        } else {
            format!("{}K", b >> 10)
        }
    }
}

impl fmt::Debug for PageOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageOrder({} = {})", self.0, self.label())
    }
}

impl fmt::Display for PageOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl TryFrom<u8> for PageOrder {
    type Error = TpsError;
    fn try_from(v: u8) -> Result<Self, TpsError> {
        PageOrder::new(v)
    }
}

/// A page size in bytes, guaranteed to be a supported power of two.
///
/// Thin wrapper over [`PageOrder`] for call sites that think in bytes.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct PageSize(PageOrder);

impl PageSize {
    /// Creates a page size from a byte count.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidPageSize`] if `bytes` is not a power of two
    /// at least 4 KB and at most the largest supported page.
    pub fn from_bytes(bytes: u64) -> Result<Self, TpsError> {
        if !bytes.is_power_of_two() || bytes < (1 << BASE_PAGE_SHIFT) {
            return Err(TpsError::InvalidPageSize(bytes));
        }
        let order = (bytes.trailing_zeros() - BASE_PAGE_SHIFT) as u8;
        Ok(PageSize(PageOrder::new(order)?))
    }

    /// Creates a page size from an order.
    #[inline]
    pub const fn from_order(order: PageOrder) -> Self {
        PageSize(order)
    }

    /// The size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.0.bytes()
    }

    /// The underlying order.
    #[inline]
    pub const fn order(self) -> PageOrder {
        self.0
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// The page-table level (1..=3) at which a leaf of the given order lives.
///
/// Level 1 hosts orders 0..=8 (4 KB and tailored up to 1 MB), level 2 hosts
/// 9..=17 (2 MB and tailored up to 512 MB), level 3 hosts 18..=26.
///
/// # Panics
///
/// Panics if `order > MAX_PAGE_ORDER`.
#[inline]
pub fn level_for_order(order: PageOrder) -> u8 {
    assert!(order.get() <= MAX_PAGE_ORDER);
    order.get() / 9 + 1
}

/// The smallest order hosted at a given leaf level: 0, 9 or 18.
///
/// # Panics
///
/// Panics if `level` is not in `1..=3`.
#[inline]
pub fn level_base_order(level: u8) -> u8 {
    assert!((1..=3).contains(&level), "leaf level out of range");
    (level - 1) * 9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_sizes() {
        assert_eq!(PageOrder::P4K.bytes(), 4096);
        assert_eq!(PageOrder::P2M.bytes(), 2 << 20);
        assert_eq!(PageOrder::P1G.bytes(), 1 << 30);
        assert!(!PageOrder::P4K.is_tailored());
        assert!(PageOrder::new(1).unwrap().is_tailored()); // 8K
        assert!(PageOrder::new(17).unwrap().is_tailored()); // 512M
    }

    #[test]
    fn covering_rounds_up() {
        assert_eq!(PageOrder::covering(1).unwrap().get(), 0);
        assert_eq!(PageOrder::covering(4096).unwrap().get(), 0);
        assert_eq!(PageOrder::covering(4097).unwrap().get(), 1);
        assert_eq!(PageOrder::covering(28 * 1024).unwrap().get(), 3); // 32K covers 28K
        assert_eq!(PageOrder::covering(2052 * 1024).unwrap().label(), "4M"); // paper example
        assert!(PageOrder::covering(1 << 60).is_err());
    }

    #[test]
    fn fitting_rounds_down() {
        assert!(PageOrder::fitting(1000).is_none());
        assert_eq!(PageOrder::fitting(4096).unwrap().get(), 0);
        assert_eq!(PageOrder::fitting(28 * 1024).unwrap().get(), 2); // 16K fits in 28K
        assert_eq!(PageOrder::fitting(u64::MAX).unwrap().get(), MAX_PAGE_ORDER);
    }

    #[test]
    fn page_size_from_bytes() {
        assert_eq!(PageSize::from_bytes(32 * 1024).unwrap().order().get(), 3);
        assert!(PageSize::from_bytes(3000).is_err());
        assert!(PageSize::from_bytes(6144).is_err());
        assert!(PageSize::from_bytes(1 << 60).is_err());
    }

    #[test]
    fn level_assignment() {
        assert_eq!(level_for_order(PageOrder::P4K), 1);
        assert_eq!(level_for_order(PageOrder::new(8).unwrap()), 1);
        assert_eq!(level_for_order(PageOrder::P2M), 2);
        assert_eq!(level_for_order(PageOrder::new(17).unwrap()), 2);
        assert_eq!(level_for_order(PageOrder::P1G), 3);
        assert_eq!(level_for_order(PageOrder::new(26).unwrap()), 3);
        assert_eq!(level_base_order(1), 0);
        assert_eq!(level_base_order(2), 9);
        assert_eq!(level_base_order(3), 18);
    }

    #[test]
    fn labels() {
        assert_eq!(PageOrder::new(0).unwrap().label(), "4K");
        assert_eq!(PageOrder::new(2).unwrap().label(), "16K");
        assert_eq!(PageOrder::new(9).unwrap().label(), "2M");
        assert_eq!(PageOrder::new(12).unwrap().label(), "16M");
        assert_eq!(PageOrder::new(18).unwrap().label(), "1G");
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(PageOrder::new(MAX_PAGE_ORDER + 1).is_err());
        assert!(PageOrder::new(MAX_PAGE_ORDER).is_ok());
    }

    #[test]
    fn all_orders_enumerates() {
        let all: Vec<_> = PageOrder::all().collect();
        assert_eq!(all.len(), MAX_PAGE_ORDER as usize + 1);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }
}
