//! Core types shared by every crate in the Tailored Page Sizes (TPS)
//! reproduction.
//!
//! TPS (Guvenilir & Patt, ISCA 2020) extends a conventional x86-64-like
//! virtual memory system with pages of *any* power-of-two size at or above
//! the 4 KB base page. This crate provides the vocabulary types used by the
//! physical-memory, page-table, TLB, OS and simulator crates:
//!
//! * [`VirtAddr`] / [`PhysAddr`] — newtype addresses with alignment helpers.
//! * [`PageOrder`] / [`PageSize`] — power-of-two page sizes expressed as an
//!   order relative to the 4 KB base page.
//! * [`Pte`] — a 64-bit page table entry implementing the paper's single
//!   reserved-bit (`T`) tailored-size encoding (Fig. 5): the size of a
//!   tailored page is recovered from otherwise-unused low PFN bits with a
//!   priority encoder.
//! * [`rng`] — a small deterministic PRNG so that every experiment in the
//!   reproduction is bit-for-bit repeatable.
//!
//! # Example
//!
//! ```
//! use tps_core::{PageOrder, PageSize, PhysAddr, Pte, PteFlags, VirtAddr};
//!
//! // A 32 KB tailored page (order 3) mapping VA 0x1000_8000 -> PA 0x4000_0000.
//! let order = PageOrder::new(3).unwrap();
//! let pa = PhysAddr::new(0x4000_0000);
//! let pte = Pte::leaf(pa, order, PteFlags::WRITABLE | PteFlags::USER);
//! let leaf = pte.decode_leaf(1).unwrap();
//! assert_eq!(leaf.base, pa);
//! assert_eq!(leaf.order, order);
//! assert_eq!(PageSize::from_order(order).bytes(), 32 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
pub mod inject;
pub mod lru;
mod page;
mod pte;
pub mod rng;

pub use addr::{
    PhysAddr, VirtAddr, BASE_PAGE_SHIFT, BASE_PAGE_SIZE, GIB, KIB, MIB, PAGE_1G_BYTES,
    PAGE_2M_BYTES, PA_BITS, VA_BITS,
};
pub use error::{InvariantLayer, TenantFault, TenantFaultCause, TpsError};
pub use inject::{FaultInjector, FaultPlan, FaultPlanConfig, FaultSite, InjectorHandle};
pub use page::{
    level_base_order, level_for_order, PageOrder, PageSize, LEVELS, MAX_PAGE_ORDER, PT_ENTRIES,
    PT_INDEX_BITS,
};
pub use pte::{LeafInfo, Pte, PteFlags};

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, TpsError>;
