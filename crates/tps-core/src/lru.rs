//! A tiny fixed-capacity fully-associative LRU map.
//!
//! Hardware structures in this reproduction (MMU caches, fully-associative
//! TLBs, range TLBs) are small — at most a few dozen entries — so a linear
//! scan with a logical timestamp models them faithfully and is plenty fast.
//!
//! # Example
//!
//! ```
//! use tps_core::lru::LruCache;
//! let mut c = LruCache::new(2);
//! c.insert(1, "a");
//! c.insert(2, "b");
//! assert_eq!(c.get(&1), Some(&"a")); // refreshes 1
//! c.insert(3, "c");                  // evicts 2 (least recently used)
//! assert!(c.get(&2).is_none());
//! assert!(c.get(&1).is_some());
//! ```

/// Fixed-capacity LRU map over small key spaces.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    clock: u64,
    entries: Vec<(K, V, u64)>,
}

impl<K: Eq + Copy, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        LruCache {
            capacity,
            clock: 0,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .iter_mut()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, stamp)| {
                *stamp = clock;
                &*v
            })
    }

    /// Looks up without refreshing recency (for statistics probes).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }

    /// Inserts or updates a key, evicting the least recently used entry if
    /// the cache is full. Returns the evicted `(key, value)` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        if let Some(slot) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            slot.1 = value;
            slot.2 = self.clock;
            return None;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((key, value, self.clock));
            return None;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, stamp))| *stamp)
            .map(|(i, _)| i)
            .expect("cache is full, so non-empty");
        let (k, v, _) = std::mem::replace(&mut self.entries[victim], (key, value, self.clock));
        Some((k, v))
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.entries.iter().position(|(k, _, _)| k == key)?;
        Some(self.entries.swap_remove(i).1)
    }

    /// Removes entries failing a predicate (used for TLB shootdowns).
    pub fn retain(&mut self, mut f: impl FnMut(&K, &V) -> bool) {
        self.entries.retain(|(k, v, _)| f(k, v));
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v, _)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(&10)); // 2 is now LRU
        let evicted = c.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn update_refreshes_and_replaces() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none(), "update is not an eviction");
        assert_eq!(c.get(&1), Some(&11));
        c.insert(3, 30); // evicts 2, since 1 was refreshed by update
        assert!(c.peek(&2).is_none());
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        c.insert(3, 30); // 1 is still LRU because peek didn't refresh
        assert!(c.peek(&1).is_none());
        assert!(c.peek(&2).is_some());
    }

    #[test]
    fn remove_and_retain() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.remove(&2), Some(20));
        c.retain(|&k, _| k != 0);
        assert_eq!(c.len(), 2);
        assert!(c.get(&0).is_none());
        assert!(c.get(&2).is_none());
        assert!(c.get(&1).is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        LruCache::<u32, u32>::new(0);
    }
}
