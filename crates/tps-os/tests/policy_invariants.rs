//! Property tests of the OS model: random mmap/fault/munmap churn under
//! every policy must preserve the core invariants — translations resolve
//! to reserved/allocated frames, no two virtual pages share a frame
//! (without CoW), conservative TPS never bloats, and all memory returns on
//! unmap.

use proptest::prelude::*;
use std::collections::HashMap;
use tps_core::rng::Rng;
use tps_core::{PageOrder, TpsError, VirtAddr, BASE_PAGE_SIZE};
use tps_os::{Os, PolicyConfig, PolicyKind, Vma};

fn churn(kind: PolicyKind, seed: u64, ops: u32) -> Result<(), TestCaseError> {
    let mut rng = Rng::new(seed);
    let mut os = Os::new(256 << 20, PolicyConfig::new(kind));
    os.set_background_noise(64); // aggressive interleaving
    let pid = os.spawn();
    let mut vmas: Vec<Vma> = Vec::new();
    let mut touched: Vec<(u64, u64)> = Vec::new(); // (vma base, offset)

    for _ in 0..ops {
        let roll = rng.next_f64();
        if vmas.is_empty() || roll < 0.15 {
            let bytes = BASE_PAGE_SIZE * (1 + rng.below(512));
            let vma = os.mmap(pid, bytes).expect("plenty of memory");
            vmas.push(vma);
        } else if roll < 0.22 {
            let i = rng.below(vmas.len() as u64) as usize;
            let vma = vmas.swap_remove(i);
            touched.retain(|(b, _)| *b != vma.base().value());
            os.munmap(pid, vma.base()).expect("vma was live");
        } else {
            let vma = &vmas[rng.below(vmas.len() as u64) as usize];
            let off = rng.below(vma.len());
            let va = VirtAddr::new(vma.base().value() + off);
            if os.page_table(pid).lookup(va).is_none() {
                os.handle_fault(pid, va, rng.chance(0.5))
                    .expect("in-vma fault");
            }
            touched.push((vma.base().value(), off));
        }
    }

    // Invariant 1: every touched location still translates, inside a live
    // VMA, and distinct virtual base pages map distinct frames.
    let mut frame_owner: HashMap<u64, u64> = HashMap::new();
    for (base, off) in &touched {
        if !vmas.iter().any(|v| v.base().value() == *base) {
            continue;
        }
        let va = VirtAddr::new(base + off);
        let pa = os
            .page_table(pid)
            .translate(va)
            .expect("touched page must stay mapped");
        let vpage = va.align_down(12).value();
        let ppage = pa.align_down(12).value();
        if let Some(prev) = frame_owner.insert(ppage, vpage) {
            prop_assert_eq!(prev, vpage, "frame aliased by two virtual pages");
        }
    }

    // Invariant 2: conservative policies never map more than was touched.
    // (touched_bytes is a lifetime counter — munmap reduces residency but
    // not it — so the bound is one-sided under churn.)
    if matches!(kind, PolicyKind::Only4K | PolicyKind::Thp | PolicyKind::Tps) {
        prop_assert!(
            os.process(pid).resident_bytes() <= os.process(pid).touched_bytes(),
            "resident {} exceeds touched {}",
            os.process(pid).resident_bytes(),
            os.process(pid).touched_bytes()
        );
    }

    // Invariant 3: unmapping everything returns all non-noise memory.
    for vma in vmas {
        os.munmap(pid, vma.base()).expect("live vma");
    }
    prop_assert_eq!(os.process(pid).resident_bytes(), 0);
    os.buddy().check_invariants().map_err(TestCaseError::fail)?;
    // Only kernel-noise blocks may remain allocated.
    let noise_bytes = os.stats().faults / 64 * (2 << 20);
    prop_assert!(
        os.buddy().used_bytes() <= noise_bytes + (2 << 20),
        "leak: {} bytes used, noise bound {}",
        os.buddy().used_bytes(),
        noise_bytes
    );
    Ok(())
}

/// Frame conservation: at every step of a random mmap/fault/munmap/compact
/// sequence, the buddy allocator's frames are fully accounted for —
/// `total = free + reserved + direct-mapped + kernel noise`. Reserved
/// segments count whether or not their pages are mapped yet (mapped leaves
/// draw from reservation frames, never fresh ones).
fn conservation_churn(kind: PolicyKind, seed: u64, ops: u32) -> Result<(), TestCaseError> {
    let mut rng = Rng::new(seed);
    let mut os = Os::new(64 << 20, PolicyConfig::new(kind));
    os.set_background_noise(32);
    let pid = os.spawn();
    let mut vmas: Vec<Vma> = Vec::new();

    for _ in 0..ops {
        let roll = rng.next_f64();
        if vmas.is_empty() || roll < 0.18 {
            let bytes = BASE_PAGE_SIZE * (1 + rng.below(256));
            match os.mmap(pid, bytes) {
                Ok(vma) => vmas.push(vma),
                // Eager policies (RMM) propagate real exhaustion; that is
                // a legitimate outcome, not a conservation failure.
                Err(TpsError::OutOfMemory { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("mmap: {e}"))),
            }
        } else if roll < 0.26 {
            let i = rng.below(vmas.len() as u64) as usize;
            let vma = vmas.swap_remove(i);
            os.munmap(pid, vma.base()).expect("vma was live");
        } else if roll < 0.32 {
            os.compact().expect("movable list is live");
        } else {
            let vma = &vmas[rng.below(vmas.len() as u64) as usize];
            let va = VirtAddr::new(vma.base().value() + rng.below(vma.len()));
            if os.page_table(pid).lookup(va).is_none() {
                match os.handle_fault(pid, va, rng.chance(0.5)) {
                    Ok(_) | Err(TpsError::OutOfMemory { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("fault: {e}"))),
                }
            }
        }

        let reserved: u64 = os
            .process(pid)
            .reservations()
            .iter()
            .flat_map(|r| r.segments())
            .map(|s| s.order.bytes())
            .sum();
        let direct: u64 = os
            .process(pid)
            .direct_blocks()
            .flat_map(|(_, blocks)| blocks.iter())
            .map(|(_, order)| order.bytes())
            .sum();
        let noise = os.noise_blocks().len() as u64 * PageOrder::P2M.bytes();
        prop_assert_eq!(
            os.buddy().total_bytes(),
            os.buddy().free_bytes() + reserved + direct + noise,
            "conservation broke: free {} reserved {} direct {} noise {}",
            os.buddy().free_bytes(),
            reserved,
            direct,
            noise
        );
    }
    os.buddy().check_invariants().map_err(TestCaseError::fail)?;
    Ok(())
}

/// Regression seeds for `buddy_conservation_churn`: the deterministic
/// proptest shim does not persist failures, so seeds worth keeping are
/// pinned here explicitly (one per policy, plus the densest op count).
#[test]
fn buddy_conservation_regression_seeds() {
    for (kind, seed, ops) in [
        (PolicyKind::Only4K, 11_393, 200),
        (PolicyKind::Only2M, 54_021, 180),
        (PolicyKind::Thp, 77_777, 250),
        (PolicyKind::Tps, 6_502, 250),
        (PolicyKind::TpsEager, 90_210, 220),
        (PolicyKind::Rmm, 31_337, 150),
    ] {
        conservation_churn(kind, seed, ops)
            .unwrap_or_else(|e| panic!("{kind:?} seed {seed}: {e:?}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Frame conservation under churn, for every policy kind.
    #[test]
    fn buddy_conservation_churn(
        kind in prop::sample::select(vec![
            PolicyKind::Only4K,
            PolicyKind::Only2M,
            PolicyKind::Thp,
            PolicyKind::Tps,
            PolicyKind::TpsEager,
            PolicyKind::Rmm,
        ]),
        seed in 0u64..100_000,
        ops in 50u32..250,
    ) {
        conservation_churn(kind, seed, ops)?;
    }

    #[test]
    fn only4k_churn(seed in 0u64..100_000, ops in 50u32..250) {
        churn(PolicyKind::Only4K, seed, ops)?;
    }

    #[test]
    fn thp_churn(seed in 0u64..100_000, ops in 50u32..250) {
        churn(PolicyKind::Thp, seed, ops)?;
    }

    #[test]
    fn tps_churn(seed in 0u64..100_000, ops in 50u32..250) {
        churn(PolicyKind::Tps, seed, ops)?;
    }

    #[test]
    fn tps_eager_churn(seed in 0u64..100_000, ops in 50u32..250) {
        churn(PolicyKind::TpsEager, seed, ops)?;
    }

    #[test]
    fn rmm_churn(seed in 0u64..100_000, ops in 50u32..250) {
        churn(PolicyKind::Rmm, seed, ops)?;
    }

    /// TPS under every promotion threshold keeps translations consistent
    /// between the page table and the reservation table.
    #[test]
    fn tps_thresholds_stay_consistent(
        seed in 0u64..100_000,
        threshold in prop::sample::select(vec![0.25, 0.5, 0.75, 1.0]),
    ) {
        let mut rng = Rng::new(seed);
        let mut os = Os::new(
            128 << 20,
            PolicyConfig::new(PolicyKind::Tps).with_threshold(threshold),
        );
        let pid = os.spawn();
        let vma = os.mmap(pid, 4 << 20).unwrap();
        for _ in 0..300 {
            let off = rng.below(vma.len() / BASE_PAGE_SIZE) * BASE_PAGE_SIZE;
            let va = VirtAddr::new(vma.base().value() + off);
            if os.page_table(pid).lookup(va).is_none() {
                os.handle_fault(pid, va, true).unwrap();
            }
            let pt_pa = os.page_table(pid).translate(va).unwrap();
            let res = os.process(pid).reservations().find(va).unwrap();
            let res_pa = res.frame_for(va - res.va_base()).unwrap();
            prop_assert_eq!(pt_pa, res_pa, "PT and reservation disagree");
        }
        // Bloat only ever grows with laxer thresholds; exact at 1.0.
        if threshold == 1.0 {
            prop_assert_eq!(
                os.process(pid).resident_bytes(),
                os.process(pid).touched_bytes()
            );
        } else {
            prop_assert!(os.process(pid).resident_bytes() >= os.process(pid).touched_bytes());
        }
    }

    /// Promotion monotonicity: a page order at a VA never shrinks while
    /// faulting proceeds (pages grow, never spontaneously split).
    #[test]
    fn page_orders_grow_monotonically(seed in 0u64..100_000) {
        let mut rng = Rng::new(seed);
        let mut os = Os::new(64 << 20, PolicyConfig::new(PolicyKind::Tps));
        let pid = os.spawn();
        let vma = os.mmap(pid, 1 << 20).unwrap();
        let probe = VirtAddr::new(vma.base().value());
        os.handle_fault(pid, probe, true).unwrap();
        let mut last = os.page_table(pid).lookup(probe).unwrap().order;
        for _ in 0..256 {
            let off = rng.below(vma.len() / BASE_PAGE_SIZE) * BASE_PAGE_SIZE;
            let va = VirtAddr::new(vma.base().value() + off);
            if os.page_table(pid).lookup(va).is_none() {
                os.handle_fault(pid, va, true).unwrap();
            }
            let now = os.page_table(pid).lookup(probe).unwrap().order;
            prop_assert!(now >= last, "page shrank from {last} to {now}");
            last = now;
        }
        let _ = PageOrder::P4K;
        let _: Option<TpsError> = None;
    }
}
