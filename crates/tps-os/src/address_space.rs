//! Per-process virtual address space: VMA bookkeeping and region placement.

use std::collections::BTreeMap;
use tps_core::{InvariantLayer, PageOrder, TpsError, VirtAddr, BASE_PAGE_SHIFT};

/// A mapped virtual memory area (one `mmap` result).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vma {
    base: VirtAddr,
    len: u64,
}

impl Vma {
    /// First address of the area.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// Length in bytes (a multiple of the base page).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-length area (never produced by `map_region`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr::new(self.base.value() + self.len)
    }

    /// True if `va` lies inside the area.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.base && va < self.end()
    }
}

/// The VMA table of one process plus a bump placement policy.
///
/// Regions are placed at addresses aligned to their covering page order so
/// that TPS promotions up to the whole-region size remain possible, with a
/// guard gap between regions (so no two VMAs can ever share a potential
/// tailored page).
#[derive(Clone, Debug)]
pub struct AddressSpace {
    vmas: BTreeMap<u64, Vma>,
    bump: u64,
}

/// Where process mappings start (4 GB — clear of null and code regions).
const MMAP_BASE: u64 = 1 << 32;

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            vmas: BTreeMap::new(),
            bump: MMAP_BASE,
        }
    }

    /// Number of live VMAs.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// True if no VMAs exist.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    /// Places a new region of `len` bytes (rounded up to whole pages),
    /// aligned to `align`, and records its VMA.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvariantViolation`] if `len` is zero — the mmap
    /// path reports a malformed request instead of panicking.
    pub fn map_region(&mut self, len: u64, align: PageOrder) -> Result<Vma, TpsError> {
        if len == 0 {
            return Err(TpsError::invariant(
                InvariantLayer::Os,
                "cannot map an empty region".to_string(),
            ));
        }
        let len = round_up_pages(len);
        let base = VirtAddr::new(self.bump).align_up(align.shift());
        let vma = Vma { base, len };
        self.vmas.insert(base.value(), vma.clone());
        // Guard gap: skip to the next alignment boundary past the region so
        // a neighboring VMA can never share an aligned tailored-page region.
        self.bump = (base.value() + len + align.bytes()) & !(align.bytes() - 1);
        Ok(vma)
    }

    /// Removes the VMA starting exactly at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::Unmapped`] if no VMA starts there.
    pub fn unmap_region(&mut self, base: VirtAddr) -> Result<Vma, TpsError> {
        self.vmas.remove(&base.value()).ok_or(TpsError::Unmapped {
            vaddr: base.value(),
        })
    }

    /// The VMA containing `va`, if any.
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        let (_, vma) = self.vmas.range(..=va.value()).next_back()?;
        vma.contains(va).then_some(vma)
    }

    /// Iterates VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Total mapped virtual bytes.
    pub fn total_bytes(&self) -> u64 {
        self.vmas.values().map(Vma::len).sum()
    }
}

/// Rounds a byte count up to a whole number of base pages.
pub fn round_up_pages(len: u64) -> u64 {
    let page = 1u64 << BASE_PAGE_SHIFT;
    len.div_ceil(page) * page
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn regions_are_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let v1 = a.map_region(28 << 10, o(3)).unwrap();
        let v2 = a.map_region(1 << 20, o(8)).unwrap();
        assert!(v1.base().is_aligned(12 + 3));
        assert!(v2.base().is_aligned(12 + 8));
        assert!(v2.base() >= v1.end());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn guard_gap_prevents_shared_promotion_regions() {
        let mut a = AddressSpace::new();
        let v1 = a.map_region(4 << 10, o(4)).unwrap(); // 4K region, 64K alignment
        let v2 = a.map_region(4 << 10, o(4)).unwrap();
        // No aligned 64K region contains parts of both VMAs.
        assert!(v2.base().value() - v1.base().align_down(16).value() >= 64 << 10);
    }

    #[test]
    fn len_rounds_to_pages() {
        let mut a = AddressSpace::new();
        let v = a.map_region(5000, o(0)).unwrap();
        assert_eq!(v.len(), 8192);
        assert_eq!(a.total_bytes(), 8192);
    }

    #[test]
    fn find_and_unmap() {
        let mut a = AddressSpace::new();
        let v = a.map_region(64 << 10, o(4)).unwrap();
        let inside = VirtAddr::new(v.base().value() + BASE_PAGE_SIZE);
        assert_eq!(a.find(inside), Some(&v));
        assert!(a.find(VirtAddr::new(v.end().value())).is_none());
        assert!(a.find(VirtAddr::new(v.base().value() - 1)).is_none());
        let removed = a.unmap_region(v.base()).unwrap();
        assert_eq!(removed, v);
        assert!(a.find(inside).is_none());
        assert!(a.unmap_region(v.base()).is_err());
    }

    #[test]
    fn empty_region_is_an_error_not_a_panic() {
        let mut a = AddressSpace::new();
        assert!(matches!(
            a.map_region(0, o(0)),
            Err(TpsError::InvariantViolation { .. })
        ));
        assert!(a.is_empty());
    }

    #[test]
    fn many_regions_stay_sorted() {
        let mut a = AddressSpace::new();
        let vmas: Vec<_> = (0..50)
            .map(|i| a.map_region((i + 1) * BASE_PAGE_SIZE, o(0)).unwrap())
            .collect();
        let listed: Vec<_> = a.iter().cloned().collect();
        assert_eq!(vmas, listed);
    }
}
