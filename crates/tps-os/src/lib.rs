//! Operating-system model for the TPS reproduction (paper §III-B).
//!
//! Provides processes with virtual address spaces, serves `mmap`/`munmap`,
//! and handles page faults under the six paging policies the evaluation
//! compares:
//!
//! * [`PolicyKind::Only4K`] — demand 4 KB paging (THP off).
//! * [`PolicyKind::Only2M`] — exclusive 2 MB paging (the Fig. 9 bloat study).
//! * [`PolicyKind::Thp`] — reservation-based Transparent Huge Pages
//!   (the paper's baseline).
//! * [`PolicyKind::Tps`] — Tailored Page Sizes: whole-request frame
//!   reservations, threshold-driven promotion through every power of two.
//! * [`PolicyKind::TpsEager`] — TPS with eager paging.
//! * [`PolicyKind::Rmm`] — Redundant Memory Mappings: eager paging plus an
//!   OS range table backing the Range TLB.
//!
//! The OS charges every operation to a [`CostModel`] so the simulator can
//! report system time (Fig. 17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address_space;
mod cow;
mod os;
mod policy;

pub use address_space::{round_up_pages, AddressSpace, Vma};
pub use cow::{CowPolicy, FrameShares};
pub use os::{FaultOutcome, Os, OsStats, Process, Shootdown};
pub use policy::{CostModel, PolicyConfig, PolicyKind, ReservationRounding};

// Re-exported so downstream users configure the walker without adding a
// direct tps-pt dependency.
pub use tps_pt::AliasPolicy;
