//! Paging policy configuration (paper §III-B).

use tps_core::PageOrder;

/// The paging policies studied in the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Demand paging with 4 KB pages only (THP disabled).
    Only4K,
    /// Every fault eagerly maps the enclosing 2 MB region with a 2 MB page
    /// (the exclusive-2MB memory-bloat study, Fig. 9).
    Only2M,
    /// Reservation-based Transparent Huge Pages: 2 MB frame reservations,
    /// 4 KB demand mapping, promotion to 2 MB at full utilization — the
    /// paper's baseline for Figs. 10–14.
    #[default]
    Thp,
    /// Tailored Page Sizes with frame reservations and threshold-driven
    /// promotion through every power-of-two size (§III-B1).
    Tps,
    /// TPS with eager paging: the whole request is mapped at `mmap` time
    /// with the exact-span page decomposition (best walk reduction, worst
    /// allocation latency).
    TpsEager,
    /// Redundant Memory Mappings: eager paging + OS range table; page
    /// table itself uses conventional sizes (4 KB / 2 MB).
    Rmm,
}

impl PolicyKind {
    /// All policy kinds, in evaluation order.
    pub fn all() -> [PolicyKind; 6] {
        [
            PolicyKind::Only4K,
            PolicyKind::Only2M,
            PolicyKind::Thp,
            PolicyKind::Tps,
            PolicyKind::TpsEager,
            PolicyKind::Rmm,
        ]
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Only4K => "4K-only",
            PolicyKind::Only2M => "2M-only",
            PolicyKind::Thp => "THP",
            PolicyKind::Tps => "TPS",
            PolicyKind::TpsEager => "TPS-eager",
            PolicyKind::Rmm => "RMM",
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a TPS reservation sizes itself relative to the request (§III-B2,
/// internal fragmentation).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ReservationRounding {
    /// Conservative: the fewest pages exactly spanning the request
    /// (aligned 28 KB → 16 K + 8 K + 4 K). Zero internal fragmentation.
    #[default]
    ExactSpan,
    /// Aggressive: one block of the smallest power of two covering the
    /// request (2052 KB → 4 MB) — up to ~50 % internal fragmentation,
    /// fewest TLB entries.
    PowerOfTwo,
}

/// Full paging-policy configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PolicyConfig {
    /// Which policy runs.
    pub kind: PolicyKind,
    /// Utilization fraction an aligned region must reach before promotion
    /// (1.0 = the paper's conservative no-bloat setting).
    pub promotion_threshold: f64,
    /// Largest page order any policy will create.
    pub max_order: PageOrder,
    /// Reservation sizing mode for TPS.
    pub rounding: ReservationRounding,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            kind: PolicyKind::Thp,
            promotion_threshold: 1.0,
            max_order: PageOrder::P1G,
            rounding: ReservationRounding::ExactSpan,
        }
    }
}

impl PolicyConfig {
    /// Default configuration for a given policy kind.
    pub fn new(kind: PolicyKind) -> Self {
        PolicyConfig {
            kind,
            ..Default::default()
        }
    }

    /// Sets the promotion threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= 1`.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        self.promotion_threshold = threshold;
        self
    }

    /// Caps the largest created page order.
    #[must_use]
    pub fn with_max_order(mut self, max_order: PageOrder) -> Self {
        self.max_order = max_order;
        self
    }

    /// Chooses the reservation rounding mode.
    #[must_use]
    pub fn with_rounding(mut self, rounding: ReservationRounding) -> Self {
        self.rounding = rounding;
        self
    }
}

/// Cost model for OS work, in core cycles (system-time accounting for the
/// paper's Fig. 17). Values are calibration knobs, not measurements.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed cost of taking any page fault (trap + handler entry/exit).
    pub fault_base: u64,
    /// Cost per PTE store.
    pub pte_write: u64,
    /// Cost per buddy-allocator operation (alloc/free incl. splits/merges).
    pub buddy_op: u64,
    /// Cost of zeroing one newly delivered 4 KB page.
    pub zero_4k: u64,
    /// Cost of creating or consulting a reservation entry.
    pub reservation_op: u64,
    /// Fixed extra cost of a page promotion.
    pub promote_op: u64,
    /// Cost of issuing one TLB shootdown.
    pub shootdown: u64,
    /// Cost of migrating one 4 KB page during compaction.
    pub compact_page: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            fault_base: 1200,
            pte_write: 12,
            buddy_op: 150,
            zero_4k: 500,
            reservation_op: 200,
            promote_op: 400,
            shootdown: 800,
            compact_page: 600,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let labels: Vec<_> = PolicyKind::all().iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn builder_chain() {
        let c = PolicyConfig::new(PolicyKind::Tps)
            .with_threshold(0.5)
            .with_max_order(PageOrder::new(14).unwrap())
            .with_rounding(ReservationRounding::PowerOfTwo);
        assert_eq!(c.kind, PolicyKind::Tps);
        assert_eq!(c.promotion_threshold, 0.5);
        assert_eq!(c.max_order.get(), 14);
        assert_eq!(c.rounding, ReservationRounding::PowerOfTwo);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_zero_threshold() {
        let _ = PolicyConfig::default().with_threshold(0.0);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(PolicyKind::Tps.to_string(), "TPS");
        assert_eq!(PolicyKind::Thp.to_string(), "THP");
    }
}
