//! Fork and copy-on-write (paper §III-C3).
//!
//! With larger pages, CoW sharing opportunities shrink and write faults
//! get more expensive. The paper describes two options on a write to a
//! shared large page: copy the *whole* range (costly, preserves TLB
//! reach) or copy only the written part as a *smaller* page and keep
//! sharing the rest (cheap, fragments the mapping). Both are implemented
//! here; the ablation benches compare them.

use tps_core::PageOrder;

/// What the CoW write-fault handler copies on a fault to a shared page.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CowPolicy {
    /// Copy the entire shared page, whatever its size: expensive copies,
    /// but the mapping keeps its large-page TLB reach.
    #[default]
    CopyWholePage,
    /// Copy only the faulting base page; the rest of the large page is
    /// re-mapped as smaller pages that keep sharing the original frames.
    CopySmallest,
}

/// Reference counts of physically shared pages, keyed by
/// `(frame base-page number, order)`.
///
/// Only pages that have ever been shared appear; absence means refcount 1.
#[derive(Clone, Debug, Default)]
pub struct FrameShares {
    counts: std::collections::HashMap<(u64, u8), u32>,
}

impl FrameShares {
    /// Creates an empty share table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one more sharer of a frame (absent entries start at 1).
    pub fn share(&mut self, pfn: u64, order: PageOrder) {
        *self.counts.entry((pfn, order.get())).or_insert(1) += 1;
    }

    /// Current sharer count.
    pub fn count(&self, pfn: u64, order: PageOrder) -> u32 {
        self.counts.get(&(pfn, order.get())).copied().unwrap_or(1)
    }

    /// Drops one sharer; returns the remaining count. Entries reaching 1
    /// are removed (sole ownership).
    ///
    /// # Panics
    ///
    /// Panics if the frame was not shared.
    pub fn release(&mut self, pfn: u64, order: PageOrder) -> u32 {
        let key = (pfn, order.get());
        let c = self
            .counts
            .get_mut(&key)
            .expect("releasing a frame that was never shared");
        *c -= 1;
        let remaining = *c;
        if remaining <= 1 {
            self.counts.remove(&key);
        }
        remaining
    }

    /// Splits the share bookkeeping of a large frame into its constituent
    /// sub-frames at `sub_order` (used by [`CowPolicy::CopySmallest`]):
    /// every sub-frame inherits the parent's sharer count.
    pub fn split(&mut self, pfn: u64, order: PageOrder, sub_order: PageOrder) {
        assert!(sub_order < order, "split must reduce the order");
        let key = (pfn, order.get());
        if let Some(c) = self.counts.remove(&key) {
            let subs = 1u64 << (order.get() - sub_order.get());
            for i in 0..subs {
                self.counts
                    .insert((pfn + i * sub_order.base_pages(), sub_order.get()), c);
            }
        }
    }

    /// Number of distinct shared frames tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if nothing is shared.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn share_and_release() {
        let mut s = FrameShares::new();
        assert_eq!(s.count(100, o(0)), 1);
        s.share(100, o(0));
        assert_eq!(s.count(100, o(0)), 2);
        s.share(100, o(0));
        assert_eq!(s.count(100, o(0)), 3);
        assert_eq!(s.release(100, o(0)), 2);
        assert_eq!(s.release(100, o(0)), 1);
        assert!(s.is_empty(), "sole ownership drops the entry");
        assert_eq!(s.count(100, o(0)), 1);
    }

    #[test]
    fn orders_are_distinct_keys() {
        let mut s = FrameShares::new();
        s.share(0, o(3));
        assert_eq!(s.count(0, o(3)), 2);
        assert_eq!(s.count(0, o(0)), 1, "different order, different page");
    }

    #[test]
    fn split_propagates_counts() {
        let mut s = FrameShares::new();
        s.share(64, o(3)); // a shared 32K page at pfn 64
        s.split(64, o(3), o(0));
        for i in 0..8 {
            assert_eq!(s.count(64 + i, o(0)), 2, "sub-page {i}");
        }
        assert_eq!(s.count(64, o(3)), 1, "parent entry gone");
    }

    #[test]
    #[should_panic(expected = "never shared")]
    fn release_unshared_panics() {
        FrameShares::new().release(5, o(0));
    }
}
