//! The operating-system model: processes, mmap/munmap, the page-fault
//! handler, and the paging policies of the paper's evaluation.

use crate::address_space::{round_up_pages, AddressSpace, Vma};
use crate::cow::{CowPolicy, FrameShares};
use crate::policy::{CostModel, PolicyConfig, PolicyKind, ReservationRounding};
use std::collections::BTreeMap;
use tps_core::inject::{self, FaultSite, InjectorHandle};
use tps_core::{
    InvariantLayer, PageOrder, PhysAddr, PteFlags, TpsError, VirtAddr, BASE_PAGE_SHIFT,
    BASE_PAGE_SIZE,
};
use tps_mem::compaction::{compact, CompactionOutcome};
use tps_mem::reservation::reserve_span;
use tps_mem::{BuddyAllocator, ReservationTable, Segment};
use tps_pt::PageTable;
use tps_tlb::{Asid, RangeEntry};

/// A TLB invalidation the OS requires the hardware to perform.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Shootdown {
    /// Address space to invalidate in.
    pub asid: Asid,
    /// Page base address.
    pub va: VirtAddr,
    /// Page order.
    pub order: PageOrder,
}

/// How the reservation fault path is allowed to grow a mapping.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum PromotionMode {
    /// Promote to any power-of-two order up to the cap (TPS).
    AnyPowerOfTwo(PageOrder),
    /// Promote only to exactly this order, when fully reachable (THP's
    /// conventional 2 MB promotion).
    ExactOrder(PageOrder),
}

/// What a handled page fault did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The faulting address.
    pub va: VirtAddr,
    /// Order of the leaf now covering `va`.
    pub mapped_order: PageOrder,
    /// True if this fault promoted the mapping to a larger page.
    pub promoted: bool,
}

/// Aggregate OS activity counters (system-time model, Fig. 17).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OsStats {
    /// `mmap` calls served.
    pub mmaps: u64,
    /// `munmap` calls served.
    pub munmaps: u64,
    /// Page faults handled.
    pub faults: u64,
    /// Page promotions performed.
    pub promotions: u64,
    /// Frame reservations created.
    pub reservations_created: u64,
    /// Faults served without any reservation (fragmentation fallback).
    pub fallback_4k: u64,
    /// TLB shootdowns issued.
    pub shootdowns: u64,
    /// Copy-on-write write faults handled.
    pub cow_faults: u64,
    /// Bytes copied by CoW faults.
    pub cow_bytes_copied: u64,
    /// Total modeled OS cycles (allocator + page table + handler work).
    pub op_cycles: u64,
    /// Degradations caused specifically by a failed physical allocation
    /// (exhaustion or an injected fault), as opposed to alignment-driven
    /// 4 KB fallbacks. Always `<= fallback_4k`.
    pub oom_fallbacks: u64,
    /// Compaction passes interrupted before processing every movable block.
    pub compaction_aborts: u64,
    /// TLB-shootdown IPIs re-issued after the delivery was dropped (only a
    /// fault injector can drop one; zero in normal operation).
    pub shootdowns_retried: u64,
}

impl OsStats {
    /// Counter-wise difference `self - earlier`, for attributing OS work
    /// to the tenant whose event triggered it: the multi-tenant machine
    /// snapshots the machine-wide counters around each event and charges
    /// the delta to the acting tenant.
    pub fn delta_since(&self, earlier: &OsStats) -> OsStats {
        OsStats {
            mmaps: self.mmaps - earlier.mmaps,
            munmaps: self.munmaps - earlier.munmaps,
            faults: self.faults - earlier.faults,
            promotions: self.promotions - earlier.promotions,
            reservations_created: self.reservations_created - earlier.reservations_created,
            fallback_4k: self.fallback_4k - earlier.fallback_4k,
            shootdowns: self.shootdowns - earlier.shootdowns,
            cow_faults: self.cow_faults - earlier.cow_faults,
            cow_bytes_copied: self.cow_bytes_copied - earlier.cow_bytes_copied,
            op_cycles: self.op_cycles - earlier.op_cycles,
            oom_fallbacks: self.oom_fallbacks - earlier.oom_fallbacks,
            compaction_aborts: self.compaction_aborts - earlier.compaction_aborts,
            shootdowns_retried: self.shootdowns_retried - earlier.shootdowns_retried,
        }
    }

    /// Adds `delta` into this counter set (the accumulation side of
    /// [`OsStats::delta_since`]).
    pub fn accumulate(&mut self, delta: &OsStats) {
        self.mmaps += delta.mmaps;
        self.munmaps += delta.munmaps;
        self.faults += delta.faults;
        self.promotions += delta.promotions;
        self.reservations_created += delta.reservations_created;
        self.fallback_4k += delta.fallback_4k;
        self.shootdowns += delta.shootdowns;
        self.cow_faults += delta.cow_faults;
        self.cow_bytes_copied += delta.cow_bytes_copied;
        self.op_cycles += delta.op_cycles;
        self.oom_fallbacks += delta.oom_fallbacks;
        self.compaction_aborts += delta.compaction_aborts;
        self.shootdowns_retried += delta.shootdowns_retried;
    }
}

/// One simulated process.
#[derive(Clone, Debug)]
pub struct Process {
    asid: Asid,
    page_table: PageTable,
    address_space: AddressSpace,
    reservations: ReservationTable,
    /// RMM range table, sorted by `start_vpn`.
    ranges: Vec<RangeEntry>,
    /// Directly allocated blocks (no reservation), keyed by VMA base.
    direct_blocks: BTreeMap<u64, Vec<(PhysAddr, PageOrder)>>,
    /// Distinct base pages demand-touched (for footprint accounting).
    touched_pages: u64,
}

impl Process {
    /// The process's address-space identifier.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The process page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The process address space (VMA list).
    pub fn address_space(&self) -> &AddressSpace {
        &self.address_space
    }

    /// The reservation table.
    pub fn reservations(&self) -> &ReservationTable {
        &self.reservations
    }

    /// The RMM range table.
    pub fn ranges(&self) -> &[RangeEntry] {
        &self.ranges
    }

    /// Bytes of virtual memory currently mapped (resident set).
    pub fn resident_bytes(&self) -> u64 {
        self.page_table.mapped_bytes()
    }

    /// Bytes actually demand-touched at base-page granularity.
    pub fn touched_bytes(&self) -> u64 {
        self.touched_pages << BASE_PAGE_SHIFT
    }

    /// Directly allocated blocks (no reservation) per owning VMA base —
    /// exposed for cross-layer audits of physical-frame ownership.
    pub fn direct_blocks(&self) -> impl Iterator<Item = (u64, &[(PhysAddr, PageOrder)])> {
        self.direct_blocks.iter().map(|(&b, v)| (b, v.as_slice()))
    }
}

/// The operating system: one buddy allocator plus per-process state.
///
/// # Example
///
/// ```
/// use tps_os::{Os, PolicyConfig, PolicyKind};
/// use tps_core::VirtAddr;
///
/// let mut os = Os::new(256 << 20, PolicyConfig::new(PolicyKind::Tps));
/// let pid = os.spawn();
/// let vma = os.mmap(pid, 1 << 20).unwrap();
/// // First touch demand-maps a 4 KB page from the reservation.
/// let out = os.handle_fault(pid, vma.base(), false).unwrap();
/// assert_eq!(out.mapped_order.get(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Os {
    buddy: BuddyAllocator,
    policy: PolicyConfig,
    cost: CostModel,
    processes: Vec<Process>,
    stats: OsStats,
    /// Every `noise_period` faults the kernel/other tenants take a 2 MB
    /// block of their own (0 = off). A single pristine process would see
    /// unrealistically perfect physical adjacency between its buddy
    /// allocations; this reproduces the interleaving real systems have,
    /// which is what bounds CoLT's coalesced run lengths.
    noise_period: u64,
    noise_counter: u64,
    noise_blocks: Vec<PhysAddr>,
    /// Copy-on-write bookkeeping (paper §III-C3).
    shares: FrameShares,
    cow_policy: CowPolicy,
    /// Radix levels for newly spawned processes (4 or 5).
    pt_levels: u8,
    /// Fine-grained A/D tracking for newly spawned processes (§III-C1).
    fine_grained_ad: bool,
    /// Fault injector consulted for dropped shootdown IPIs; the same handle
    /// is installed on the buddy allocator for allocation-site faults.
    injector: Option<InjectorHandle>,
}

impl Os {
    /// Creates an OS managing `total_bytes` of fresh physical memory.
    pub fn new(total_bytes: u64, policy: PolicyConfig) -> Self {
        Self::with_buddy(BuddyAllocator::new(total_bytes), policy)
    }

    /// Creates an OS over an existing (possibly fragmented) allocator —
    /// the Fig. 15/16 heavy-load scenario.
    pub fn with_buddy(buddy: BuddyAllocator, policy: PolicyConfig) -> Self {
        Os {
            buddy,
            policy,
            cost: CostModel::default(),
            processes: Vec::new(),
            stats: OsStats::default(),
            noise_period: 0,
            noise_counter: 0,
            noise_blocks: Vec::new(),
            shares: FrameShares::new(),
            cow_policy: CowPolicy::default(),
            pt_levels: 4,
            fine_grained_ad: false,
            injector: None,
        }
    }

    /// Installs a deterministic fault injector across the whole OS stack:
    /// buddy allocations, span reservations, compaction steps (via the
    /// allocator), TLB-shootdown delivery (checked here), and alias-PTE
    /// installs in every process page table — existing and future. Pass
    /// `None` to remove it; with no injector every hook is a single branch
    /// and behavior is identical to an uninstrumented build.
    pub fn set_fault_injector(&mut self, injector: Option<InjectorHandle>) {
        self.buddy.set_injector(injector.clone());
        for proc in &mut self.processes {
            proc.page_table.set_fault_injector(injector.clone());
        }
        self.injector = injector;
    }

    /// Enables fine-grained A/D bit vectors (paper §III-C1) for processes
    /// spawned afterwards: tailored pages track which sixteenth was
    /// written, so swap-out need not write the whole page back.
    pub fn set_fine_grained_ad(&mut self, enabled: bool) {
        self.fine_grained_ad = enabled;
    }

    /// Selects 4- or 5-level paging for processes spawned afterwards.
    ///
    /// # Panics
    ///
    /// Panics unless `levels` is 4 or 5.
    pub fn set_page_table_levels(&mut self, levels: u8) {
        assert!(levels == 4 || levels == 5, "only 4- or 5-level paging");
        self.pt_levels = levels;
    }

    /// Selects the copy-on-write policy (paper §III-C3).
    pub fn set_cow_policy(&mut self, policy: CowPolicy) {
        self.cow_policy = policy;
    }

    /// Enables background-allocation noise: every `period` faults, a
    /// foreign 2 MB block is allocated (never freed), as kernel and
    /// neighbor-tenant activity does on real machines. Pass 0 to disable.
    pub fn set_background_noise(&mut self, period: u64) {
        self.noise_period = period;
    }

    /// The active policy configuration.
    pub fn policy(&self) -> PolicyConfig {
        self.policy
    }

    /// Replaces the OS cost model.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Activity counters so far.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// The physical allocator (inspection only).
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Number of processes spawned so far (ASIDs are `0..count`).
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Blocks taken by simulated background/kernel noise (never freed).
    /// Each is a pinned 2 MB allocation; exposed for cross-layer audits.
    pub fn noise_blocks(&self) -> &[PhysAddr] {
        &self.noise_blocks
    }

    /// Models IPI delivery for a batch of shootdowns: an installed fault
    /// injector may drop a delivery, which the OS detects (ack timeout) and
    /// re-issues, counting [`OsStats::shootdowns_retried`]. The returned
    /// shootdown lists are therefore always complete. Bounded retries keep
    /// a pathological injector from hanging the simulation.
    fn deliver_shootdowns(&mut self, shootdowns: &[Shootdown]) {
        if self.injector.is_none() {
            return;
        }
        const MAX_RETRIES: u32 = 8;
        for _ in shootdowns {
            let mut attempts = 0;
            while attempts < MAX_RETRIES
                && inject::should_fault(&self.injector, FaultSite::ShootdownDeliver)
            {
                self.stats.shootdowns_retried += 1;
                self.charge(self.cost.shootdown);
                attempts += 1;
            }
        }
    }

    /// Creates a process, returning its ASID.
    pub fn spawn(&mut self) -> Asid {
        let asid = self.processes.len() as Asid;
        let mut page_table = PageTable::with_levels(self.pt_levels);
        page_table.set_fine_grained_ad(self.fine_grained_ad);
        page_table.set_fault_injector(self.injector.clone());
        self.processes.push(Process {
            asid,
            page_table,
            address_space: AddressSpace::new(),
            reservations: ReservationTable::new(),
            ranges: Vec::new(),
            direct_blocks: BTreeMap::new(),
            touched_pages: 0,
        });
        asid
    }

    /// Shared access to a process.
    ///
    /// # Panics
    ///
    /// Panics if `asid` was not returned by [`Os::spawn`].
    pub fn process(&self, asid: Asid) -> &Process {
        &self.processes[asid as usize]
    }

    fn proc_mut(&mut self, asid: Asid) -> &mut Process {
        &mut self.processes[asid as usize]
    }

    /// The page table of a process (for the hardware walker).
    pub fn page_table(&self, asid: Asid) -> &PageTable {
        &self.processes[asid as usize].page_table
    }

    /// Hardware Accessed/Dirty-bit update on the true PTE for `va` — done
    /// by the page-walk hardware, so *not* charged as system time. Returns
    /// `true` if a store was actually performed (the bits are sticky).
    pub fn hw_mark_accessed(&mut self, asid: Asid, va: VirtAddr, dirty: bool) -> bool {
        self.proc_mut(asid).page_table.mark_accessed(va, dirty)
    }

    /// CoLT's PTE-cache-line probe: the `(pfn, writable)` mapping of a base
    /// page if one is mapped.
    pub fn probe_mapping(&self, asid: Asid, vpn: u64) -> Option<(u64, bool)> {
        let va = VirtAddr::new(vpn << BASE_PAGE_SHIFT);
        let leaf = self.processes[asid as usize].page_table.lookup(va)?;
        let pfn = leaf.base.base_page_number()
            + (vpn - va.align_down(leaf.order.shift()).base_page_number());
        Some((pfn, leaf.flags.contains(PteFlags::WRITABLE)))
    }

    /// CoLT's probe generalized to any granularity: the `(frame, writable)`
    /// mapping of the page numbered `upn` *at the given order*, provided a
    /// leaf of exactly that order maps it (runs only coalesce equal sizes).
    pub fn probe_mapping_order(
        &self,
        asid: Asid,
        upn: u64,
        order: PageOrder,
    ) -> Option<(u64, bool)> {
        let va = VirtAddr::new(upn << (BASE_PAGE_SHIFT + order.get() as u32));
        let leaf = self.processes[asid as usize].page_table.lookup(va)?;
        if leaf.order != order {
            return None;
        }
        Some((
            leaf.base.value() >> (BASE_PAGE_SHIFT + order.get() as u32),
            leaf.flags.contains(PteFlags::WRITABLE),
        ))
    }

    /// RMM range-table lookup (refills the Range TLB after a walk).
    pub fn range_for(&self, asid: Asid, va: VirtAddr) -> Option<RangeEntry> {
        let vpn = va.base_page_number();
        let ranges = &self.processes[asid as usize].ranges;
        let idx = ranges
            .partition_point(|r| r.start_vpn <= vpn)
            .checked_sub(1)?;
        let r = ranges[idx];
        (vpn < r.end_vpn).then_some(r)
    }

    fn charge(&mut self, cycles: u64) {
        self.stats.op_cycles += cycles;
    }

    /// Allocates a block directly (no reservation), recording ownership
    /// under the VMA for later munmap.
    fn alloc_direct(
        &mut self,
        asid: Asid,
        vma_base: VirtAddr,
        order: PageOrder,
    ) -> Result<PhysAddr, TpsError> {
        let pa = self.buddy.alloc(order)?;
        self.charge(self.cost.buddy_op + self.cost.zero_4k * order.base_pages());
        self.proc_mut(asid)
            .direct_blocks
            .entry(vma_base.value())
            .or_default()
            .push((pa, order));
        Ok(pa)
    }

    /// Serves an `mmap` of `len` bytes for the process.
    ///
    /// Policy-dependent: TPS/RMM create reservations (and, when eager, full
    /// mappings) here; demand policies only record the VMA.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::OutOfMemory`] only for eager policies that could
    /// not back the region at all; reservation failures degrade to demand
    /// 4 KB faulting instead. A zero-length request is reported as
    /// [`TpsError::InvariantViolation`].
    pub fn mmap(&mut self, asid: Asid, len: u64) -> Result<Vma, TpsError> {
        let len_r = round_up_pages(len);
        let covering = PageOrder::covering(len_r).unwrap_or(self.policy.max_order);
        let align = covering.min(self.policy.max_order);
        let vma = self.proc_mut(asid).address_space.map_region(len_r, align)?;
        self.stats.mmaps += 1;
        self.charge(self.cost.reservation_op);

        match self.policy.kind {
            PolicyKind::Only4K | PolicyKind::Only2M | PolicyKind::Thp => {}
            PolicyKind::Tps | PolicyKind::TpsEager => {
                let reserve_len = match self.policy.rounding {
                    ReservationRounding::ExactSpan => len_r,
                    ReservationRounding::PowerOfTwo if covering <= self.policy.max_order => {
                        covering.bytes()
                    }
                    // Request larger than the max page: power-of-two
                    // rounding cannot help; use the exact span.
                    ReservationRounding::PowerOfTwo => len_r,
                };
                match reserve_span(&mut self.buddy, reserve_len, self.policy.max_order) {
                    Ok(segments) => {
                        self.charge(self.cost.buddy_op * segments.len() as u64);
                        let backup = segments.clone();
                        if self
                            .install_reservation(asid, vma.base(), reserve_len, segments)
                            .is_err()
                        {
                            // Installing can only fail on a VA overlap, which
                            // the fresh VMA rules out — but stay panic-free:
                            // return the frames and degrade to 4 KB faulting.
                            for s in backup {
                                let _ = self.buddy.free(s.base, s.order);
                            }
                            self.stats.fallback_4k += 1;
                        } else if self.policy.kind == PolicyKind::TpsEager
                            && self.map_reservation_eagerly(asid, vma.base()).is_err()
                        {
                            self.rollback_reservation(asid, vma.base());
                        }
                    }
                    Err(e @ TpsError::InvariantViolation { .. }) => return Err(e),
                    Err(_) => {
                        // Degrade to 4 KB demand faulting (fragmentation or
                        // an injected reservation denial).
                        self.stats.fallback_4k += 1;
                        self.stats.oom_fallbacks += 1;
                    }
                }
            }
            PolicyKind::Rmm => {
                let segments = reserve_span(&mut self.buddy, len_r, self.policy.max_order)?;
                self.charge(self.cost.buddy_op * segments.len() as u64);
                self.map_rmm_eagerly(asid, &vma, segments)?;
            }
        }
        Ok(vma)
    }

    /// Undoes a freshly installed reservation after a failure on the eager
    /// mapping path: unmaps whatever leaves were already installed, frees
    /// the reserved frames, and leaves the VMA to demand 4 KB faulting.
    fn rollback_reservation(&mut self, asid: Asid, va_base: VirtAddr) {
        let Some(res) = self.proc_mut(asid).reservations.remove(va_base) else {
            return;
        };
        for seg in res.segments() {
            let va = VirtAddr::new(va_base.value() + seg.offset);
            let proc = self.proc_mut(asid);
            if proc
                .page_table
                .lookup(va)
                .is_some_and(|l| l.order == seg.order)
            {
                let _ = proc.page_table.unmap(va, seg.order);
            }
            let _ = self.buddy.free(seg.base, seg.order);
        }
        self.stats.fallback_4k += 1;
    }

    fn install_reservation(
        &mut self,
        asid: Asid,
        va_base: VirtAddr,
        len: u64,
        segments: Vec<Segment>,
    ) -> Result<(), TpsError> {
        self.proc_mut(asid)
            .reservations
            .insert(va_base, len, segments)?;
        self.stats.reservations_created += 1;
        self.charge(self.cost.reservation_op);
        Ok(())
    }

    /// Maps every reserved segment as one page of its own order (TPS eager
    /// paging). The whole cost — zeroing included — lands on the `mmap`.
    fn map_reservation_eagerly(&mut self, asid: Asid, va_base: VirtAddr) -> Result<(), TpsError> {
        let segments: Vec<Segment> = {
            let proc = self.proc_mut(asid);
            let proc_res = proc.reservations.find(va_base).ok_or_else(|| {
                TpsError::invariant(
                    InvariantLayer::Reservation,
                    format!("just-installed reservation at {va_base} missing"),
                )
            })?;
            proc_res.segments().to_vec()
        };
        let mut pte_cost = 0u64;
        let mut zero_pages = 0u64;
        {
            let proc = self.proc_mut(asid);
            for seg in &segments {
                let va = VirtAddr::new(va_base.value() + seg.offset);
                let before = proc.page_table.pte_writes();
                proc.page_table.map(
                    va,
                    seg.base,
                    seg.order,
                    PteFlags::WRITABLE | PteFlags::USER,
                )?;
                pte_cost += proc.page_table.pte_writes() - before;
                zero_pages += seg.order.base_pages();
            }
        }
        self.charge(self.cost.pte_write * pte_cost + self.cost.zero_4k * zero_pages);
        Ok(())
    }

    /// RMM eager paging: map conventionally (2 MB where aligned, else
    /// 4 KB), register contiguous ranges in the range table, and record the
    /// blocks for munmap.
    fn map_rmm_eagerly(
        &mut self,
        asid: Asid,
        vma: &Vma,
        segments: Vec<Segment>,
    ) -> Result<(), TpsError> {
        let two_m = PageOrder::P2M.bytes();
        let mut pte_cost = 0u64;
        let mut zero_pages = 0u64;
        {
            let proc = self.proc_mut(asid);
            // Record frame ownership.
            proc.direct_blocks
                .entry(vma.base().value())
                .or_default()
                .extend(segments.iter().map(|s| (s.base, s.order)));
            // Conventional-size mapping inside each segment.
            for seg in &segments {
                let mut off = 0u64;
                while off < seg.order.bytes() {
                    let va = VirtAddr::new(vma.base().value() + seg.offset + off);
                    let pa = PhysAddr::new(seg.base.value() + off);
                    let remaining = seg.order.bytes() - off;
                    let order = if va.is_aligned(21) && pa.is_aligned(21) && remaining >= two_m {
                        PageOrder::P2M
                    } else {
                        PageOrder::P4K
                    };
                    let before = proc.page_table.pte_writes();
                    proc.page_table
                        .map(va, pa, order, PteFlags::WRITABLE | PteFlags::USER)?;
                    pte_cost += proc.page_table.pte_writes() - before;
                    zero_pages += order.base_pages();
                    off += order.bytes();
                }
            }
            // Coalesce physically contiguous consecutive segments into
            // ranges (RMM ranges have no size/alignment restrictions).
            let mut i = 0usize;
            while i < segments.len() {
                let start = &segments[i];
                let mut end_pa = start.base.value() + start.order.bytes();
                let mut end_off = start.offset + start.order.bytes();
                let mut j = i + 1;
                while j < segments.len()
                    && segments[j].base.value() == end_pa
                    && segments[j].offset == end_off
                {
                    end_pa += segments[j].order.bytes();
                    end_off += segments[j].order.bytes();
                    j += 1;
                }
                let start_vpn = (vma.base().value() + start.offset) >> BASE_PAGE_SHIFT;
                let end_vpn = (vma.base().value() + end_off) >> BASE_PAGE_SHIFT;
                let pfn = start.base.base_page_number();
                proc.ranges.push(RangeEntry {
                    asid,
                    start_vpn,
                    end_vpn,
                    delta: pfn as i64 - start_vpn as i64,
                    writable: true,
                });
                i = j;
            }
            proc.ranges.sort_by_key(|r| r.start_vpn);
        }
        self.charge(self.cost.pte_write * pte_cost + self.cost.zero_4k * zero_pages);
        Ok(())
    }

    /// Handles a page fault at `va`.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::Unmapped`] if `va` lies in no VMA (a real
    /// segfault — the simulator treats this as a workload bug).
    pub fn handle_fault(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        _is_write: bool,
    ) -> Result<FaultOutcome, TpsError> {
        let vma = self.processes[asid as usize]
            .address_space
            .find(va)
            .cloned()
            .ok_or(TpsError::Unmapped { vaddr: va.value() })?;
        self.stats.faults += 1;
        self.charge(self.cost.fault_base);

        // Background allocator interference (see `set_background_noise`).
        if self.noise_period > 0 {
            self.noise_counter += 1;
            if self.noise_counter.is_multiple_of(self.noise_period) {
                if let Ok(block) = self.buddy.alloc(PageOrder::P2M) {
                    self.noise_blocks.push(block);
                }
            }
        }

        match self.policy.kind {
            PolicyKind::Only4K => self.fault_direct_4k(asid, &vma, va),
            PolicyKind::Only2M => self.fault_only_2m(asid, &vma, va),
            PolicyKind::Thp => self.fault_thp(asid, &vma, va),
            PolicyKind::Tps | PolicyKind::TpsEager => self.fault_tps(asid, &vma, va),
            PolicyKind::Rmm => self.fault_direct_4k(asid, &vma, va),
        }
    }

    fn map_counted(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        pa: PhysAddr,
        order: PageOrder,
        flags: PteFlags,
    ) -> Result<(), TpsError> {
        let proc = self.proc_mut(asid);
        let before = proc.page_table.pte_writes();
        proc.page_table.map(va, pa, order, flags)?;
        let writes = proc.page_table.pte_writes() - before;
        self.charge(self.cost.pte_write * writes);
        Ok(())
    }

    fn fault_direct_4k(
        &mut self,
        asid: Asid,
        vma: &Vma,
        va: VirtAddr,
    ) -> Result<FaultOutcome, TpsError> {
        let page_va = va.align_down(BASE_PAGE_SHIFT);
        let pa = self.alloc_direct(asid, vma.base(), PageOrder::P4K)?;
        self.map_counted(
            asid,
            page_va,
            pa,
            PageOrder::P4K,
            PteFlags::WRITABLE | PteFlags::USER,
        )?;
        self.proc_mut(asid).touched_pages += 1;
        Ok(FaultOutcome {
            va,
            mapped_order: PageOrder::P4K,
            promoted: false,
        })
    }

    fn fault_only_2m(
        &mut self,
        asid: Asid,
        vma: &Vma,
        va: VirtAddr,
    ) -> Result<FaultOutcome, TpsError> {
        let chunk = va.align_down(PageOrder::P2M.shift());
        let chunk_end = chunk.value() + PageOrder::P2M.bytes();
        if chunk >= vma.base() && chunk_end <= vma.end().value() {
            if let Ok(pa) = self.alloc_direct(asid, vma.base(), PageOrder::P2M) {
                self.map_counted(
                    asid,
                    chunk,
                    pa,
                    PageOrder::P2M,
                    PteFlags::WRITABLE | PteFlags::USER,
                )?;
                self.proc_mut(asid).touched_pages += 1;
                return Ok(FaultOutcome {
                    va,
                    mapped_order: PageOrder::P2M,
                    promoted: false,
                });
            }
        }
        // Tail of the VMA (or no 2M contiguity): fall back to 4 KB. Inside
        // the VMA the only way here is a failed 2 MB allocation.
        let whole_chunk_inside = chunk >= vma.base() && chunk_end <= vma.end().value();
        if whole_chunk_inside {
            self.stats.oom_fallbacks += 1;
        }
        self.stats.fallback_4k += 1;
        self.fault_direct_4k(asid, vma, va)
    }

    fn fault_thp(&mut self, asid: Asid, vma: &Vma, va: VirtAddr) -> Result<FaultOutcome, TpsError> {
        let chunk = va.align_down(PageOrder::P2M.shift());
        let chunk_end = chunk.value() + PageOrder::P2M.bytes();
        let has_reservation = self.processes[asid as usize]
            .reservations
            .find(va)
            .is_some();
        if !has_reservation {
            if chunk >= vma.base() && chunk_end <= vma.end().value() {
                // Try to reserve a whole 2M frame for this chunk.
                match self.buddy.alloc(PageOrder::P2M) {
                    Ok(block) => {
                        self.charge(self.cost.buddy_op);
                        self.install_reservation(
                            asid,
                            chunk,
                            PageOrder::P2M.bytes(),
                            vec![Segment {
                                offset: 0,
                                base: block,
                                order: PageOrder::P2M,
                            }],
                        )?;
                    }
                    Err(_) => {
                        self.stats.fallback_4k += 1;
                        self.stats.oom_fallbacks += 1;
                        return self.fault_direct_4k(asid, vma, va);
                    }
                }
            } else {
                // VMA tail smaller than 2M: demand 4K.
                self.stats.fallback_4k += 1;
                return self.fault_direct_4k(asid, vma, va);
            }
        }
        self.fault_from_reservation(asid, va, PromotionMode::ExactOrder(PageOrder::P2M))
    }

    fn fault_tps(&mut self, asid: Asid, vma: &Vma, va: VirtAddr) -> Result<FaultOutcome, TpsError> {
        if self.processes[asid as usize]
            .reservations
            .find(va)
            .is_some()
        {
            let cap = self.policy.max_order;
            self.fault_from_reservation(asid, va, PromotionMode::AnyPowerOfTwo(cap))
        } else {
            // Reservation failed at mmap time (fragmentation fallback).
            self.stats.fallback_4k += 1;
            self.fault_direct_4k(asid, vma, va)
        }
    }

    /// The shared reservation fault path: map the demanded 4 KB page from
    /// the reserved frames, mark utilization, and promote the mapping when
    /// the enclosing aligned region reaches the promotion threshold.
    fn fault_from_reservation(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        mode: PromotionMode,
    ) -> Result<FaultOutcome, TpsError> {
        let threshold = self.policy.promotion_threshold;
        let res_invariant = |what: &str| {
            TpsError::invariant(
                InvariantLayer::Reservation,
                format!("{what} for fault at {va}"),
            )
        };
        let (res_base, offset, pa, seg_order, promotable) = {
            let proc = self.proc_mut(asid);
            let res = proc
                .reservations
                .find_mut(va)
                .ok_or_else(|| res_invariant("reservation the caller found vanished"))?;
            let offset = va - res.va_base();
            let page_idx = offset >> BASE_PAGE_SHIFT;
            if res.utilization_mut().touch(page_idx) {
                proc.touched_pages += 1;
            }
            let pa = res
                .frame_for(offset)
                .ok_or_else(|| res_invariant("reservation does not cover its own range"))?;
            let seg_order = res
                .max_order_at(offset)
                .ok_or_else(|| res_invariant("reservation does not cover its own range"))?;
            let promotable = res.utilization().promotable_order(page_idx, threshold);
            (res.va_base(), offset, pa, seg_order, promotable)
        };
        self.charge(self.cost.reservation_op + self.cost.zero_4k);

        // Map the demanded base page if nothing covers it yet.
        let page_va = va.align_down(BASE_PAGE_SHIFT);
        let current = self.processes[asid as usize].page_table.lookup(va);
        let mut mapped_order = match current {
            Some(leaf) => leaf.order,
            None => {
                self.map_counted(
                    asid,
                    page_va,
                    pa.align_down(BASE_PAGE_SHIFT),
                    PageOrder::P4K,
                    PteFlags::WRITABLE | PteFlags::USER,
                )?;
                PageOrder::P4K
            }
        };

        // Promotion: grow to the largest aligned region that satisfies the
        // threshold, capped by segment contiguity and the policy rules.
        let reachable = promotable.min(seg_order.get());
        let target = match mode {
            // TPS: any power of two up to the cap.
            PromotionMode::AnyPowerOfTwo(cap) => reachable.min(cap.get()),
            // THP: conventional sizes only — all or nothing.
            PromotionMode::ExactOrder(order) => {
                if reachable >= order.get() {
                    order.get()
                } else {
                    0
                }
            }
        };
        let mut promoted = false;
        if target > mapped_order.get() {
            let order = PageOrder::new_unchecked(target);
            let aligned_off = offset & !(order.bytes() - 1);
            let va_k = VirtAddr::new(res_base.value() + aligned_off);
            // Never promote over copy-on-write-shared leaves: a writable
            // large page would bypass the sharing (only possible after a
            // fork, so the scan is free for ordinary processes).
            if !self.shares.is_empty() && self.range_has_shared_leaf(asid, va_k, order) {
                return Ok(FaultOutcome {
                    va,
                    mapped_order,
                    promoted: false,
                });
            }
            let pa_k = {
                let proc = &self.processes[asid as usize];
                proc.reservations
                    .find(va)
                    .ok_or_else(|| res_invariant("reservation vanished before promotion"))?
                    .frame_for(aligned_off)
                    .ok_or_else(|| res_invariant("promotion offset left the reservation"))?
            };
            debug_assert!(va_k.is_aligned(order.shift()));
            debug_assert!(pa_k.is_aligned(order.shift()));
            self.map_counted(asid, va_k, pa_k, order, PteFlags::WRITABLE | PteFlags::USER)?;
            self.charge(self.cost.promote_op);
            self.stats.promotions += 1;
            mapped_order = order;
            promoted = true;
        }
        Ok(FaultOutcome {
            va,
            mapped_order,
            promoted,
        })
    }

    /// Forks `parent`: the child shares every currently mapped page
    /// copy-on-write (paper §III-C3). Both processes' PTEs are downgraded
    /// to read-only; the returned shootdowns cover the parent's now-stale
    /// writable TLB entries.
    ///
    /// The child starts with no reservations of its own; its faults to
    /// not-yet-mapped parts of inherited VMAs allocate fresh 4 KB frames.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a live process.
    pub fn fork(&mut self, parent: Asid) -> (Asid, Vec<Shootdown>) {
        let child = self.spawn();
        let parent_vmas: Vec<Vma> = self.processes[parent as usize]
            .address_space
            .iter()
            .cloned()
            .collect();
        self.processes[child as usize].address_space =
            self.processes[parent as usize].address_space.clone();
        let mut shootdowns = Vec::new();
        let mut pte_cost = 0u64;
        for vma in &parent_vmas {
            let mut va = vma.base();
            while va < vma.end() {
                let leaf = self.processes[parent as usize].page_table.lookup(va);
                match leaf {
                    Some(leaf) => {
                        let ro = PteFlags::USER; // no WRITABLE
                                                 // Downgrade the parent and mirror into the child.
                        let (pp, cp) = {
                            let p = &mut self.processes[parent as usize].page_table;
                            let before = p.pte_writes();
                            p.map(va, leaf.base, leaf.order, ro)
                                .expect("remapping an existing leaf");
                            let pw = p.pte_writes() - before;
                            let c = &mut self.processes[child as usize].page_table;
                            let before = c.pte_writes();
                            c.map(va, leaf.base, leaf.order, ro)
                                .expect("child mirrors the parent layout");
                            (pw, c.pte_writes() - before)
                        };
                        pte_cost += pp + cp;
                        self.shares.share(leaf.base.base_page_number(), leaf.order);
                        shootdowns.push(Shootdown {
                            asid: parent,
                            va,
                            order: leaf.order,
                        });
                        va = VirtAddr::new(va.value() + leaf.order.bytes());
                    }
                    None => va = VirtAddr::new(va.value() + (1 << BASE_PAGE_SHIFT)),
                }
            }
        }
        self.stats.shootdowns += shootdowns.len() as u64;
        self.charge(self.cost.pte_write * pte_cost + self.cost.shootdown * shootdowns.len() as u64);
        self.deliver_shootdowns(&shootdowns);
        (child, shootdowns)
    }

    /// True if a write to `va` must take a CoW fault first.
    pub fn needs_cow(&self, asid: Asid, va: VirtAddr) -> bool {
        self.processes[asid as usize]
            .page_table
            .lookup(va)
            .is_some_and(|leaf| !leaf.flags.contains(PteFlags::WRITABLE))
    }

    /// Handles a write fault to a read-only (CoW) mapping.
    ///
    /// Sole owners simply regain write permission. Shared pages are copied
    /// per the configured [`CowPolicy`]: the whole page, or only the
    /// faulting base page (the rest of a large page is remapped as base
    /// pages that keep sharing).
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::Unmapped`] if nothing is mapped at `va`, or
    /// [`TpsError::OutOfMemory`] if the copy target cannot be allocated.
    pub fn handle_cow_fault(
        &mut self,
        asid: Asid,
        va: VirtAddr,
    ) -> Result<Vec<Shootdown>, TpsError> {
        let leaf = self.processes[asid as usize]
            .page_table
            .lookup(va)
            .ok_or(TpsError::Unmapped { vaddr: va.value() })?;
        debug_assert!(!leaf.flags.contains(PteFlags::WRITABLE));
        self.stats.cow_faults += 1;
        self.charge(self.cost.fault_base);
        let order = leaf.order;
        let va_page = va.align_down(order.shift());
        let pfn = leaf.base.base_page_number();
        let rw = PteFlags::WRITABLE | PteFlags::USER;
        let vma_base = self.processes[asid as usize]
            .address_space
            .find(va)
            .ok_or(TpsError::Unmapped { vaddr: va.value() })?
            .base();
        let mut shootdowns = vec![Shootdown {
            asid,
            va: va_page,
            order,
        }];

        if self.shares.count(pfn, order) <= 1 {
            // Sole owner: regain write permission in place.
            self.map_counted(asid, va_page, leaf.base, order, rw)?;
            self.stats.shootdowns += 1;
            self.charge(self.cost.shootdown);
            self.deliver_shootdowns(&shootdowns);
            return Ok(shootdowns);
        }

        match self.cow_policy {
            CowPolicy::CopyWholePage => {
                let new = self.alloc_direct(asid, vma_base, order)?;
                self.stats.cow_bytes_copied += order.bytes();
                self.charge(self.cost.zero_4k * order.base_pages()); // the copy
                self.map_counted(asid, va_page, new, order, rw)?;
                self.shares.release(pfn, order);
            }
            CowPolicy::CopySmallest => {
                // Split the shared page: every constituent base page keeps
                // sharing, except the faulting one, which is copied.
                self.shares.split(pfn, order, PageOrder::P4K);
                let ro = PteFlags::USER;
                for i in 0..order.base_pages() {
                    let sub_va = VirtAddr::new(va_page.value() + i * BASE_PAGE_SIZE);
                    let sub_pa = PhysAddr::from_pfn(pfn + i);
                    self.map_counted(asid, sub_va, sub_pa, PageOrder::P4K, ro)?;
                }
                let fault_va = va.align_down(BASE_PAGE_SHIFT);
                let fault_sub = (fault_va - va_page) >> BASE_PAGE_SHIFT;
                let new = self.alloc_direct(asid, vma_base, PageOrder::P4K)?;
                self.stats.cow_bytes_copied += BASE_PAGE_SIZE;
                self.charge(self.cost.zero_4k);
                self.map_counted(asid, fault_va, new, PageOrder::P4K, rw)?;
                self.shares.release(pfn + fault_sub, PageOrder::P4K);
            }
        }
        self.stats.shootdowns += 1;
        self.charge(self.cost.shootdown);
        shootdowns.push(Shootdown {
            asid,
            va: va_page,
            order,
        });
        self.deliver_shootdowns(&shootdowns);
        Ok(shootdowns)
    }

    /// Changes the write permission of `[va, va + len)` (an `mprotect`).
    ///
    /// Tailored pages that straddle the boundary are **split** into base
    /// pages first — the cost the paper notes the OS pays when permissions
    /// diverge inside a large page (§III-C1/§III-C3); [`Os::merge_pages`]
    /// can rebuild them later if permissions re-converge.
    ///
    /// Returns the TLB shootdowns the permission change requires.
    ///
    /// # Errors
    ///
    /// * [`TpsError::Misaligned`] unless `va`/`len` are base-page aligned.
    /// * [`TpsError::Unmapped`] if the range leaves the VMA.
    /// * [`TpsError::SharedMapping`] if a CoW-shared page intersects the
    ///   range (resolve sharing first).
    pub fn mprotect(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        len: u64,
        writable: bool,
    ) -> Result<Vec<Shootdown>, TpsError> {
        if !va.is_aligned(BASE_PAGE_SHIFT) || !len.is_multiple_of(1 << BASE_PAGE_SHIFT) || len == 0
        {
            return Err(TpsError::Misaligned {
                addr: va.value(),
                shift: BASE_PAGE_SHIFT,
            });
        }
        let end = va.value() + len;
        {
            let vma = self.processes[asid as usize]
                .address_space
                .find(va)
                .ok_or(TpsError::Unmapped { vaddr: va.value() })?;
            if end > vma.end().value() {
                return Err(TpsError::Unmapped { vaddr: end });
            }
        }
        let new_flags = if writable {
            PteFlags::WRITABLE | PteFlags::USER
        } else {
            PteFlags::USER
        };
        let mut shootdowns = Vec::new();
        let mut cursor = va.align_down(BASE_PAGE_SHIFT);
        while cursor.value() < end {
            let Some(leaf) = self.processes[asid as usize].page_table.lookup(cursor) else {
                cursor = VirtAddr::new(cursor.value() + (1 << BASE_PAGE_SHIFT));
                continue;
            };
            if self.shares.count(leaf.base.base_page_number(), leaf.order) > 1 {
                return Err(TpsError::SharedMapping {
                    vaddr: cursor.value(),
                });
            }
            let leaf_va = cursor.align_down(leaf.order.shift());
            let leaf_end = leaf_va.value() + leaf.order.bytes();
            let fully_inside = leaf_va.value() >= va.value() && leaf_end <= end;
            if fully_inside {
                self.map_counted(asid, leaf_va, leaf.base, leaf.order, new_flags)?;
            } else {
                // Straddling leaf: split to base pages, changing only the
                // in-range ones.
                let keep_flags = if leaf.flags.contains(PteFlags::WRITABLE) {
                    PteFlags::WRITABLE | PteFlags::USER
                } else {
                    PteFlags::USER
                };
                for i in 0..leaf.order.base_pages() {
                    let sub_va = VirtAddr::new(leaf_va.value() + i * BASE_PAGE_SIZE);
                    let sub_pa = PhysAddr::new(leaf.base.value() + i * BASE_PAGE_SIZE);
                    let inside = sub_va.value() >= va.value() && sub_va.value() < end;
                    self.map_counted(
                        asid,
                        sub_va,
                        sub_pa,
                        PageOrder::P4K,
                        if inside { new_flags } else { keep_flags },
                    )?;
                }
            }
            shootdowns.push(Shootdown {
                asid,
                va: leaf_va,
                order: leaf.order,
            });
            cursor = VirtAddr::new(leaf_end);
        }
        self.stats.shootdowns += shootdowns.len() as u64;
        self.charge(self.cost.shootdown * shootdowns.len() as u64);
        self.deliver_shootdowns(&shootdowns);
        Ok(shootdowns)
    }

    /// Bytes a swap-out of the page covering `va` would have to write back.
    ///
    /// With fine-grained A/D tracking enabled, a tailored page's dirty
    /// vector limits writeback to the dirtied sixteenths (paper §III-C1);
    /// otherwise a dirty page writes back in full, and a clean page not at
    /// all.
    pub fn dirty_writeback_bytes(&self, asid: Asid, va: VirtAddr) -> u64 {
        let pt = &self.processes[asid as usize].page_table;
        let Some(leaf) = pt.lookup(va) else { return 0 };
        if !leaf.flags.contains(PteFlags::DIRTY) {
            return 0;
        }
        match pt.dirty_vector(va) {
            Some(vector) => {
                let chunks = u64::from(vector.count_ones());
                let chunk_bytes = (leaf.order.bytes() / 16).max(BASE_PAGE_SIZE);
                (chunks * chunk_bytes).min(leaf.order.bytes())
            }
            None => leaf.order.bytes(),
        }
    }

    /// Runs the memory-compaction daemon (paper §II-B, §III-B3): migrates
    /// every process's movable blocks toward low addresses so free memory
    /// coalesces, updates reservations and page tables, and reports the
    /// TLB shootdowns migration requires. Kernel noise blocks are pinned
    /// (unmovable), as on real systems.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::SharedMapping`] while CoW sharing is live —
    /// migrating shared frames would require rekeying the share table.
    pub fn compact(&mut self) -> Result<(CompactionOutcome, Vec<Shootdown>), TpsError> {
        if !self.shares.is_empty() {
            return Err(TpsError::SharedMapping { vaddr: 0 });
        }
        // Gather every movable block: reservation segments + direct blocks.
        let mut movable: Vec<(PhysAddr, PageOrder)> = Vec::new();
        for proc in &self.processes {
            for res in proc.reservations.iter() {
                movable.extend(res.segments().iter().map(|s| (s.base, s.order)));
            }
            for blocks in proc.direct_blocks.values() {
                movable.extend(blocks.iter().copied());
            }
        }
        let outcome = compact(&mut self.buddy, &movable)?;
        if outcome.interrupted {
            self.stats.compaction_aborts += 1;
        }
        self.charge(self.cost.compact_page * outcome.pages_moved);

        // Relocation lookup, sorted by source base.
        let mut relocs: Vec<(u64, u64, u64)> = outcome
            .relocations
            .iter()
            .map(|r| (r.from.value(), r.to.value(), r.order.bytes()))
            .collect();
        relocs.sort_unstable();
        let relocate = |pa: PhysAddr| -> Option<PhysAddr> {
            let idx = relocs.partition_point(|&(from, _, _)| from <= pa.value());
            let (from, to, bytes) = *relocs.get(idx.checked_sub(1)?)?;
            (pa.value() < from + bytes).then(|| PhysAddr::new(to + (pa.value() - from)))
        };

        // Retarget reservations and direct blocks.
        for proc in &mut self.processes {
            for res in proc.reservations.iter_mut() {
                for seg in res.segments_mut() {
                    if let Some(new) = relocate(seg.base) {
                        seg.base = new;
                    }
                }
            }
            for blocks in proc.direct_blocks.values_mut() {
                for (base, _) in blocks.iter_mut() {
                    if let Some(new) = relocate(*base) {
                        *base = new;
                    }
                }
            }
        }

        // Rewrite page-table leaves pointing into moved blocks.
        let mut shootdowns = Vec::new();
        let mut pte_cost = 0u64;
        for pid in 0..self.processes.len() {
            let vmas: Vec<Vma> = self.processes[pid].address_space.iter().cloned().collect();
            for vma in vmas {
                let mut va = vma.base();
                while va < vma.end() {
                    let leaf = self.processes[pid].page_table.lookup(va);
                    match leaf {
                        Some(leaf) => {
                            if let Some(new) = relocate(leaf.base) {
                                let pt = &mut self.processes[pid].page_table;
                                let before = pt.pte_writes();
                                pt.map(va, new, leaf.order, leaf.flags).map_err(|e| {
                                    TpsError::invariant(
                                        InvariantLayer::PageTable,
                                        format!("remap to migrated frame at {va} failed: {e}"),
                                    )
                                })?;
                                pte_cost += pt.pte_writes() - before;
                                shootdowns.push(Shootdown {
                                    asid: pid as Asid,
                                    va,
                                    order: leaf.order,
                                });
                            }
                            va = VirtAddr::new(va.value() + leaf.order.bytes());
                        }
                        None => va = VirtAddr::new(va.value() + (1 << BASE_PAGE_SHIFT)),
                    }
                }
            }
        }
        self.stats.shootdowns += shootdowns.len() as u64;
        self.charge(self.cost.pte_write * pte_cost + self.cost.shootdown * shootdowns.len() as u64);
        self.deliver_shootdowns(&shootdowns);
        Ok((outcome, shootdowns))
    }

    /// Page merging (paper §III-B3): scans a process's mappings for buddy
    /// pairs — two adjacent leaves of equal order whose virtual and
    /// physical addresses are co-aligned to the next order with identical
    /// permissions — and merges each pair into one page of the next order.
    /// Repeats until no more merges apply. Returns the number of merges.
    ///
    /// As the paper argues (§III-C2), merging requires **no TLB
    /// shootdowns**: stale smaller-page entries still translate their
    /// portion of the merged page correctly.
    pub fn merge_pages(&mut self, asid: Asid) -> u64 {
        let mut total = 0u64;
        loop {
            let mut merged_this_pass = 0u64;
            let vmas: Vec<Vma> = self.processes[asid as usize]
                .address_space
                .iter()
                .cloned()
                .collect();
            for vma in vmas {
                let mut va = vma.base();
                while va < vma.end() {
                    let Some(leaf) = self.processes[asid as usize].page_table.lookup(va) else {
                        va = VirtAddr::new(va.value() + (1 << BASE_PAGE_SHIFT));
                        continue;
                    };
                    let order = leaf.order;
                    let next = order.get() + 1;
                    let buddy_va = VirtAddr::new(va.value() + order.bytes());
                    let mergeable = next <= self.policy.max_order.get()
                        && va.is_aligned(12 + next as u32)
                        && leaf.base.is_aligned(12 + next as u32)
                        && buddy_va.value() < vma.end().value()
                        && self.shares.count(leaf.base.base_page_number(), order) <= 1
                        && self.processes[asid as usize]
                            .page_table
                            .lookup(buddy_va)
                            .is_some_and(|b| {
                                b.order == order
                                    && b.base.value() == leaf.base.value() + order.bytes()
                                    && b.flags.contains(PteFlags::WRITABLE)
                                        == leaf.flags.contains(PteFlags::WRITABLE)
                                    && self.shares.count(b.base.base_page_number(), order) <= 1
                            });
                    if mergeable {
                        let merged_order = PageOrder::new_unchecked(next);
                        self.map_counted(asid, va, leaf.base, merged_order, leaf.flags)
                            .expect("merge remaps existing leaves");
                        self.charge(self.cost.promote_op);
                        merged_this_pass += 1;
                        va = VirtAddr::new(va.value() + merged_order.bytes());
                    } else {
                        va = VirtAddr::new(va.value() + order.bytes());
                    }
                }
            }
            total += merged_this_pass;
            if merged_this_pass == 0 {
                break;
            }
        }
        self.stats.promotions += total;
        total
    }

    /// True if any leaf inside `[va, va + size)` is CoW-shared.
    fn range_has_shared_leaf(&self, asid: Asid, va: VirtAddr, order: PageOrder) -> bool {
        let proc = &self.processes[asid as usize];
        let end = va.value() + order.bytes();
        let mut cur = va;
        while cur.value() < end {
            match proc.page_table.lookup(cur) {
                Some(leaf) => {
                    if self.shares.count(leaf.base.base_page_number(), leaf.order) > 1 {
                        return true;
                    }
                    cur = VirtAddr::new(cur.value() + leaf.order.bytes());
                }
                None => cur = VirtAddr::new(cur.value() + (1 << BASE_PAGE_SHIFT)),
            }
        }
        false
    }

    /// Serves `munmap` of the VMA starting at `base`, freeing frames and
    /// reporting the TLB shootdowns the hardware must perform.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::Unmapped`] if no VMA starts at `base`.
    pub fn munmap(&mut self, asid: Asid, base: VirtAddr) -> Result<Vec<Shootdown>, TpsError> {
        // Reject ranges with live CoW sharing: the block-ownership model
        // cannot reclaim frames another process still references.
        {
            let proc = &self.processes[asid as usize];
            if let Some(vma) = proc.address_space.find(base) {
                let mut va = vma.base();
                while va < vma.end() {
                    match proc.page_table.lookup(va) {
                        Some(leaf) => {
                            if self.shares.count(leaf.base.base_page_number(), leaf.order) > 1 {
                                return Err(TpsError::SharedMapping { vaddr: va.value() });
                            }
                            va = VirtAddr::new(va.value() + leaf.order.bytes());
                        }
                        None => va = VirtAddr::new(va.value() + (1 << BASE_PAGE_SHIFT)),
                    }
                }
            }
        }
        let vma = self.proc_mut(asid).address_space.unmap_region(base)?;
        self.stats.munmaps += 1;
        let mut shootdowns = Vec::new();

        // Unmap every leaf in the range.
        let mut pte_cost = 0u64;
        {
            let proc = self.proc_mut(asid);
            let mut va = vma.base();
            while va < vma.end() {
                match proc.page_table.lookup(va) {
                    Some(leaf) => {
                        let before = proc.page_table.pte_writes();
                        proc.page_table.unmap(va, leaf.order).map_err(|e| {
                            TpsError::invariant(
                                InvariantLayer::PageTable,
                                format!("munmap of just-looked-up leaf at {va} failed: {e}"),
                            )
                        })?;
                        pte_cost += proc.page_table.pte_writes() - before;
                        shootdowns.push(Shootdown {
                            asid,
                            va,
                            order: leaf.order,
                        });
                        va = VirtAddr::new(va.value() + leaf.order.bytes());
                    }
                    None => va = VirtAddr::new(va.value() + (1 << BASE_PAGE_SHIFT)),
                }
            }
        }

        // Return reserved frames.
        let removed = self
            .proc_mut(asid)
            .reservations
            .remove_in_range(vma.base(), vma.end());
        for res in removed {
            for seg in res.segments() {
                self.buddy.free(seg.base, seg.order).map_err(|e| {
                    TpsError::invariant(
                        InvariantLayer::Buddy,
                        format!("munmap free of reserved block {:?} failed: {e}", seg.base),
                    )
                })?;
                self.charge(self.cost.buddy_op);
            }
        }

        // Return directly allocated frames.
        if let Some(blocks) = self
            .proc_mut(asid)
            .direct_blocks
            .remove(&vma.base().value())
        {
            for (pa, order) in blocks {
                self.buddy.free(pa, order).map_err(|e| {
                    TpsError::invariant(
                        InvariantLayer::Buddy,
                        format!("munmap free of direct block {pa:?} failed: {e}"),
                    )
                })?;
                self.charge(self.cost.buddy_op);
            }
        }

        // Drop RMM ranges inside the region.
        {
            let start = vma.base().base_page_number();
            let end = vma.end().base_page_number();
            self.proc_mut(asid)
                .ranges
                .retain(|r| r.end_vpn <= start || r.start_vpn >= end);
        }

        self.stats.shootdowns += shootdowns.len() as u64;
        self.charge(self.cost.pte_write * pte_cost + self.cost.shootdown * shootdowns.len() as u64);
        self.deliver_shootdowns(&shootdowns);
        Ok(shootdowns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os(kind: PolicyKind) -> (Os, Asid) {
        let mut os = Os::new(512 << 20, PolicyConfig::new(kind));
        let pid = os.spawn();
        (os, pid)
    }

    fn touch_all(os: &mut Os, pid: Asid, vma: &Vma) {
        let mut va = vma.base();
        while va < vma.end() {
            if os.page_table(pid).lookup(va).is_none() {
                os.handle_fault(pid, va, true).unwrap();
            }
            va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
        }
    }

    #[test]
    fn only_4k_maps_base_pages() {
        let (mut os, pid) = os(PolicyKind::Only4K);
        let vma = os.mmap(pid, 64 << 10).unwrap();
        let out = os.handle_fault(pid, vma.base() + 0x3456, false).unwrap();
        assert_eq!(out.mapped_order, PageOrder::P4K);
        assert!(!out.promoted);
        assert_eq!(os.process(pid).resident_bytes(), BASE_PAGE_SIZE);
    }

    #[test]
    fn only_2m_bloats_memory() {
        let (mut os, pid) = os(PolicyKind::Only2M);
        let vma = os.mmap(pid, 8 << 20).unwrap();
        os.handle_fault(pid, vma.base(), false).unwrap();
        // One touch resident-maps 2 MB.
        assert_eq!(os.process(pid).resident_bytes(), 2 << 20);
        assert_eq!(os.process(pid).touched_bytes(), BASE_PAGE_SIZE);
    }

    #[test]
    fn thp_promotes_at_full_utilization() {
        let (mut os, pid) = os(PolicyKind::Thp);
        let vma = os.mmap(pid, 4 << 20).unwrap();
        // Touch all pages of the first 2M chunk.
        for i in 0..512u64 {
            let out = os
                .handle_fault(
                    pid,
                    VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                    true,
                )
                .unwrap();
            if i < 511 {
                assert_eq!(out.mapped_order, PageOrder::P4K, "page {i}");
            } else {
                assert_eq!(out.mapped_order, PageOrder::P2M, "last touch promotes");
                assert!(out.promoted);
            }
        }
        let leaf = os.page_table(pid).lookup(vma.base()).unwrap();
        assert_eq!(leaf.order, PageOrder::P2M);
        // Memory accounting: resident equals touched (no bloat).
        assert_eq!(os.process(pid).resident_bytes(), 2 << 20);
    }

    #[test]
    fn thp_never_creates_tailored_sizes() {
        let (mut os, pid) = os(PolicyKind::Thp);
        let vma = os.mmap(pid, 2 << 20).unwrap();
        touch_all(&mut os, pid, &vma);
        for (order, _) in os.page_table(pid).page_census() {
            assert!(!order.is_tailored(), "THP produced {order}");
        }
    }

    #[test]
    fn tps_grows_through_every_power_of_two() {
        let (mut os, pid) = os(PolicyKind::Tps);
        let vma = os.mmap(pid, 256 << 10).unwrap(); // 64 pages
        let mut seen_orders = Vec::new();
        for i in 0..64u64 {
            let out = os
                .handle_fault(
                    pid,
                    VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                    true,
                )
                .unwrap();
            if out.promoted {
                seen_orders.push(out.mapped_order.get());
                // Sequential touch promotes the region ending at page i to
                // order v2(i+1) — the binary ruler sequence: sub-regions
                // grow independently and merge upward.
                assert_eq!(out.mapped_order.get() as u32, (i + 1).trailing_zeros());
            }
        }
        assert_eq!(seen_orders.len(), 32, "every odd touch promotes");
        assert_eq!(*seen_orders.iter().max().unwrap(), 6);
        let leaf = os.page_table(pid).lookup(vma.base()).unwrap();
        assert_eq!(leaf.order.get(), 6, "whole region is one 256K page");
        // Single PTE: census shows exactly one page.
        let census = os.page_table(pid).page_census();
        assert_eq!(census.get(&PageOrder::new(6).unwrap()), Some(&1));
        assert_eq!(census.len(), 1);
    }

    #[test]
    fn tps_conservative_threshold_means_no_bloat() {
        let (mut os, pid) = os(PolicyKind::Tps);
        let vma = os.mmap(pid, 1 << 20).unwrap();
        // Touch half the pages scattered: no promotion beyond what is full.
        for i in (0..256u64).step_by(2) {
            os.handle_fault(
                pid,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
        }
        assert_eq!(
            os.process(pid).resident_bytes(),
            os.process(pid).touched_bytes(),
            "100% threshold guarantees resident == touched"
        );
    }

    #[test]
    fn tps_low_threshold_promotes_eagerly() {
        let mut os = Os::new(
            512 << 20,
            PolicyConfig::new(PolicyKind::Tps).with_threshold(0.5),
        );
        let pid = os.spawn();
        let vma = os.mmap(pid, 64 << 10).unwrap(); // 16 pages
                                                   // Touch 8 of 16 pages (the first half).
        for i in 0..8u64 {
            os.handle_fault(
                pid,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
        }
        let leaf = os.page_table(pid).lookup(vma.base()).unwrap();
        assert_eq!(leaf.order.get(), 4, "50% threshold promoted the whole 64K");
        assert!(os.process(pid).resident_bytes() > os.process(pid).touched_bytes());
    }

    #[test]
    fn tps_eager_maps_at_mmap() {
        let (mut os, pid) = os(PolicyKind::TpsEager);
        let vma = os.mmap(pid, 28 << 10).unwrap();
        // Everything is mapped already: exact span 16+8+4.
        assert_eq!(os.process(pid).resident_bytes(), 28 << 10);
        let orders: Vec<u8> = os
            .page_table(pid)
            .page_census()
            .keys()
            .map(|o| o.get())
            .collect();
        assert_eq!(orders, vec![0, 1, 2]);
        assert!(os.page_table(pid).lookup(vma.base() + (20 << 10)).is_some());
    }

    #[test]
    fn rmm_registers_ranges_and_maps_conventionally() {
        let (mut os, pid) = os(PolicyKind::Rmm);
        let vma = os.mmap(pid, 8 << 20).unwrap();
        assert_eq!(os.process(pid).resident_bytes(), 8 << 20, "eager paging");
        // A fresh buddy gives one contiguous block -> exactly one range.
        assert_eq!(os.process(pid).ranges().len(), 1);
        let r = os.range_for(pid, vma.base() + (5 << 20)).unwrap();
        assert_eq!(r.pages(), (8 << 20) / BASE_PAGE_SIZE);
        // Page table uses only conventional sizes.
        for (order, _) in os.page_table(pid).page_census() {
            assert!(!order.is_tailored());
        }
        assert!(os.range_for(pid, VirtAddr::new(0x100)).is_none());
    }

    #[test]
    fn tps_fragmentation_fallback_direct_4k() {
        // Tiny memory: reservation for a huge region fails, faults degrade.
        let mut buddy = BuddyAllocator::new(1 << 20);
        // Waste most memory so the span reservation fails.
        let hold = buddy.alloc(PageOrder::new(7).unwrap()).unwrap();
        let _hold2 = buddy.alloc(PageOrder::new(6).unwrap()).unwrap();
        buddy.free(hold, PageOrder::new(7).unwrap()).unwrap();
        let mut os = Os::with_buddy(buddy, PolicyConfig::new(PolicyKind::Tps));
        let pid = os.spawn();
        let vma = os.mmap(pid, 2 << 20).unwrap(); // 2 MB > free memory
        assert!(os.stats().fallback_4k > 0);
        let out = os.handle_fault(pid, vma.base(), false).unwrap();
        assert_eq!(out.mapped_order, PageOrder::P4K);
    }

    #[test]
    fn munmap_returns_all_memory() {
        for kind in [
            PolicyKind::Only4K,
            PolicyKind::Only2M,
            PolicyKind::Thp,
            PolicyKind::Tps,
            PolicyKind::TpsEager,
            PolicyKind::Rmm,
        ] {
            let (mut os, pid) = os(kind);
            let free_before = os.buddy().free_bytes();
            let vma = os.mmap(pid, 4 << 20).unwrap();
            touch_all(&mut os, pid, &vma);
            let shootdowns = os.munmap(pid, vma.base()).unwrap();
            assert!(!shootdowns.is_empty(), "{kind}: shootdowns required");
            assert_eq!(
                os.buddy().free_bytes(),
                free_before,
                "{kind}: all frames returned"
            );
            assert!(os.page_table(pid).lookup(vma.base()).is_none());
            assert_eq!(os.process(pid).resident_bytes(), 0, "{kind}");
            os.buddy().check_invariants().unwrap();
        }
    }

    #[test]
    fn fault_outside_vma_is_segfault() {
        let (mut os, pid) = os(PolicyKind::Tps);
        assert!(matches!(
            os.handle_fault(pid, VirtAddr::new(0x50), false),
            Err(TpsError::Unmapped { .. })
        ));
    }

    #[test]
    fn probe_mapping_reports_neighbors() {
        let (mut os, pid) = os(PolicyKind::Only4K);
        let vma = os.mmap(pid, 64 << 10).unwrap();
        os.handle_fault(pid, vma.base(), true).unwrap();
        os.handle_fault(pid, vma.base() + BASE_PAGE_SIZE, true)
            .unwrap();
        let vpn = vma.base().base_page_number();
        let (pfn0, w0) = os.probe_mapping(pid, vpn).unwrap();
        let (pfn1, _) = os.probe_mapping(pid, vpn + 1).unwrap();
        assert!(w0);
        // Fresh buddy hands out consecutive pages: contiguity CoLT exploits.
        assert_eq!(pfn1, pfn0 + 1);
        assert!(os.probe_mapping(pid, vpn + 5).is_none());
    }

    #[test]
    fn os_stats_accumulate() {
        let (mut os, pid) = os(PolicyKind::Tps);
        let vma = os.mmap(pid, 64 << 10).unwrap();
        touch_all(&mut os, pid, &vma);
        let s = os.stats();
        assert_eq!(s.mmaps, 1);
        assert_eq!(s.faults, 16);
        assert!(s.promotions >= 4);
        assert_eq!(s.reservations_created, 1);
        assert!(s.op_cycles > 0);
    }

    #[test]
    fn two_processes_are_isolated() {
        let mut os = Os::new(256 << 20, PolicyConfig::new(PolicyKind::Tps));
        let a = os.spawn();
        let b = os.spawn();
        let va_a = os.mmap(a, 1 << 20).unwrap();
        let va_b = os.mmap(b, 1 << 20).unwrap();
        os.handle_fault(a, va_a.base(), true).unwrap();
        os.handle_fault(b, va_b.base(), true).unwrap();
        let pa_a = os.page_table(a).translate(va_a.base()).unwrap();
        let pa_b = os.page_table(b).translate(va_b.base()).unwrap();
        assert_ne!(pa_a, pa_b, "distinct frames");
        assert!(os.page_table(a).translate(va_b.base()).is_none() || va_a.base() == va_b.base());
    }

    #[test]
    fn fork_shares_pages_read_only() {
        let (mut os, parent) = os(PolicyKind::Tps);
        let vma = os.mmap(parent, 64 << 10).unwrap();
        touch_all(&mut os, parent, &vma);
        let parent_pa = os.page_table(parent).translate(vma.base()).unwrap();
        let (child, shootdowns) = os.fork(parent);
        assert!(
            !shootdowns.is_empty(),
            "parent's writable entries are stale"
        );
        // The child sees the same frames, read-only, in both page tables.
        assert_eq!(os.page_table(child).translate(vma.base()), Some(parent_pa));
        for pid in [parent, child] {
            let leaf = os.page_table(pid).lookup(vma.base()).unwrap();
            assert!(!leaf.flags.contains(PteFlags::WRITABLE), "pid {pid}");
        }
        assert!(os.needs_cow(parent, vma.base()));
        assert!(os.needs_cow(child, vma.base()));
    }

    #[test]
    fn cow_whole_page_copy_diverges_frames() {
        let (mut os, parent) = os(PolicyKind::Tps);
        let vma = os.mmap(parent, 64 << 10).unwrap();
        touch_all(&mut os, parent, &vma);
        let (child, _) = os.fork(parent);
        let shared_pa = os.page_table(child).translate(vma.base()).unwrap();
        // Child writes: whole-page policy copies the full 64K page.
        let sds = os.handle_cow_fault(child, vma.base() + 0x5000).unwrap();
        assert!(!sds.is_empty());
        let child_pa = os.page_table(child).translate(vma.base()).unwrap();
        assert_ne!(child_pa, shared_pa, "child got its own frame");
        assert!(!os.needs_cow(child, vma.base()));
        // Parent still maps the original frames, still read-only until it
        // writes; then it regains write permission in place (sole owner).
        assert_eq!(
            os.page_table(parent).translate(vma.base()).unwrap(),
            shared_pa
        );
        os.handle_cow_fault(parent, vma.base()).unwrap();
        assert!(!os.needs_cow(parent, vma.base()));
        assert_eq!(
            os.page_table(parent).translate(vma.base()).unwrap(),
            shared_pa
        );
        assert_eq!(os.stats().cow_faults, 2);
        assert_eq!(os.stats().cow_bytes_copied, 64 << 10);
    }

    #[test]
    fn cow_copy_smallest_keeps_sharing_the_rest() {
        let (mut os, parent) = os(PolicyKind::Tps);
        os.set_cow_policy(crate::cow::CowPolicy::CopySmallest);
        let vma = os.mmap(parent, 64 << 10).unwrap();
        touch_all(&mut os, parent, &vma);
        let (child, _) = os.fork(parent);
        let shared_pa = os.page_table(child).translate(vma.base()).unwrap();
        // Child writes one base page in the middle of the 64K page.
        os.handle_cow_fault(child, vma.base() + 0x5000).unwrap();
        // The faulting 4K diverged; neighbors still share the old frames.
        let forked = os.page_table(child).translate(vma.base() + 0x5000).unwrap();
        assert_ne!(
            forked.align_down(12),
            PhysAddr::new(shared_pa.value() + 0x5000).align_down(12)
        );
        assert_eq!(
            os.page_table(child).translate(vma.base()).unwrap(),
            shared_pa,
            "unwritten part keeps sharing"
        );
        // The big page split into base pages in the child.
        let leaf = os.page_table(child).lookup(vma.base()).unwrap();
        assert_eq!(leaf.order, PageOrder::P4K);
        assert_eq!(os.stats().cow_bytes_copied, BASE_PAGE_SIZE);
    }

    #[test]
    fn munmap_of_shared_range_is_rejected() {
        let (mut os, parent) = os(PolicyKind::Tps);
        let vma = os.mmap(parent, 16 << 10).unwrap();
        touch_all(&mut os, parent, &vma);
        let (_child, _) = os.fork(parent);
        assert!(matches!(
            os.munmap(parent, vma.base()),
            Err(TpsError::SharedMapping { .. })
        ));
    }

    #[test]
    fn no_promotion_over_shared_leaves() {
        let (mut os, parent) = os(PolicyKind::Tps);
        let vma = os.mmap(parent, 64 << 10).unwrap();
        // Touch the first half, fork, then touch the rest.
        for i in 0..8u64 {
            os.handle_fault(
                parent,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
        }
        let (_child, _) = os.fork(parent);
        for i in 8..16u64 {
            os.handle_fault(
                parent,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
        }
        // The region is fully touched but must NOT be promoted to 64K:
        // the first half's frames are still shared with the child.
        let leaf = os.page_table(parent).lookup(vma.base()).unwrap();
        assert!(
            leaf.order.bytes() <= 32 << 10,
            "promotion over shared leaves: got {}",
            leaf.order
        );
    }

    #[test]
    fn mprotect_flips_permissions_and_splits_straddlers() {
        let (mut os, pid) = os(PolicyKind::Tps);
        let vma = os.mmap(pid, 64 << 10).unwrap();
        touch_all(&mut os, pid, &vma); // promoted to one 64K page
                                       // Protect the middle 16K read-only: the 64K page must split.
        let mid = VirtAddr::new(vma.base().value() + (16 << 10));
        let sds = os.mprotect(pid, mid, 16 << 10, false).unwrap();
        assert!(!sds.is_empty());
        let ro = os.page_table(pid).lookup(mid).unwrap();
        assert!(!ro.flags.contains(PteFlags::WRITABLE));
        assert_eq!(ro.order, PageOrder::P4K, "straddler split to base pages");
        // Outside the range, permissions survive.
        let rw = os.page_table(pid).lookup(vma.base()).unwrap();
        assert!(rw.flags.contains(PteFlags::WRITABLE));
        // Translations unchanged by the split.
        assert!(os.page_table(pid).translate(mid).is_some());
        // Re-protect writable and merge back up.
        os.mprotect(pid, VirtAddr::new(vma.base().value()), 64 << 10, true)
            .unwrap();
        let merges = os.merge_pages(pid);
        assert!(merges > 0);
        assert_eq!(
            os.page_table(pid).lookup(vma.base()).unwrap().order.bytes(),
            64 << 10,
            "permissions re-converged: merged back to one page"
        );
    }

    #[test]
    fn mprotect_validates_inputs() {
        let (mut os, pid) = os(PolicyKind::Tps);
        let vma = os.mmap(pid, 16 << 10).unwrap();
        assert!(matches!(
            os.mprotect(pid, vma.base() + 1, BASE_PAGE_SIZE, false),
            Err(TpsError::Misaligned { .. })
        ));
        assert!(matches!(
            os.mprotect(pid, vma.base(), 64 << 10, false),
            Err(TpsError::Unmapped { .. })
        ));
        assert!(matches!(
            os.mprotect(pid, VirtAddr::new(BASE_PAGE_SIZE), BASE_PAGE_SIZE, false),
            Err(TpsError::Unmapped { .. })
        ));
    }

    #[test]
    fn dirty_vector_limits_writeback() {
        let mut os = Os::new(128 << 20, PolicyConfig::new(PolicyKind::Tps));
        os.set_fine_grained_ad(true);
        let pid = os.spawn();
        let vma = os.mmap(pid, 64 << 10).unwrap();
        // Read-fault everything in (clean), promoting to one 64K page.
        let mut va = vma.base();
        while va < vma.end() {
            os.handle_fault(pid, va, false).unwrap();
            va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
        }
        assert_eq!(os.dirty_writeback_bytes(pid, vma.base()), 0, "clean page");
        // Dirty two of sixteen base pages.
        os.hw_mark_accessed(pid, vma.base(), true);
        os.hw_mark_accessed(pid, vma.base() + (5 << 12), true);
        assert_eq!(
            os.dirty_writeback_bytes(pid, vma.base()),
            2 * BASE_PAGE_SIZE,
            "only the dirtied sixteenths write back"
        );
        // Without tracking, the whole page writes back.
        let mut os2 = Os::new(128 << 20, PolicyConfig::new(PolicyKind::Tps));
        let pid2 = os2.spawn();
        let vma2 = os2.mmap(pid2, 64 << 10).unwrap();
        let mut va = vma2.base();
        while va < vma2.end() {
            os2.handle_fault(pid2, va, false).unwrap();
            va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
        }
        os2.hw_mark_accessed(pid2, vma2.base(), true);
        assert_eq!(os2.dirty_writeback_bytes(pid2, vma2.base()), 64 << 10);
    }

    #[test]
    fn compaction_relocates_and_remaps_consistently() {
        let (mut os, pid) = os(PolicyKind::Tps);
        // Create fragmentation: map/touch/unmap interleaved regions.
        let keep1 = os.mmap(pid, 1 << 20).unwrap();
        let drop1 = os.mmap(pid, 4 << 20).unwrap();
        let keep2 = os.mmap(pid, 2 << 20).unwrap();
        for vma in [&keep1, &drop1, &keep2] {
            touch_all(&mut os, pid, vma);
        }
        os.munmap(pid, drop1.base()).unwrap();
        // Remember logical contents: VA -> PA before compaction.
        let before1 = os.page_table(pid).translate(keep1.base()).unwrap();
        let (outcome, shootdowns) = os.compact().unwrap();
        let after1 = os.page_table(pid).translate(keep1.base()).unwrap();
        // Compaction may move pages; mappings must still resolve, and the
        // shootdown list must cover every moved leaf.
        if outcome.pages_moved > 0 {
            assert!(!shootdowns.is_empty());
        }
        let _ = (before1, after1);
        // Frame lookups through reservations agree with the page table.
        for vma in [&keep1, &keep2] {
            let mut va = vma.base();
            while va < vma.end() {
                let pt_pa = os.page_table(pid).translate(va).unwrap();
                let res = os.process(pid).reservations().find(va).unwrap();
                let res_pa = res.frame_for(va - res.va_base()).unwrap();
                assert_eq!(pt_pa, res_pa, "reservation and PT agree at {va}");
                va = VirtAddr::new(va.value() + BASE_PAGE_SIZE);
            }
        }
        os.buddy().check_invariants().unwrap();
    }

    #[test]
    fn page_merging_coalesces_buddy_leaves() {
        // 4K-only policy on pristine memory: sequential faults get
        // physically contiguous frames, so merging can rebuild large pages
        // without moving a byte.
        let (mut os, pid) = os(PolicyKind::Only4K);
        let vma = os.mmap(pid, 64 << 10).unwrap();
        touch_all(&mut os, pid, &vma);
        assert_eq!(
            os.page_table(pid).page_census().get(&PageOrder::P4K),
            Some(&16)
        );
        let before: Vec<_> = (0..16u64)
            .map(|i| {
                os.page_table(pid)
                    .translate(vma.base() + i * BASE_PAGE_SIZE)
                    .unwrap()
            })
            .collect();
        let merges = os.merge_pages(pid);
        assert!(merges >= 8, "16 pages merge pairwise up the tree: {merges}");
        // The whole region collapsed into one 64K page.
        let census = os.page_table(pid).page_census();
        assert_eq!(
            census.get(&PageOrder::new(4).unwrap()),
            Some(&1),
            "{census:?}"
        );
        // Translations unchanged (no migration happened).
        for (i, pa) in before.iter().enumerate() {
            assert_eq!(
                os.page_table(pid)
                    .translate(vma.base() + i as u64 * BASE_PAGE_SIZE)
                    .unwrap(),
                *pa
            );
        }
    }

    #[test]
    fn page_merging_respects_discontiguity() {
        let (mut os, pid) = os(PolicyKind::Only4K);
        // Interleave faults across two VMAs so frames alternate and are
        // not buddy-aligned pairs within either VMA.
        let a = os.mmap(pid, 16 << 10).unwrap();
        let b = os.mmap(pid, 16 << 10).unwrap();
        for i in 0..4u64 {
            os.handle_fault(
                pid,
                VirtAddr::new(a.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
            os.handle_fault(
                pid,
                VirtAddr::new(b.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
        }
        let merges = os.merge_pages(pid);
        // Alternating frames: VA-adjacent pages are not PA-adjacent.
        assert_eq!(merges, 0, "no mergeable buddies");
    }

    #[test]
    fn compaction_rejected_while_cow_shared() {
        let (mut os, pid) = os(PolicyKind::Tps);
        let vma = os.mmap(pid, 16 << 10).unwrap();
        touch_all(&mut os, pid, &vma);
        os.fork(pid);
        assert!(matches!(os.compact(), Err(TpsError::SharedMapping { .. })));
    }

    #[test]
    fn power_of_two_rounding_reserves_covering_block() {
        let mut os = Os::new(
            512 << 20,
            PolicyConfig::new(PolicyKind::Tps).with_rounding(ReservationRounding::PowerOfTwo),
        );
        let pid = os.spawn();
        // Paper example: 2052 KB request -> 4 MB reservation.
        let vma = os.mmap(pid, 2052 << 10).unwrap();
        let res = os.process(pid).reservations().find(vma.base()).unwrap();
        assert_eq!(res.len(), 4 << 20);
        assert!(res.is_fully_contiguous());
    }
}
