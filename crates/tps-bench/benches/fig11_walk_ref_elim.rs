//! Fig. 11: percent of page-walk memory references eliminated, baseline
//! reservation-based THP. TPS and RMM nearly tie; TPS wins on gcc
//! (Range-TLB entry pressure), eager paging is best overall.
//!
//! Runs as one parallel experiment matrix; eliminations come from the
//! report's derived metrics.
use tps_bench::{mean, pct, print_table, scale_from_env, suite_matrix};
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let mechs = [
        Mechanism::Tps,
        Mechanism::TpsEager,
        Mechanism::Colt,
        Mechanism::Rmm,
    ];
    let report = suite_matrix([Mechanism::Thp].into_iter().chain(mechs), scale_from_env());
    let mut rows = Vec::new();
    let mut cols = vec![Vec::new(); mechs.len()];
    for name in suite_names() {
        let base = report.stats(name, Mechanism::Thp).expect("baseline cell");
        let mut row = vec![name.to_string(), format!("{}", base.walk_refs)];
        for (i, mech) in mechs.into_iter().enumerate() {
            let elim = report
                .get(name, mech)
                .and_then(|c| c.derived)
                .and_then(|d| d.walk_ref_elimination)
                .expect("contender cell");
            cols[i].push(elim.max(0.0));
            row.push(pct(elim));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["MEAN (floored)".into(), String::new()];
    mean_row.extend(cols.iter().map(|c| pct(mean(c))));
    rows.push(mean_row);
    print_table(
        "Fig. 11: % page-walk memory references eliminated (baseline: THP)",
        &[
            "benchmark",
            "baseline walk refs",
            "TPS",
            "TPS-eager",
            "CoLT",
            "RMM",
        ],
        &rows,
    );
}
