//! Fig. 11: percent of page-walk memory references eliminated, baseline
//! reservation-based THP. TPS and RMM nearly tie; TPS wins on gcc
//! (Range-TLB entry pressure), eager paging is best overall.
use tps_bench::{mean, pct, print_table, scale_from_env, SuiteCache};
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let mut cache = SuiteCache::new(scale_from_env());
    let mechs = [
        Mechanism::Tps,
        Mechanism::TpsEager,
        Mechanism::Colt,
        Mechanism::Rmm,
    ];
    let mut rows = Vec::new();
    let mut cols = vec![Vec::new(); mechs.len()];
    for name in suite_names() {
        let base = cache.get(name, Mechanism::Thp).clone();
        let mut row = vec![name.to_string(), format!("{}", base.walk_refs)];
        for (i, mech) in mechs.into_iter().enumerate() {
            let stats = cache.get(name, mech);
            let elim = stats.walk_refs_eliminated_vs(&base);
            cols[i].push(elim.max(0.0));
            row.push(pct(elim));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["MEAN (floored)".into(), String::new()];
    mean_row.extend(cols.iter().map(|c| pct(mean(c))));
    rows.push(mean_row);
    print_table(
        "Fig. 11: % page-walk memory references eliminated (baseline: THP)",
        &[
            "benchmark",
            "baseline walk refs",
            "TPS",
            "TPS-eager",
            "CoLT",
            "RMM",
        ],
        &rows,
    );
}
