//! Fig. 9: increase in memory utilization running with exclusive 2 MB
//! pages, relative to 4 KB demand paging.
use tps_bench::{mean, pct, print_table, run_one, scale_from_env};
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    let mut increases = Vec::new();
    for name in suite_names() {
        let only4k = run_one(name, Mechanism::Only4K, scale);
        let only2m = run_one(name, Mechanism::Only2M, scale);
        let increase = only2m.resident_bytes as f64 / only4k.resident_bytes as f64 - 1.0;
        increases.push(increase);
        rows.push(vec![
            name.to_string(),
            format!("{:.1} MB", only4k.resident_bytes as f64 / (1 << 20) as f64),
            format!("{:.1} MB", only2m.resident_bytes as f64 / (1 << 20) as f64),
            pct(increase),
        ]);
    }
    rows.push(vec![
        "MEAN".into(),
        String::new(),
        String::new(),
        pct(mean(&increases)),
    ]);
    print_table(
        "Fig. 9: memory utilization increase with exclusive 2 MB pages",
        &["benchmark", "4K resident", "2M resident", "increase"],
        &rows,
    );
}
