//! Fig. 16: % L1 DTLB misses eliminated under heavy external
//! fragmentation (no compaction). GUPS collapses (no locality, no large
//! reservations possible); benchmarks with locality keep most of the win.
use tps_bench::{pct, print_table, run_one_with, scale_from_env};
use tps_mem::{BuddyAllocator, FragmentParams, Fragmenter};
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let scale = scale_from_env();
    let fragmented = || {
        // A fragmented machine with just enough free memory for the run.
        let mut buddy = BuddyAllocator::new(2 * scale.recommended_memory());
        let mut frag = Fragmenter::new(FragmentParams {
            target_free_fraction: 0.55,
            ..Default::default()
        });
        frag.run(&mut buddy);
        buddy
    };
    let mut rows = Vec::new();
    for name in suite_names() {
        let base = run_one_with(name, Mechanism::Thp, scale, |c| {
            c.with_initial_memory(fragmented())
        });
        let tps = run_one_with(name, Mechanism::Tps, scale, |c| {
            c.with_initial_memory(fragmented())
        });
        rows.push(vec![
            name.to_string(),
            format!("{}", base.mem.l1_misses()),
            pct(tps.l1_misses_eliminated_vs(&base)),
            format!("{}", tps.os.fallback_4k),
        ]);
    }
    print_table(
        "Fig. 16: % L1 DTLB misses eliminated under heavy fragmentation (TPS vs THP)",
        &[
            "benchmark",
            "baseline misses",
            "TPS eliminated",
            "TPS 4K fallbacks",
        ],
        &rows,
    );
}
