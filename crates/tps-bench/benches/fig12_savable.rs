//! Fig. 12: savable page-walker cycles — the fraction of walker-active
//! cycles whose elimination converts into execution-time savings.
//!
//! The paper derives this from performance counters at two configurations
//! (THP off/on); we derive it the same way from our simulated runs and
//! print the workload-profile parameter it recovers.
use tps_bench::{pct, print_table, run_one, scale_from_env};
use tps_sim::{Mechanism, TimingModel};
use tps_wl::suite_names;

fn main() {
    let scale = scale_from_env();
    let model = TimingModel::default();
    let mut rows = Vec::new();
    for name in suite_names() {
        let thp_off = run_one(name, Mechanism::Only4K, scale);
        let thp_on = run_one(name, Mechanism::Thp, scale);
        let t_off = model.evaluate(&thp_off, false);
        let t_on = model.evaluate(&thp_on, false);
        // Savable = dTC / dPWC between the two configurations.
        let d_tc = t_off.total() - t_on.total();
        let d_pwc = t_off.pwc - t_on.pwc;
        let derived = if d_pwc.abs() < 1e-9 {
            thp_on.profile.walk_savable
        } else {
            // Remove the L1-miss-term difference the counters cannot see.
            ((d_tc - (t_off.t_l1dtlbm - t_on.t_l1dtlbm)) / d_pwc).clamp(0.0, 1.0)
        };
        rows.push(vec![
            name.to_string(),
            pct(derived),
            pct(thp_on.profile.walk_savable),
        ]);
    }
    print_table(
        "Fig. 12: savable page walker cycles (derived from 4K-only vs THP runs)",
        &["benchmark", "derived savable", "profile parameter"],
        &rows,
    );
}
