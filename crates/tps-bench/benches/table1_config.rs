//! Table I: the simulated processor configuration.
use tps_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = tps_sim::table1_rows()
        .into_iter()
        .map(|(k, v)| vec![k.to_string(), v])
        .collect();
    print_table(
        "Table I: Simulated Processor Configuration",
        &["component", "configuration"],
        &rows,
    );
}
