//! Fig. 10: percent of L1 DTLB misses eliminated, baseline
//! reservation-based THP. TPS ~98 %, CoLT ~37 %, RMM ~0 % in the paper.
//!
//! The whole suite × mechanism sweep runs as one parallel experiment
//! matrix; eliminations come from the report's derived metrics.
use tps_bench::{mean, pct, print_table, scale_from_env, suite_matrix};
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let mechs = Mechanism::contenders();
    let report = suite_matrix([Mechanism::Thp].into_iter().chain(mechs), scale_from_env());
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 3] = Default::default();
    for name in suite_names() {
        let base = report.stats(name, Mechanism::Thp).expect("baseline cell");
        let mut row = vec![name.to_string(), format!("{}", base.mem.l1_misses())];
        for (i, mech) in mechs.into_iter().enumerate() {
            let elim = report
                .get(name, mech)
                .and_then(|c| c.derived)
                .and_then(|d| d.l1_miss_elimination)
                .expect("contender cell");
            // The paper's bar chart floors at zero.
            cols[i].push(elim.max(0.0));
            row.push(pct(elim));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (floored)".into(),
        String::new(),
        pct(mean(&cols[0])),
        pct(mean(&cols[1])),
        pct(mean(&cols[2])),
    ]);
    print_table(
        "Fig. 10: % L1 DTLB misses eliminated (baseline: reservation-based THP)",
        &["benchmark", "baseline misses", "TPS", "CoLT", "RMM"],
        &rows,
    );
}
