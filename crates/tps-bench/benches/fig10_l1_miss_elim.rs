//! Fig. 10: percent of L1 DTLB misses eliminated, baseline
//! reservation-based THP. TPS ~98 %, CoLT ~37 %, RMM ~0 % in the paper.
use tps_bench::{mean, pct, print_table, scale_from_env, SuiteCache};
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let mut cache = SuiteCache::new(scale_from_env());
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 3] = Default::default();
    for name in suite_names() {
        let base = cache.get(name, Mechanism::Thp).clone();
        let mut row = vec![name.to_string(), format!("{}", base.mem.l1_misses())];
        for (i, mech) in Mechanism::contenders().into_iter().enumerate() {
            let stats = cache.get(name, mech);
            let elim = stats.l1_misses_eliminated_vs(&base);
            // The paper's bar chart floors at zero.
            cols[i].push(elim.max(0.0));
            row.push(pct(elim));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (floored)".into(),
        String::new(),
        pct(mean(&cols[0])),
        pct(mean(&cols[1])),
        pct(mean(&cols[2])),
    ]);
    print_table(
        "Fig. 10: % L1 DTLB misses eliminated (baseline: reservation-based THP)",
        &["benchmark", "baseline misses", "TPS", "CoLT", "RMM"],
        &rows,
    );
}
