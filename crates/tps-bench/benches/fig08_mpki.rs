//! Fig. 8: L1 DTLB misses per thousand instructions across the full
//! profiling sweep (4 KB demand paging, as when characterizing TLB
//! pressure). Benchmarks above MPKI 5 form the evaluation suite.
use tps_bench::{print_table, run_one, scale_from_env};
use tps_sim::Mechanism;
use tps_wl::{profiling_names, suite_names};

fn main() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for name in profiling_names() {
        let stats = run_one(name, Mechanism::Only4K, scale);
        let mpki = stats.l1_mpki();
        let selected = if suite_names().contains(&name) {
            "yes"
        } else {
            ""
        };
        rows.push(vec![
            name.to_string(),
            format!("{mpki:.1}"),
            selected.into(),
        ]);
    }
    print_table(
        "Fig. 8: L1 DTLB MPKI (4 KB paging); MPKI > 5 selects the evaluation suite",
        &["benchmark", "L1 DTLB MPKI", "in suite"],
        &rows,
    );
}
