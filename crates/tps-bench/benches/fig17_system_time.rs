//! Fig. 17: percent of total execution time spent in system (OS) work.
//! The paper measures ~0.16 % on average over full executions — allocator
//! work is negligible, so even a large constant-factor increase from TPS
//! bookkeeping is irrelevant.
//!
//! Our event budget samples a fraction of each benchmark's execution, so
//! the OS cycles per page cannot be divided by the sampled instruction
//! count. SPEC-class runs execute on the order of 10^6–10^7 instructions
//! per resident page across the whole execution; we extrapolate the
//! denominator with a documented per-page instruction density and also
//! print the raw ratio (OS cycles per resident page) so readers can apply
//! their own.
use tps_bench::{mean, print_table, scale_from_env, SuiteCache};
use tps_sim::Mechanism;
use tps_wl::suite_names;

/// Instructions a full benchmark execution spends per resident page
/// (SPEC-class: trillions of instructions over gigabyte footprints).
const INSTS_PER_PAGE_FULL_RUN: f64 = 2_000_000.0;

fn main() {
    let mut cache = SuiteCache::new(scale_from_env());
    let mut rows = Vec::new();
    let (mut thp_col, mut tps_col) = (Vec::new(), Vec::new());
    for name in suite_names() {
        let mut fracs = Vec::new();
        let mut per_page = Vec::new();
        for mech in [Mechanism::Thp, Mechanism::Tps] {
            let stats = cache.get(name, mech);
            let pages = (stats.resident_bytes >> 12).max(1) as f64;
            let cpp = stats.os.op_cycles as f64 / pages;
            let t_app = pages * INSTS_PER_PAGE_FULL_RUN * stats.profile.base_cpi;
            fracs.push(stats.os.op_cycles as f64 / (stats.os.op_cycles as f64 + t_app));
            per_page.push(cpp);
        }
        thp_col.push(fracs[0]);
        tps_col.push(fracs[1]);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", per_page[0]),
            format!("{:.0}", per_page[1]),
            format!("{:.3}%", 100.0 * fracs[0]),
            format!("{:.3}%", 100.0 * fracs[1]),
        ]);
    }
    rows.push(vec![
        "MEAN".into(),
        String::new(),
        String::new(),
        format!("{:.3}%", 100.0 * mean(&thp_col)),
        format!("{:.3}%", 100.0 * mean(&tps_col)),
    ]);
    print_table(
        "Fig. 17: % execution time in system work (extrapolated full run)",
        &[
            "benchmark",
            "THP cyc/page",
            "TPS cyc/page",
            "THP sys%",
            "TPS sys%",
        ],
        &rows,
    );
    println!(
        "(denominator extrapolated at {INSTS_PER_PAGE_FULL_RUN:.0} insts/resident page; \
the paper's point — system work is negligible and a TPS-induced constant \
factor would not change that — is carried by the cyc/page columns)"
    );
}
