//! Fig. 14: speedup over the reservation-THP baseline with an SMT sibling
//! competing for TLB resources. Paper: TPS 21.6 % > RMM 15.2 % > CoLT 4.7 %.
use tps_bench::{geomean, print_table, scale_from_env};
use tps_sim::{run_smt, MachineConfig, Mechanism, RunStats, TimingModel};
use tps_wl::{build, suite_names};

fn main() {
    let scale = scale_from_env();
    let model = TimingModel::default();
    let run = |name: &str, mech: Mechanism| -> RunStats {
        let config = MachineConfig::for_mechanism(mech).with_memory(2 * scale.recommended_memory());
        let a = build(name, scale);
        let b = build(name, scale);
        run_smt(config, a, b).primary
    };
    let mechs = Mechanism::contenders();
    let mut rows = Vec::new();
    let mut cols = vec![Vec::new(); mechs.len()];
    for name in suite_names() {
        let base = model.evaluate(&run(name, Mechanism::Thp), true);
        let mut row = vec![name.to_string()];
        for (i, mech) in mechs.into_iter().enumerate() {
            let t = model.evaluate(&run(name, mech), true);
            let speedup = t.speedup_over(&base);
            cols[i].push(speedup);
            row.push(format!("{speedup:.3}x"));
        }
        rows.push(row);
    }
    let mut mean_row = vec!["GEOMEAN".into()];
    mean_row.extend(cols.iter().map(|c| format!("{:.3}x", geomean(c))));
    rows.push(mean_row);
    print_table(
        "Fig. 14: speedup, native with SMT sibling (baseline: THP)",
        &["benchmark", "TPS", "CoLT", "RMM"],
        &rows,
    );
}
