//! Fig. 15: free-memory coverage by single page sizes on a heavily loaded
//! system. Even under fragmentation, significant intermediate contiguity
//! exists that only TPS page sizes can use.
use tps_bench::{pct, print_table};
use tps_core::PageOrder;
use tps_mem::{BuddyAllocator, FragmentParams, Fragmenter};

fn main() {
    let mut buddy = BuddyAllocator::new(4 << 30);
    let mut frag = Fragmenter::new(FragmentParams::default());
    frag.run(&mut buddy);
    let hist = buddy.histogram();
    let mut rows = Vec::new();
    for order in 0..=12u8 {
        let o = PageOrder::new(order).unwrap();
        let conventional = matches!(order, 0 | 9);
        rows.push(vec![
            o.label(),
            pct(hist.coverage(o)),
            if conventional {
                "conventional".into()
            } else {
                "TPS only".into()
            },
        ]);
    }
    print_table(
        "Fig. 15: % of free memory coverable by a single page size (heavily loaded)",
        &["page size", "coverage", "availability"],
        &rows,
    );
    println!(
        "free fraction: {:.1}%",
        100.0 * buddy.free_bytes() as f64 / buddy.total_bytes() as f64
    );
}
