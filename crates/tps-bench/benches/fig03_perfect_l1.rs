//! Fig. 3: speedup of a perfect L1 TLB over a perfect L2 TLB baseline.
use tps_bench::{geomean, print_table, run_one_with, scale_from_env};
use tps_sim::{MachineConfig, Mechanism, TimingModel};
use tps_wl::suite_names;

fn main() {
    let scale = scale_from_env();
    let model = TimingModel::default();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for name in suite_names() {
        let perfect_l2 = run_one_with(name, Mechanism::Thp, scale, |c| MachineConfig {
            perfect_l2: true,
            ..c
        });
        let perfect_l1 = run_one_with(name, Mechanism::Thp, scale, |c| MachineConfig {
            perfect_l1: true,
            ..c
        });
        let t_l2 = model.evaluate(&perfect_l2, false);
        let t_l1 = model.evaluate(&perfect_l1, false);
        let speedup = t_l1.speedup_over(&t_l2);
        speedups.push(speedup);
        rows.push(vec![name.to_string(), format!("{:.3}x", speedup)]);
    }
    rows.push(vec![
        "GEOMEAN".into(),
        format!("{:.3}x", geomean(&speedups)),
    ]);
    print_table(
        "Fig. 3: speedup of perfect L1 TLB over perfect L2 TLB baseline",
        &["benchmark", "speedup"],
        &rows,
    );
}
