//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. Alias-PTE policy: pointer (one extra walk access) vs full-copy
//!    (no extra access, more PTE update stores) — paper §III-A1.
//! 2. Promotion threshold: 100 % (no bloat) vs lower (fewer misses,
//!    memory bloat) — paper §III-B1.
//! 3. MMU cache sizing: how much page-structure caching shortens walks.
//! 4. Four- vs five-level paging: the walk-cost growth the paper's
//!    introduction warns about — and how TPS neutralizes it.
use tps_bench::{pct, print_table, run_one_with, scale_from_env};
use tps_os::{AliasPolicy, PolicyConfig, PolicyKind};
use tps_pt::MmuCacheConfig;
use tps_sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps_wl::{Gups, GupsParams, Initialized};

fn alias_policy_ablation() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for name in ["gcc", "xsbench", "dbx1000"] {
        let pointer = run_one_with(name, Mechanism::Tps, scale, |c| MachineConfig {
            alias: AliasPolicy::Pointer,
            ..c
        });
        let fullcopy = run_one_with(name, Mechanism::Tps, scale, |c| MachineConfig {
            alias: AliasPolicy::FullCopy,
            ..c
        });
        rows.push(vec![
            name.to_string(),
            format!("{}", pointer.full_walk_refs),
            format!("{}", pointer.alias_extras),
            format!("{}", fullcopy.full_walk_refs),
            format!("{}", fullcopy.os.op_cycles),
            format!("{}", pointer.os.op_cycles),
        ]);
    }
    print_table(
        "Ablation 1: alias-PTE policy (TPS)",
        &[
            "benchmark",
            "ptr walk refs",
            "alias extras",
            "copy walk refs",
            "copy OS cycles",
            "ptr OS cycles",
        ],
        &rows,
    );
}

fn promotion_threshold_ablation() {
    // A sparse toucher: GUPS with updates << pages, no init sweep, so
    // regions are partially utilized and the threshold matters.
    let mut rows = Vec::new();
    for threshold in [1.0, 0.75, 0.5, 0.25] {
        let mut config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(512 << 20);
        config.policy = PolicyConfig::new(PolicyKind::Tps).with_threshold(threshold);
        let wl = Gups::new(GupsParams {
            table_bytes: 128 << 20,
            updates: 60_000,
            seed: 77,
        });
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(wl))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
        let bloat = stats.resident_bytes as f64 / stats.touched_bytes.max(1) as f64 - 1.0;
        rows.push(vec![
            format!("{:.0}%", threshold * 100.0),
            format!("{}", stats.mem.l1_misses()),
            pct(stats.mem.l1_hit_rate()),
            format!("{:.1} MB", stats.resident_bytes as f64 / (1 << 20) as f64),
            pct(bloat),
        ]);
    }
    print_table(
        "Ablation 2: TPS promotion threshold (sparse GUPS, no init sweep)",
        &[
            "threshold",
            "L1 misses",
            "L1 hit rate",
            "resident",
            "bloat vs touched",
        ],
        &rows,
    );
}

fn mmu_cache_ablation() {
    let mut rows = Vec::new();
    for (label, cfg) in [
        (
            "1/1/1",
            MmuCacheConfig {
                pml4e_entries: 1,
                pdpte_entries: 1,
                pde_entries: 1,
            },
        ),
        (
            "2/4/16",
            MmuCacheConfig {
                pml4e_entries: 2,
                pdpte_entries: 4,
                pde_entries: 16,
            },
        ),
        ("4/8/32 (default)", MmuCacheConfig::default()),
        (
            "8/16/64",
            MmuCacheConfig {
                pml4e_entries: 8,
                pdpte_entries: 16,
                pde_entries: 64,
            },
        ),
    ] {
        let mut config = MachineConfig::for_mechanism(Mechanism::Only4K).with_memory(512 << 20);
        config.mmu_cache = cfg;
        let wl = Initialized::new(Gups::new(GupsParams {
            table_bytes: 128 << 20,
            updates: 200_000,
            seed: 78,
        }));
        let stats = MachineBuilder::new(config)
            .tenant(TenantSpec::workload(wl))
            .build()
            .expect("one tenant builds")
            .run()
            .into_solo();
        rows.push(vec![
            label.to_string(),
            format!("{}", stats.walk_refs),
            format!("{:.2}", stats.refs_per_walk()),
        ]);
    }
    print_table(
        "Ablation 3: MMU-cache sizing (4K-only GUPS, walk cost)",
        &[
            "PML4E/PDPTE/PDE entries",
            "walk refs (measured)",
            "refs per walk",
        ],
        &rows,
    );
}

fn five_level_ablation() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for name in ["gups", "xsbench"] {
        for mech in [Mechanism::Only4K, Mechanism::Tps] {
            let four = run_one_with(name, mech, scale, |c| c);
            let five = run_one_with(name, mech, scale, |c| MachineConfig {
                five_level_paging: true,
                ..c
            });
            rows.push(vec![
                format!("{name}/{mech}"),
                format!("{}", four.full_walk_refs),
                format!("{}", five.full_walk_refs),
                format!(
                    "{:+.1}%",
                    100.0 * (five.full_walk_refs as f64 / four.full_walk_refs.max(1) as f64 - 1.0)
                ),
            ]);
        }
    }
    print_table(
        "Ablation 4: 4-level vs 5-level paging (walk references)",
        &["config", "4-level refs", "5-level refs", "growth"],
        &rows,
    );
}

fn skewed_tlb_ablation() {
    let scale = scale_from_env();
    let mut rows = Vec::new();
    for name in ["gcc", "gups", "xsbench"] {
        let fa = run_one_with(name, Mechanism::Tps, scale, |c| c);
        let skewed = run_one_with(name, Mechanism::Tps, scale, |mut c| {
            c.tlb.tps_l1_skewed = true;
            c
        });
        rows.push(vec![
            name.to_string(),
            format!("{}", fa.mem.l1_misses()),
            format!("{}", skewed.mem.l1_misses()),
            pct(fa.mem.l1_hit_rate()),
            pct(skewed.mem.l1_hit_rate()),
        ]);
    }
    print_table(
        "Ablation 5: TPS L1 organization — 32e fully-assoc vs 4-way skewed",
        &[
            "benchmark",
            "FA misses",
            "skewed misses",
            "FA hit",
            "skewed hit",
        ],
        &rows,
    );
}

fn main() {
    alias_policy_ablation();
    promotion_threshold_ablation();
    mmu_cache_ablation();
    five_level_ablation();
    skewed_tlb_ablation();
}
