//! Criterion microbenchmarks of the simulator's hot paths: TLB lookups,
//! buddy allocator operations, page walks, end-to-end translation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tps_core::{PageOrder, PhysAddr, PteFlags, VirtAddr, BASE_PAGE_SIZE, GIB};
use tps_mem::BuddyAllocator;
use tps_pt::{MmuCaches, PageTable, Walker};
use tps_sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec};
use tps_tlb::{AnySizeTlb, DualStlb, SetAssocTlb, TlbEntry};
use tps_wl::Event;

fn bench_tlb_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_lookup");
    let entry = |vpn: u64, order: u8| TlbEntry {
        asid: 0,
        vpn,
        order: PageOrder::new(order).unwrap(),
        pfn: vpn + 0x100,
        writable: true,
    };
    let mut sa = SetAssocTlb::new(16, 4, PageOrder::P4K);
    for vpn in 0..64 {
        sa.fill(entry(vpn, 0));
    }
    group.bench_function("set_assoc_64e_hit", |b| {
        let mut vpn = 0u64;
        b.iter(|| {
            vpn = (vpn + 1) % 64;
            black_box(sa.lookup(0, black_box(vpn)))
        })
    });
    let mut fa = AnySizeTlb::new(32);
    for i in 0..32u64 {
        fa.fill(entry(i << 4, 4));
    }
    group.bench_function("tps_any_size_32e_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 32;
            black_box(fa.lookup(0, black_box((i << 4) + 3)))
        })
    });
    let mut stlb = DualStlb::new(128, 12);
    for vpn in 0..1536 {
        stlb.fill(entry(vpn, 0));
    }
    group.bench_function("dual_stlb_1536e_hit", |b| {
        let mut vpn = 0u64;
        b.iter(|| {
            vpn = (vpn + 1) % 1536;
            black_box(stlb.lookup(0, black_box(vpn)))
        })
    });
    group.finish();
}

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_4k", |b| {
        let mut buddy = BuddyAllocator::new(256 << 20);
        b.iter(|| {
            let a = buddy.alloc(PageOrder::P4K).unwrap();
            buddy.free(black_box(a), PageOrder::P4K).unwrap();
        })
    });
    c.bench_function("buddy_alloc_free_2m", |b| {
        let mut buddy = BuddyAllocator::new(256 << 20);
        b.iter(|| {
            let a = buddy.alloc(PageOrder::P2M).unwrap();
            buddy.free(black_box(a), PageOrder::P2M).unwrap();
        })
    });
}

fn bench_walk(c: &mut Criterion) {
    let mut pt = PageTable::new();
    for i in 0..512u64 {
        pt.map(
            VirtAddr::new(GIB + i * BASE_PAGE_SIZE),
            PhysAddr::new(GIB + i * BASE_PAGE_SIZE),
            PageOrder::P4K,
            PteFlags::WRITABLE,
        )
        .unwrap();
    }
    let mut walker = Walker::default();
    c.bench_function("page_walk_cold", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(
                walker
                    .walk(&pt, VirtAddr::new(GIB + i * BASE_PAGE_SIZE), None)
                    .unwrap(),
            )
        })
    });
    c.bench_function("page_walk_mmu_cached", |b| {
        let mut caches = MmuCaches::default();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(
                walker
                    .walk(
                        &pt,
                        VirtAddr::new(GIB + i * BASE_PAGE_SIZE),
                        Some(&mut caches),
                    )
                    .unwrap(),
            )
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("machine_access_tps", |b| {
        let mut machine =
            MachineBuilder::new(MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20))
                .tenant(TenantSpec::external("bench"))
                .build()
                .expect("one tenant builds");
        machine
            .step(
                0,
                Event::Mmap {
                    region: 0,
                    bytes: 16 << 20,
                },
            )
            .expect("bench event is well-formed");
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let offset = (x >> 33) % (16 << 20);
            machine
                .step(
                    0,
                    Event::Access {
                        region: 0,
                        offset: offset & !7,
                        write: false,
                    },
                )
                .expect("bench event is well-formed");
        })
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tlb_lookup, bench_buddy, bench_walk, bench_end_to_end
);
criterion_main!(components);
