//! Fig. 18: pages in use per page size under TPS, per benchmark. The
//! small total page counts are what let TPS eliminate nearly all misses.
use tps_bench::{print_table, scale_from_env, SuiteCache};
use tps_core::PageOrder;
use tps_sim::Mechanism;
use tps_wl::suite_names;

fn main() {
    let mut cache = SuiteCache::new(scale_from_env());
    let mut rows = Vec::new();
    for name in suite_names() {
        let stats = cache.get(name, Mechanism::Tps).clone();
        let total: u64 = stats.page_census.values().sum();
        let sizes = stats
            .page_census
            .iter()
            .map(|(o, n)| format!("{}:{n}", o.label()))
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            name.to_string(),
            format!("{total}"),
            format!(
                "{}",
                stats
                    .page_census
                    .keys()
                    .max()
                    .copied()
                    .unwrap_or(PageOrder::P4K)
                    .label()
            ),
            sizes,
        ]);
    }
    print_table(
        "Fig. 18: TPS page-size census per benchmark (order:count)",
        &["benchmark", "total pages", "largest", "census"],
        &rows,
    );
}
