//! Fig. 13: speedup over the reservation-THP baseline, native execution.
//! Paper: TPS 15.7 % avg > RMM 9.4 % > CoLT 2.7 %, and TPS captures
//! ~99 % of the ideal (all-translation-eliminated) speedup.
//!
//! Two experiment matrices: the mechanism sweep, and a perfect-L1 THP
//! matrix supplying the ideal (no TLB miss) column.
use tps_bench::{geomean, print_table, run_matrix, scale_from_env, suite_matrix};
use tps_sim::{ExperimentSpec, Mechanism, TimingModel};
use tps_wl::suite_names;

fn main() {
    let scale = scale_from_env();
    let model = TimingModel::default();
    let mechs = Mechanism::contenders();
    let report = suite_matrix([Mechanism::Thp].into_iter().chain(mechs), scale);
    // Ideal: perfect L1 TLB, no walks at all.
    let ideal_report = run_matrix(
        ExperimentSpec::new()
            .suite()
            .mechanism(Mechanism::Thp)
            .scale(scale)
            .perfect_l1(true),
    );
    let mut rows = Vec::new();
    let mut cols = vec![Vec::new(); mechs.len() + 1];
    for name in suite_names() {
        let base = model.evaluate(
            report.stats(name, Mechanism::Thp).expect("baseline cell"),
            false,
        );
        let mut row = vec![name.to_string()];
        for (i, mech) in mechs.into_iter().enumerate() {
            let speedup = report
                .get(name, mech)
                .and_then(|c| c.derived)
                .and_then(|d| d.speedup_vs_baseline)
                .expect("contender cell");
            cols[i].push(speedup);
            row.push(format!("{speedup:.3}x"));
        }
        let ideal_stats = ideal_report
            .stats(name, Mechanism::Thp)
            .expect("ideal cell");
        let ideal = model.evaluate(ideal_stats, false).speedup_over(&base);
        cols[mechs.len()].push(ideal);
        row.push(format!("{ideal:.3}x"));
        rows.push(row);
    }
    let mut mean_row = vec!["GEOMEAN".into()];
    mean_row.extend(cols.iter().map(|c| format!("{:.3}x", geomean(c))));
    rows.push(mean_row);
    let tps_gain = geomean(&cols[0]) - 1.0;
    let ideal_gain = geomean(&cols[mechs.len()]) - 1.0;
    print_table(
        "Fig. 13: speedup, native (baseline: reservation-based THP)",
        &["benchmark", "TPS", "CoLT", "RMM", "ideal (no TLB misses)"],
        &rows,
    );
    println!(
        "TPS captures {:.1}% of the maximal ideal savings",
        100.0 * tps_gain / ideal_gain.max(1e-12)
    );
}
