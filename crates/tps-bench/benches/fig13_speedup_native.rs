//! Fig. 13: speedup over the reservation-THP baseline, native execution.
//! Paper: TPS 15.7 % avg > RMM 9.4 % > CoLT 2.7 %, and TPS captures
//! ~99 % of the ideal (all-translation-eliminated) speedup.
use tps_bench::{geomean, print_table, run_one_with, scale_from_env, SuiteCache};
use tps_sim::{MachineConfig, Mechanism, TimingModel};
use tps_wl::suite_names;

fn main() {
    let mut cache = SuiteCache::new(scale_from_env());
    let scale = cache.scale();
    let model = TimingModel::default();
    let mechs = Mechanism::contenders();
    let mut rows = Vec::new();
    let mut cols = vec![Vec::new(); mechs.len() + 1];
    for name in suite_names() {
        let base = model.evaluate(cache.get(name, Mechanism::Thp), false);
        let mut row = vec![name.to_string()];
        for (i, mech) in mechs.into_iter().enumerate() {
            let t = model.evaluate(cache.get(name, mech), false);
            let speedup = t.speedup_over(&base);
            cols[i].push(speedup);
            row.push(format!("{speedup:.3}x"));
        }
        // Ideal: perfect L1 TLB, no walks at all.
        let ideal_stats = run_one_with(name, Mechanism::Thp, scale, |c| MachineConfig {
            perfect_l1: true,
            ..c
        });
        let ideal = model.evaluate(&ideal_stats, false).speedup_over(&base);
        cols[mechs.len()].push(ideal);
        row.push(format!("{ideal:.3}x"));
        rows.push(row);
    }
    let mut mean_row = vec!["GEOMEAN".into()];
    mean_row.extend(cols.iter().map(|c| format!("{:.3}x", geomean(c))));
    rows.push(mean_row);
    let tps_gain = geomean(&cols[0]) - 1.0;
    let ideal_gain = geomean(&cols[mechs.len()]) - 1.0;
    print_table(
        "Fig. 13: speedup, native (baseline: reservation-based THP)",
        &["benchmark", "TPS", "CoLT", "RMM", "ideal (no TLB misses)"],
        &rows,
    );
    println!(
        "TPS captures {:.1}% of the maximal ideal savings",
        100.0 * tps_gain / ideal_gain.max(1e-12)
    );
}
