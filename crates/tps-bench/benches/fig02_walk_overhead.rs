//! Fig. 2: percent of execution time spent page walking, with THP active,
//! for native, native+SMT, and virtualized execution.
use tps_bench::{mean, pct, print_table, run_one, run_one_with, scale_from_env};
use tps_sim::{run_smt, MachineConfig, Mechanism, TimingModel};
use tps_wl::{build, suite_names};

fn main() {
    let scale = scale_from_env();
    let model = TimingModel::default();
    let mut rows = Vec::new();
    let (mut n_col, mut s_col, mut v_col) = (Vec::new(), Vec::new(), Vec::new());
    for name in suite_names() {
        let native = run_one(name, Mechanism::Thp, scale);
        let native_frac = model.evaluate(&native, false).walk_active_fraction();

        let config = MachineConfig::for_mechanism(Mechanism::Thp)
            .with_memory(2 * scale.recommended_memory());
        let a = build(name, scale);
        let b = build(name, scale);
        let smt = run_smt(config, a, b);
        let smt_frac = model.evaluate(&smt.primary, true).walk_active_fraction();

        let virt = run_one_with(name, Mechanism::Thp, scale, |c| MachineConfig {
            virtualized: true,
            ..c
        });
        let virt_frac = model.evaluate(&virt, false).walk_active_fraction();

        n_col.push(native_frac);
        s_col.push(smt_frac);
        v_col.push(virt_frac);
        rows.push(vec![
            name.to_string(),
            pct(native_frac),
            pct(smt_frac),
            pct(virt_frac),
        ]);
    }
    rows.push(vec![
        "MEAN".into(),
        pct(mean(&n_col)),
        pct(mean(&s_col)),
        pct(mean(&v_col)),
    ]);
    print_table(
        "Fig. 2: % execution time spent page walking (THP baseline)",
        &["benchmark", "native", "native+SMT", "virtualized"],
        &rows,
    );
}
