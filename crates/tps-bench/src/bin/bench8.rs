//! Pinned-seed translation microbench (the committed `BENCH_8.json`).
//!
//! Drives a deterministic access stream straight through [`Mmu::access`] —
//! no workload framework, no worker pool — so the measured loop is exactly
//! the translation fast path the hot-path lint rules fence: L1/L2 TLB
//! probes, page walks, MMU-cache hits and the CoLT contiguity probe.
//!
//! ```sh
//! cargo run --release -p tps-bench --bin bench8
//! ```
//!
//! Prints one JSON object: per-mechanism wall time plus the TLB-hit/walk
//! counters. The counters are seed-pinned and byte-stable; wall time is a
//! snapshot of the machine that ran it. `BENCH_8.json` commits a before/
//! after pair of these measurements around the PR 8 dyn-dispatch and
//! allocation burn-down.

use std::fmt::Write as _;
use std::time::Instant;

use tps_core::VirtAddr;
use tps_mem::BuddyAllocator;
use tps_os::Os;
use tps_sim::{AccessLevel, MachineConfig, Mechanism, Mmu};

/// Pinned microbench seed.
const SEED: u64 = 0x5EED_0008;
/// Modeled physical memory.
const MEMORY: u64 = 512 << 20;
/// Number of mapped regions. Warm-up touches them interleaved so buddy
/// frames alternate between regions, breaking physical contiguity: CoLT
/// cannot coalesce giant runs and must keep refilling its L1 through the
/// contiguity probe, which is the call the dyn burn-down devirtualizes.
const VMAS: u64 = 8;
/// Bytes per mapped region. The total (256 MB as 2 MB pages) overflows
/// the 32-entry huge L1 TLB, so the timed loop exercises L1 misses, STLB
/// probes, probe-driven refills and real page walks rather than parking
/// in a handful of L1 entries.
const VMA_SIZE: u64 = 32 << 20;
/// Hot window the stream favors (L1-resident under every mechanism).
const HOT_WINDOW: u64 = 8 << 20;
/// Timed accesses per mechanism.
const ACCESSES: u64 = 2_000_000;
/// STLB sets for the microbench: shrunk from the Table I 128 so the
/// uniform tail of the stream overflows L2 and reaches the walker.
const STLB_SETS: usize = 8;

/// SplitMix64: the workspace's standard pinned-seed generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

struct Measurement {
    wall_ms: f64,
    accesses: u64,
    l1_hits: u64,
    stlb_hits: u64,
    range_hits: u64,
    l2_misses: u64,
    walks: u64,
    walk_refs: u64,
    faults: u64,
}

fn run_mechanism(mechanism: Mechanism) -> Measurement {
    let mut config = MachineConfig::for_mechanism(mechanism).with_memory(MEMORY);
    config.tlb.stlb_sets = STLB_SETS;
    config.tlb.tps_stlb_entries = STLB_SETS * config.tlb.stlb_ways;
    let mut os = Os::with_buddy(BuddyAllocator::new(MEMORY), config.policy);
    let asid = os.spawn();
    let mut mmu = Mmu::new(&config);
    let bases: Vec<u64> = (0..VMAS)
        .map(|_| {
            let vma = os.mmap(asid, VMA_SIZE).expect("microbench region maps");
            vma.base().value()
        })
        .collect();

    // Warm-up: touch every base page once (faults, promotions, fills), so
    // the timed loop measures translation, not first-touch policy. The
    // regions are touched interleaved to scatter frames between them.
    let mut off = 0;
    while off < VMA_SIZE {
        for base in &bases {
            mmu.access(&mut os, asid, VirtAddr::new(base + off), true)
                .expect("warm-up touches freshly mapped regions");
        }
        off += tps_core::BASE_PAGE_SIZE;
    }
    let warm = mmu.tlb().stats();

    // Timed loop: 7 of 8 accesses land in the hot window (L1-friendly),
    // the rest are uniform over all regions (stressing STLB/walks).
    let mut rng = SplitMix64(SEED);
    let mut walks = 0u64;
    let mut walk_refs = 0u64;
    let mut faults = 0u64;
    let start = Instant::now();
    for _ in 0..ACCESSES {
        let r = rng.next();
        let va = if r & 7 != 0 {
            bases[0] + r % HOT_WINDOW
        } else {
            bases[((r >> 32) % VMAS) as usize] + r % VMA_SIZE
        };
        let out = mmu
            .access(&mut os, asid, VirtAddr::new(va), r & 1 == 0)
            .expect("benchmark accesses stay within mapped regions");
        if out.level == AccessLevel::Walk {
            walks += 1;
        }
        walk_refs += out.walk_refs;
        faults += u64::from(out.faults);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let stats = mmu.tlb().stats();
    Measurement {
        wall_ms,
        accesses: stats.accesses - warm.accesses,
        l1_hits: stats.l1_hits - warm.l1_hits,
        stlb_hits: stats.stlb_hits - warm.stlb_hits,
        range_hits: stats.range_hits - warm.range_hits,
        l2_misses: stats.l2_misses - warm.l2_misses,
        walks,
        walk_refs,
        faults,
    }
}

fn main() {
    let mechanisms = [
        ("thp", Mechanism::Thp),
        ("tps", Mechanism::Tps),
        ("colt", Mechanism::Colt),
        ("rmm", Mechanism::Rmm),
    ];
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"tps-bench8/v1\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"accesses\": {ACCESSES},");
    let _ = writeln!(out, "  \"mechanisms\": {{");
    for (i, (name, mech)) in mechanisms.iter().enumerate() {
        let m = run_mechanism(*mech);
        let _ = write!(
            out,
            "    \"{name}\": {{\"wall_ms\": {:.1}, \"accesses\": {}, \"l1_hits\": {}, \
             \"stlb_hits\": {}, \"range_hits\": {}, \"l2_misses\": {}, \"walks\": {}, \
             \"walk_refs\": {}, \"faults\": {}}}",
            m.wall_ms,
            m.accesses,
            m.l1_hits,
            m.stlb_hits,
            m.range_hits,
            m.l2_misses,
            m.walks,
            m.walk_refs,
            m.faults
        );
        out.push_str(if i + 1 < mechanisms.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  }\n}\n");
    print!("{out}");
}
