//! Quick shape probe: prints the Fig. 10/11 elimination ratios for the
//! whole suite in one table — handy when calibrating workloads or
//! policies without running the full figure harness.
//!
//! ```sh
//! TPS_SCALE=paper cargo run --release -p tps-bench --bin probe
//! ```
use tps_bench::{pct, print_table, run_one};
use tps_sim::Mechanism;
use tps_wl::{suite_names, SuiteScale};

fn main() {
    let scale = match std::env::var("TPS_SCALE").as_deref() {
        Ok("small") => SuiteScale::Small,
        Ok("paper") => SuiteScale::Paper,
        _ => SuiteScale::Test,
    };
    let mut rows = Vec::new();
    for name in suite_names() {
        let base = run_one(name, Mechanism::Thp, scale);
        let tps = run_one(name, Mechanism::Tps, scale);
        let colt = run_one(name, Mechanism::Colt, scale);
        let rmm = run_one(name, Mechanism::Rmm, scale);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", base.l1_mpki()),
            format!("{}", base.mem.l1_misses()),
            pct(tps.l1_misses_eliminated_vs(&base)),
            pct(colt.l1_misses_eliminated_vs(&base)),
            pct(rmm.l1_misses_eliminated_vs(&base)),
            pct(tps.walk_refs_eliminated_vs(&base)),
            pct(rmm.walk_refs_eliminated_vs(&base)),
            format!("{}", tps.page_census.len()),
        ]);
    }
    print_table(
        "probe",
        &[
            "bench",
            "thp-mpki",
            "thp-miss",
            "tps-elim",
            "colt-elim",
            "rmm-elim",
            "tps-walkelim",
            "rmm-walkelim",
            "tps-sizes",
        ],
        &rows,
    );
}
