//! Shared harness for the figure/table benchmarks.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper's evaluation. This library holds the common machinery: running
//! the benchmark suite under each mechanism, simple table printing, and
//! means.
//!
//! Scale selection: set `TPS_SCALE=test|small|paper` (default `small`, the
//! figure-faithful quick scale; `paper` runs the full-size workloads).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use tps_sim::{
    ExperimentReport, ExperimentSpec, MachineBuilder, MachineConfig, Mechanism, RunStats,
    TenantSpec,
};
use tps_wl::{build, SuiteScale};

/// Reads the suite scale from the `TPS_SCALE` environment variable.
pub fn scale_from_env() -> SuiteScale {
    match std::env::var("TPS_SCALE").as_deref() {
        Ok("test") => SuiteScale::Test,
        Ok("paper") => SuiteScale::Paper,
        _ => SuiteScale::Small,
    }
}

/// Runs one suite benchmark under one mechanism.
pub fn run_one(name: &str, mechanism: Mechanism, scale: SuiteScale) -> RunStats {
    let config = MachineConfig::for_mechanism(mechanism).with_memory(scale.recommended_memory());
    MachineBuilder::new(config)
        .tenant(TenantSpec::boxed(build(name, scale)))
        .build()
        .expect("one tenant builds")
        .run()
        .into_solo()
}

/// Runs one benchmark under one mechanism with a customized config
/// (memory size and policy/TLB are still taken from the mechanism).
pub fn run_one_with(
    name: &str,
    mechanism: Mechanism,
    scale: SuiteScale,
    tweak: impl FnOnce(MachineConfig) -> MachineConfig,
) -> RunStats {
    let config =
        tweak(MachineConfig::for_mechanism(mechanism).with_memory(scale.recommended_memory()));
    MachineBuilder::new(config)
        .tenant(TenantSpec::boxed(build(name, scale)))
        .build()
        .expect("one tenant builds")
        .run()
        .into_solo()
}

/// Expands and runs one experiment spec on the worker pool.
///
/// # Panics
///
/// Panics when the spec fails validation — the figure harnesses are
/// static in-tree callers, so a rejected spec is a bug, not input.
pub fn run_matrix(spec: ExperimentSpec) -> ExperimentReport {
    spec.build().expect("figure spec is valid").run()
}

/// Runs the whole evaluation suite under `mechanisms` at `scale` as one
/// parallel experiment matrix (cells fan out across the worker pool, the
/// report is byte-deterministic regardless of thread count).
pub fn suite_matrix(
    mechanisms: impl IntoIterator<Item = Mechanism>,
    scale: SuiteScale,
) -> ExperimentReport {
    run_matrix(
        ExperimentSpec::new()
            .suite()
            .mechanisms(mechanisms)
            .scale(scale),
    )
}

/// A lazily filled cache of `(benchmark, mechanism) -> RunStats` so one
/// figure can reuse another mechanism's runs without re-simulating.
#[derive(Default)]
pub struct SuiteCache {
    scale: Option<SuiteScale>,
    runs: BTreeMap<(String, Mechanism), RunStats>,
}

impl SuiteCache {
    /// Creates an empty cache for the given scale.
    pub fn new(scale: SuiteScale) -> Self {
        SuiteCache {
            scale: Some(scale),
            runs: BTreeMap::new(),
        }
    }

    /// The cache's scale.
    pub fn scale(&self) -> SuiteScale {
        self.scale.unwrap_or(SuiteScale::Small)
    }

    /// Returns (running on first use) the stats of one combination.
    pub fn get(&mut self, name: &str, mechanism: Mechanism) -> &RunStats {
        let scale = self.scale();
        self.runs
            .entry((name.to_string(), mechanism))
            .or_insert_with(|| run_one(name, mechanism, scale))
    }
}

/// Geometric mean of positive values (the paper's speedup aggregation).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn suite_cache_runs_once() {
        let mut cache = SuiteCache::new(SuiteScale::Test);
        let a = cache.get("gups", Mechanism::Tps).mem.accesses;
        let b = cache.get("gups", Mechanism::Tps).mem.accesses;
        assert_eq!(a, b);
        assert!(a > 0);
    }
}
