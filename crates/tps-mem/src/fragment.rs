//! External-fragmentation engine.
//!
//! The paper studies TPS on a *heavily loaded* server by dumping
//! `/proc/buddyinfo` and `/proc/pid/pagemap` and replaying that state into
//! the simulator (Fig. 15/16). We have no production server, so this module
//! produces an equivalent state synthetically: a long randomized
//! allocate/free churn with a small-order-biased size distribution (as real
//! kernel allocations are), stopped when the requested free fraction is
//! reached. The result is a [`BuddyAllocator`] whose free-list histogram has
//! the paper's qualitative shape — 100 % of free memory usable at 4 KB,
//! declining coverage toward larger page sizes.

use crate::buddy::BuddyAllocator;
use tps_core::rng::Rng;
use tps_core::{PageOrder, PhysAddr};

/// Parameters of the fragmentation churn.
#[derive(Clone, Debug)]
pub struct FragmentParams {
    /// PRNG seed — the whole process is deterministic.
    pub seed: u64,
    /// Fraction of memory left free when churn finishes (e.g. 0.25).
    pub target_free_fraction: f64,
    /// Number of churn operations per megabyte of physical memory.
    pub churn_per_mib: u64,
    /// Largest block order the churn allocates (biased toward small).
    pub max_alloc_order: u8,
    /// Geometric bias of allocation sizes: probability of stopping at each
    /// order step (higher = smaller allocations dominate).
    pub small_bias: f64,
}

impl Default for FragmentParams {
    fn default() -> Self {
        FragmentParams {
            seed: 0x7a5_0001,
            target_free_fraction: 0.25,
            churn_per_mib: 64,
            max_alloc_order: 10,
            small_bias: 0.45,
        }
    }
}

/// Drives a [`BuddyAllocator`] into a fragmented state.
///
/// # Example
///
/// ```
/// use tps_mem::{BuddyAllocator, Fragmenter, FragmentParams};
/// use tps_core::PageOrder;
///
/// let mut buddy = BuddyAllocator::new(64 << 20);
/// let mut frag = Fragmenter::new(FragmentParams::default());
/// let pinned = frag.run(&mut buddy);
/// assert!(!pinned.is_empty());
/// let h = buddy.histogram();
/// // Base pages always fully usable; multi-MB contiguity is scarce.
/// assert_eq!(h.coverage(PageOrder::new(0).unwrap()), 1.0);
/// assert!(h.coverage(PageOrder::new(10).unwrap()) < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Fragmenter {
    params: FragmentParams,
    rng: Rng,
}

impl Fragmenter {
    /// Creates a fragmenter with the given parameters.
    pub fn new(params: FragmentParams) -> Self {
        let rng = Rng::new(params.seed);
        Fragmenter { params, rng }
    }

    /// Samples an allocation order with geometric small-size bias.
    fn sample_order(&mut self) -> PageOrder {
        let mut order = 0u8;
        while order < self.params.max_alloc_order && !self.rng.chance(self.params.small_bias) {
            order += 1;
        }
        PageOrder::new_unchecked(order)
    }

    /// Runs the churn, returning the blocks still allocated afterwards
    /// (the simulated "other tenants" of the machine). The allocator is
    /// left holding these allocations; its free space is fragmented.
    pub fn run(&mut self, buddy: &mut BuddyAllocator) -> Vec<(PhysAddr, PageOrder)> {
        let total = buddy.total_bytes();
        let target_free = (total as f64 * self.params.target_free_fraction) as u64;
        let mut live: Vec<(PhysAddr, PageOrder)> = Vec::new();

        // Phase 1: fill to ~10% free so splits permeate the space.
        let fill_floor = (total / 10).min(target_free);
        while buddy.free_bytes() > fill_floor {
            let order = self.sample_order();
            match buddy.alloc(order) {
                Ok(base) => live.push((base, order)),
                Err(_) => {
                    // No block of that order; take a base page instead.
                    match buddy.alloc(PageOrder::P4K) {
                        Ok(base) => live.push((base, PageOrder::P4K)),
                        Err(_) => break,
                    }
                }
            }
        }

        // Phase 2: churn — interleave frees and allocations so the free
        // space ends up scattered.
        let ops = self.params.churn_per_mib * (total >> 20).max(1);
        for _ in 0..ops {
            if !live.is_empty() && self.rng.chance(0.5) {
                let i = self.rng.below(live.len() as u64) as usize;
                let (base, order) = live.swap_remove(i);
                buddy
                    .free(base, order)
                    .expect("live list tracks real allocations");
            } else {
                let order = self.sample_order();
                if let Ok(base) = buddy.alloc(order) {
                    live.push((base, order));
                }
            }
        }

        // Phase 3: free random blocks until the free target is reached.
        while buddy.free_bytes() < target_free && !live.is_empty() {
            let i = self.rng.below(live.len() as u64) as usize;
            let (base, order) = live.swap_remove(i);
            buddy
                .free(base, order)
                .expect("live list tracks real allocations");
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn reaches_free_target() {
        let mut buddy = BuddyAllocator::new(128 << 20);
        let mut frag = Fragmenter::new(FragmentParams {
            target_free_fraction: 0.3,
            ..Default::default()
        });
        frag.run(&mut buddy);
        let free_frac = buddy.free_bytes() as f64 / buddy.total_bytes() as f64;
        assert!(free_frac >= 0.3, "free fraction {free_frac}");
        assert!(free_frac < 0.45, "should not overshoot wildly: {free_frac}");
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn produces_declining_coverage_curve() {
        let mut buddy = BuddyAllocator::new(256 << 20);
        let mut frag = Fragmenter::new(FragmentParams::default());
        frag.run(&mut buddy);
        let h = buddy.histogram();
        assert_eq!(h.coverage(o(0)), 1.0);
        // Coverage is monotonically non-increasing with page size.
        let cov: Vec<f64> = (0..=12).map(|k| h.coverage(o(k))).collect();
        for w in cov.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // Heavily fragmented: intermediate contiguity exists but big blocks
        // are scarce.
        assert!(
            h.coverage(o(3)) > 0.10,
            "some 32K contiguity: {}",
            h.coverage(o(3))
        );
        assert!(
            h.coverage(o(12)) < h.coverage(o(2)),
            "16M coverage below 16K coverage"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut buddy = BuddyAllocator::new(64 << 20);
            let mut frag = Fragmenter::new(FragmentParams {
                seed,
                ..Default::default()
            });
            let live = frag.run(&mut buddy);
            (buddy.histogram(), live.len())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn pinned_blocks_are_really_allocated() {
        let mut buddy = BuddyAllocator::new(32 << 20);
        let mut frag = Fragmenter::new(FragmentParams::default());
        let live = frag.run(&mut buddy);
        for (base, order) in &live {
            assert!(buddy.is_allocated(*base, *order));
        }
    }
}
