//! Memory compaction daemon model (paper §II-B, §III-B3).
//!
//! Compaction migrates scattered *movable* allocations toward low addresses
//! so free memory coalesces into large contiguous blocks. The OS uses it
//! when an allocation cannot find the contiguity it wants; TPS benefits
//! because whatever contiguity compaction recovers can be exploited by the
//! nearest tailored page size.
//!
//! The model frees every movable block and re-allocates the same multiset
//! largest-first (buddy allocation is lowest-address-first, so the result is
//! densely packed around the unmovable blocks). The returned relocation list
//! is what the OS needs to fix up page tables and issue TLB shootdowns; the
//! page-move count is the cost input to the system-time model.
//!
//! A fault injector installed on the allocator can interrupt a pass between
//! block migrations (site `CompactionStep`): the blocks processed so far are
//! repacked, the rest stay where they were, and the outcome is flagged
//! [`CompactionOutcome::interrupted`] — modelling a daemon preempted by
//! memory pressure or a shutdown request.

use crate::buddy::BuddyAllocator;
use tps_core::inject::FaultSite;
use tps_core::{InvariantLayer, PageOrder, PhysAddr, TpsError};

/// One block migration performed by compaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Relocation {
    /// Where the block was.
    pub from: PhysAddr,
    /// Where it is now.
    pub to: PhysAddr,
    /// The block's order (unchanged by migration).
    pub order: PageOrder,
}

/// Result of a compaction pass.
#[derive(Clone, Debug, Default)]
pub struct CompactionOutcome {
    /// All migrations performed (blocks that did not move are omitted).
    pub relocations: Vec<Relocation>,
    /// Total base pages copied (the daemon's work, for cost accounting).
    pub pages_moved: u64,
    /// True if a fault injector interrupted the pass before every movable
    /// block was processed. The unprocessed blocks were left untouched.
    pub interrupted: bool,
}

impl CompactionOutcome {
    /// Convenience: number of blocks that moved.
    pub fn moved_blocks(&self) -> usize {
        self.relocations.len()
    }
}

/// Compacts the movable allocations of `buddy`.
///
/// `movable` lists blocks (base, order) currently allocated in `buddy` that
/// the caller is able to migrate (i.e. it can update whatever mappings point
/// at them). Unlisted allocations are treated as pinned and are packed
/// around.
///
/// Returns the relocations performed. The caller must apply them to its
/// page tables / reservation tables.
///
/// # Errors
///
/// Returns [`TpsError::InvariantViolation`] if an entry of `movable` is not
/// a live allocation of `buddy` (a stale caller list), or if the allocator
/// rejects an operation that must succeed by construction. No block has
/// been moved when the stale-list error is returned.
pub fn compact(
    buddy: &mut BuddyAllocator,
    movable: &[(PhysAddr, PageOrder)],
) -> Result<CompactionOutcome, TpsError> {
    // Validate the whole list before touching anything, so a stale list is
    // reported with the allocator state unchanged.
    for &(base, order) in movable {
        if !buddy.is_allocated(base, order) {
            return Err(TpsError::invariant(
                InvariantLayer::Buddy,
                format!(
                    "compaction given a non-live block {:#x} order {}",
                    base.value(),
                    order.get()
                ),
            ));
        }
    }
    // Largest blocks first (classic buddy re-pack). Also the order in which
    // the injector is consulted: an interruption truncates this sequence.
    let mut order_sorted: Vec<(PhysAddr, PageOrder)> = movable.to_vec();
    order_sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut interrupted = false;
    let mut processed = order_sorted.len();
    for i in 0..order_sorted.len() {
        if buddy.consult_injector(FaultSite::CompactionStep) {
            interrupted = true;
            processed = i;
            break;
        }
    }
    let batch = &order_sorted[..processed];
    // Free the processed prefix. Buddy merging is confluent, so freeing in
    // sorted rather than caller order changes nothing.
    for &(base, order) in batch {
        if buddy.free(base, order).is_err() {
            return Err(TpsError::invariant(
                InvariantLayer::Buddy,
                format!(
                    "free of validated movable block {:#x} rejected",
                    base.value()
                ),
            ));
        }
    }
    // Re-allocate the same multiset, largest first: guaranteed to succeed
    // because the multiset fit before, and the uninjected path keeps a fault
    // injector from breaking that guarantee mid-repack.
    let mut outcome = CompactionOutcome {
        interrupted,
        ..CompactionOutcome::default()
    };
    for &(from, order) in batch {
        let to = match buddy.alloc_uninjected(order) {
            Ok(to) => to,
            Err(_) => {
                return Err(TpsError::invariant(
                    InvariantLayer::Buddy,
                    format!(
                        "re-allocation of freed order-{} block failed mid-compaction",
                        order.get()
                    ),
                ))
            }
        };
        if to != from {
            outcome.pages_moved += order.base_pages();
            outcome.relocations.push(Relocation { from, to, order });
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentParams, Fragmenter};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn compaction_restores_contiguity() {
        let mut buddy = BuddyAllocator::new(64 << 20);
        let mut frag = Fragmenter::new(FragmentParams {
            target_free_fraction: 0.5,
            ..Default::default()
        });
        let live = frag.run(&mut buddy);
        let before = buddy.histogram().coverage(o(10)); // 4 MB coverage
        let outcome = compact(&mut buddy, &live).unwrap();
        let after = buddy.histogram().coverage(o(10));
        assert!(
            after > before || (before == 1.0 && after == 1.0),
            "coverage should improve: {before} -> {after}"
        );
        assert!(after > 0.9, "fully movable memory compacts well: {after}");
        assert!(outcome.pages_moved > 0);
        assert!(!outcome.interrupted);
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn compaction_preserves_block_multiset() {
        let mut buddy = BuddyAllocator::new(16 << 20);
        let mut live = Vec::new();
        for ord in [0u8, 0, 1, 2, 3, 0, 1] {
            live.push((buddy.alloc(o(ord)).unwrap(), o(ord)));
        }
        let used_before = buddy.used_bytes();
        let outcome = compact(&mut buddy, &live).unwrap();
        assert_eq!(buddy.used_bytes(), used_before);
        // Every relocation target is a live allocation of the same order.
        for r in &outcome.relocations {
            assert!(buddy.is_allocated(r.to, r.order));
        }
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn unmovable_blocks_stay_put() {
        let mut buddy = BuddyAllocator::new(8 << 20);
        let pinned = buddy.alloc(o(4)).unwrap();
        let movable_blk = buddy.alloc(o(2)).unwrap();
        let outcome = compact(&mut buddy, &[(movable_blk, o(2))]).unwrap();
        assert!(buddy.is_allocated(pinned, o(4)), "pinned block untouched");
        for r in &outcome.relocations {
            assert_ne!(r.from, pinned);
        }
    }

    #[test]
    fn already_compact_memory_moves_nothing() {
        let mut buddy = BuddyAllocator::new(8 << 20);
        let a = buddy.alloc(o(3)).unwrap();
        let b = buddy.alloc(o(3)).unwrap();
        // a and b are the lowest possible blocks already; largest-first
        // re-pack lands them in the same places.
        let outcome = compact(&mut buddy, &[(a, o(3)), (b, o(3))]).unwrap();
        assert_eq!(outcome.moved_blocks(), 0);
        assert_eq!(outcome.pages_moved, 0);
    }

    #[test]
    fn rejects_stale_movable_list_without_panicking() {
        let mut buddy = BuddyAllocator::new(1 << 20);
        let a = buddy.alloc(o(0)).unwrap();
        let b = buddy.alloc(o(0)).unwrap();
        buddy.free(a, o(0)).unwrap();
        let free_before = buddy.free_bytes();
        let err = compact(&mut buddy, &[(b, o(0)), (a, o(0))]).unwrap_err();
        assert!(matches!(err, TpsError::InvariantViolation { .. }), "{err}");
        assert_eq!(buddy.free_bytes(), free_before, "nothing was moved");
        buddy.check_invariants().unwrap();
    }

    /// Faults after `allow` consultations.
    #[derive(Debug)]
    struct FaultAfter {
        allow: u64,
    }

    impl tps_core::FaultInjector for FaultAfter {
        fn should_fault(&mut self, _site: tps_core::FaultSite) -> bool {
            if self.allow == 0 {
                true
            } else {
                self.allow -= 1;
                false
            }
        }
    }

    #[test]
    fn injected_interruption_truncates_the_pass() {
        let mut buddy = BuddyAllocator::new(8 << 20);
        // Create a hole so compaction has something to move: pin, movables,
        // then free the pin.
        let hole = buddy.alloc(o(3)).unwrap();
        let movable: Vec<_> = (0..4).map(|_| (buddy.alloc(o(1)).unwrap(), o(1))).collect();
        buddy.free(hole, o(3)).unwrap();
        // Allow 2 of the 4 per-block steps, then fault.
        buddy.set_injector(Some(Rc::new(RefCell::new(FaultAfter { allow: 2 }))));
        let used_before = buddy.used_bytes();
        let outcome = compact(&mut buddy, &movable).unwrap();
        assert!(outcome.interrupted);
        assert!(outcome.moved_blocks() <= 2, "only the prefix was processed");
        assert_eq!(buddy.used_bytes(), used_before);
        for (base, order) in &movable {
            let relocated = outcome.relocations.iter().find(|r| r.from == *base);
            let now_at = relocated.map(|r| r.to).unwrap_or(*base);
            assert!(buddy.is_allocated(now_at, *order));
        }
        buddy.set_injector(None);
        buddy.check_invariants().unwrap();
    }
}
