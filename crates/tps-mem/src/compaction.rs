//! Memory compaction daemon model (paper §II-B, §III-B3).
//!
//! Compaction migrates scattered *movable* allocations toward low addresses
//! so free memory coalesces into large contiguous blocks. The OS uses it
//! when an allocation cannot find the contiguity it wants; TPS benefits
//! because whatever contiguity compaction recovers can be exploited by the
//! nearest tailored page size.
//!
//! The model frees every movable block and re-allocates the same multiset
//! largest-first (buddy allocation is lowest-address-first, so the result is
//! densely packed around the unmovable blocks). The returned relocation list
//! is what the OS needs to fix up page tables and issue TLB shootdowns; the
//! page-move count is the cost input to the system-time model.

use crate::buddy::BuddyAllocator;
use tps_core::{PageOrder, PhysAddr};

/// One block migration performed by compaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Relocation {
    /// Where the block was.
    pub from: PhysAddr,
    /// Where it is now.
    pub to: PhysAddr,
    /// The block's order (unchanged by migration).
    pub order: PageOrder,
}

/// Result of a compaction pass.
#[derive(Clone, Debug, Default)]
pub struct CompactionOutcome {
    /// All migrations performed (blocks that did not move are omitted).
    pub relocations: Vec<Relocation>,
    /// Total base pages copied (the daemon's work, for cost accounting).
    pub pages_moved: u64,
}

impl CompactionOutcome {
    /// Convenience: number of blocks that moved.
    pub fn moved_blocks(&self) -> usize {
        self.relocations.len()
    }
}

/// Compacts the movable allocations of `buddy`.
///
/// `movable` lists blocks (base, order) currently allocated in `buddy` that
/// the caller is able to migrate (i.e. it can update whatever mappings point
/// at them). Unlisted allocations are treated as pinned and are packed
/// around.
///
/// Returns the relocations performed. The caller must apply them to its
/// page tables / reservation tables.
///
/// # Panics
///
/// Panics if an entry of `movable` is not a live allocation of `buddy`.
pub fn compact(
    buddy: &mut BuddyAllocator,
    movable: &[(PhysAddr, PageOrder)],
) -> CompactionOutcome {
    // Free all movable blocks, largest first is irrelevant for freeing.
    for &(base, order) in movable {
        assert!(
            buddy.is_allocated(base, order),
            "compaction given a non-live block {base:?} order {order}"
        );
        buddy.free(base, order).expect("validated above");
    }
    // Re-allocate the same multiset, largest blocks first (classic buddy
    // re-pack: guarantees success because the multiset fit before).
    let mut order_sorted: Vec<(PhysAddr, PageOrder)> = movable.to_vec();
    order_sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut outcome = CompactionOutcome::default();
    for (from, order) in order_sorted {
        let to = buddy
            .alloc(order)
            .expect("re-allocating a freed multiset cannot fail");
        if to != from {
            outcome.pages_moved += order.base_pages();
            outcome.relocations.push(Relocation { from, to, order });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentParams, Fragmenter};

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn compaction_restores_contiguity() {
        let mut buddy = BuddyAllocator::new(64 << 20);
        let mut frag = Fragmenter::new(FragmentParams {
            target_free_fraction: 0.5,
            ..Default::default()
        });
        let live = frag.run(&mut buddy);
        let before = buddy.histogram().coverage(o(10)); // 4 MB coverage
        let outcome = compact(&mut buddy, &live);
        let after = buddy.histogram().coverage(o(10));
        assert!(
            after > before || (before == 1.0 && after == 1.0),
            "coverage should improve: {before} -> {after}"
        );
        assert!(after > 0.9, "fully movable memory compacts well: {after}");
        assert!(outcome.pages_moved > 0);
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn compaction_preserves_block_multiset() {
        let mut buddy = BuddyAllocator::new(16 << 20);
        let mut live = Vec::new();
        for ord in [0u8, 0, 1, 2, 3, 0, 1] {
            live.push((buddy.alloc(o(ord)).unwrap(), o(ord)));
        }
        let used_before = buddy.used_bytes();
        let outcome = compact(&mut buddy, &live);
        assert_eq!(buddy.used_bytes(), used_before);
        // Every relocation target is a live allocation of the same order.
        for r in &outcome.relocations {
            assert!(buddy.is_allocated(r.to, r.order));
        }
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn unmovable_blocks_stay_put() {
        let mut buddy = BuddyAllocator::new(8 << 20);
        let pinned = buddy.alloc(o(4)).unwrap();
        let movable_blk = buddy.alloc(o(2)).unwrap();
        let outcome = compact(&mut buddy, &[(movable_blk, o(2))]);
        assert!(buddy.is_allocated(pinned, o(4)), "pinned block untouched");
        for r in &outcome.relocations {
            assert_ne!(r.from, pinned);
        }
    }

    #[test]
    fn already_compact_memory_moves_nothing() {
        let mut buddy = BuddyAllocator::new(8 << 20);
        let a = buddy.alloc(o(3)).unwrap();
        let b = buddy.alloc(o(3)).unwrap();
        // a and b are the lowest possible blocks already; largest-first
        // re-pack lands them in the same places.
        let outcome = compact(&mut buddy, &[(a, o(3)), (b, o(3))]);
        assert_eq!(outcome.moved_blocks(), 0);
        assert_eq!(outcome.pages_moved, 0);
    }

    #[test]
    #[should_panic(expected = "non-live block")]
    fn rejects_stale_movable_list() {
        let mut buddy = BuddyAllocator::new(1 << 20);
        let a = buddy.alloc(o(0)).unwrap();
        buddy.free(a, o(0)).unwrap();
        compact(&mut buddy, &[(a, o(0))]);
    }
}
