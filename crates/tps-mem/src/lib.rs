//! Physical-memory substrate for the TPS reproduction.
//!
//! The paper's OS-side machinery rests on four pieces of Linux/FreeBSD
//! infrastructure, all rebuilt here:
//!
//! * [`BuddyAllocator`] — power-of-two free lists with split on allocation
//!   and buddy-merge on free (paper §II-B).
//! * [`fragment`] — a churn engine that drives the allocator into the
//!   heavily-fragmented states of Fig. 15/16, plus free-memory *coverage*
//!   analysis (what fraction of free memory each single page size could use).
//! * [`compaction`] — a model of the memory-compaction daemon: migrates
//!   movable allocations to re-create contiguity, reporting what moved.
//! * [`reservation`] — frame-reservation bookkeeping for reservation-based
//!   demand paging (paper §III-B1): reserved spans, offset→frame lookup, and
//!   the utilization tree that drives TPS page promotion.
//!
//! # Example
//!
//! ```
//! use tps_mem::BuddyAllocator;
//! use tps_core::PageOrder;
//!
//! let mut buddy = BuddyAllocator::new(64 << 20); // 64 MB of physical memory
//! let block = buddy.alloc(PageOrder::new(4).unwrap()).unwrap(); // 64 KB
//! assert!(block.is_aligned(16));
//! buddy.free(block, PageOrder::new(4).unwrap()).unwrap();
//! assert_eq!(buddy.free_bytes(), 64 << 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
pub mod compaction;
pub mod fragment;
pub mod reservation;

pub use buddy::{BuddyAllocator, FreeHistogram};
pub use compaction::{CompactionOutcome, Relocation};
pub use fragment::{FragmentParams, Fragmenter};
pub use reservation::{Reservation, ReservationId, ReservationTable, Segment, UtilizationTree};
