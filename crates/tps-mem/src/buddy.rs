//! The buddy physical-memory allocator (paper §II-B).
//!
//! Free physical memory is kept in per-order free lists of power-of-two
//! sized, size-aligned blocks. Allocation of order *k* takes a block from
//! free list *k*, or iteratively splits the smallest larger free block; each
//! split produces a unique buddy pair. Freeing merges a block with its buddy
//! whenever the buddy is also free, repeating upward.

use std::collections::{BTreeSet, HashMap};
use tps_core::inject::{self, FaultSite, InjectorHandle};
use tps_core::{PageOrder, PhysAddr, TpsError, BASE_PAGE_SHIFT, MAX_PAGE_ORDER};

/// Per-order counts of free blocks, in the spirit of `/proc/buddyinfo`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FreeHistogram {
    counts: Vec<u64>,
}

impl FreeHistogram {
    /// Number of free blocks of the given order.
    pub fn count(&self, order: PageOrder) -> u64 {
        self.counts.get(order.get() as usize).copied().unwrap_or(0)
    }

    /// Total free bytes represented by the histogram.
    pub fn free_bytes(&self) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(o, &c)| c << (BASE_PAGE_SHIFT as u64 + o as u64))
            .sum()
    }

    /// Iterates `(order, count)` pairs, smallest order first.
    pub fn iter(&self) -> impl Iterator<Item = (PageOrder, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(o, &c)| (PageOrder::new_unchecked(o as u8), c))
    }

    /// Fraction of free memory usable if *every* allocation used a single
    /// page size of the given order (paper Fig. 15).
    ///
    /// A free buddy block of order `b ≥ s` is fully usable by order-`s`
    /// pages (it is size-aligned); a smaller block is not usable at all.
    /// Returns 1.0 when there is no free memory (vacuously covered).
    pub fn coverage(&self, order: PageOrder) -> f64 {
        let total = self.free_bytes();
        if total == 0 {
            return 1.0;
        }
        let usable: u64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(o, _)| o >= order.get() as usize)
            .map(|(o, &c)| c << (BASE_PAGE_SHIFT as u64 + o as u64))
            .sum();
        usable as f64 / total as f64
    }
}

/// A buddy allocator managing `[0, total_bytes)` of simulated physical
/// memory.
///
/// Deterministic: free lists are ordered sets, and allocation always takes
/// the lowest-addressed suitable block.
///
/// # Example
///
/// ```
/// use tps_mem::BuddyAllocator;
/// use tps_core::PageOrder;
///
/// let mut buddy = BuddyAllocator::new(1 << 20);
/// let a = buddy.alloc(PageOrder::new(0).unwrap()).unwrap();
/// let b = buddy.alloc(PageOrder::new(0).unwrap()).unwrap();
/// assert_ne!(a, b);
/// buddy.free(a, PageOrder::new(0).unwrap()).unwrap();
/// buddy.free(b, PageOrder::new(0).unwrap()).unwrap();
/// // a and b were buddies: they merge back into larger blocks.
/// assert_eq!(buddy.free_bytes(), 1 << 20);
/// ```
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    /// free_lists[k] holds base addresses of free order-k blocks.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated blocks: base address -> order. Used to validate frees and
    /// to enumerate movable allocations during compaction.
    allocated: HashMap<u64, u8>,
    total_bytes: u64,
    free_bytes: u64,
    max_order: u8,
    /// Cumulative operation counts (used by the OS system-time model).
    splits: u64,
    merges: u64,
    allocs: u64,
    frees: u64,
    /// Optional fault injector consulted by [`BuddyAllocator::alloc`].
    /// `None` (the default) costs one branch per allocation. Cloning the
    /// allocator shares the injector stream with the clone.
    injector: Option<InjectorHandle>,
}

impl BuddyAllocator {
    /// Creates an allocator managing `total_bytes` of physical memory.
    ///
    /// The initial free space is decomposed greedily into maximal aligned
    /// power-of-two blocks.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is zero or not a multiple of 4 KB.
    pub fn new(total_bytes: u64) -> Self {
        assert!(total_bytes > 0, "physical memory must be non-empty");
        assert_eq!(
            total_bytes & ((1 << BASE_PAGE_SHIFT) - 1),
            0,
            "physical memory must be a multiple of the base page"
        );
        let max_order = MAX_PAGE_ORDER;
        let mut this = BuddyAllocator {
            free_lists: vec![BTreeSet::new(); max_order as usize + 1],
            allocated: HashMap::new(),
            total_bytes,
            free_bytes: 0,
            max_order,
            splits: 0,
            merges: 0,
            allocs: 0,
            frees: 0,
            injector: None,
        };
        // Greedy decomposition of [0, total) into maximal aligned blocks.
        let mut addr = 0u64;
        while addr < total_bytes {
            let align_order = if addr == 0 {
                max_order as u32
            } else {
                (addr.trailing_zeros() - BASE_PAGE_SHIFT).min(max_order as u32)
            };
            let remaining = total_bytes - addr;
            let fit_order = (63 - remaining.leading_zeros()).saturating_sub(BASE_PAGE_SHIFT);
            let order = align_order.min(fit_order).min(max_order as u32) as u8;
            this.free_lists[order as usize].insert(addr);
            addr += 1u64 << (BASE_PAGE_SHIFT + order as u32);
        }
        this.free_bytes = total_bytes;
        this
    }

    /// Total physical memory managed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.total_bytes - self.free_bytes
    }

    /// The largest order this allocator will ever hand out.
    pub fn max_order(&self) -> PageOrder {
        PageOrder::new_unchecked(self.max_order)
    }

    /// Installs a fault injector consulted on every [`BuddyAllocator::alloc`]
    /// (forced [`TpsError::OutOfMemory`]). Pass `None` to remove it.
    pub fn set_injector(&mut self, injector: Option<InjectorHandle>) {
        self.injector = injector;
    }

    /// Consults the installed injector for a non-allocation site (span
    /// reservation, compaction steps). The `None` fast path is one branch.
    pub(crate) fn consult_injector(&mut self, site: FaultSite) -> bool {
        inject::should_fault(&self.injector, site)
    }

    /// Allocates a size-aligned block of the given order.
    ///
    /// Splits the smallest larger free block if no exact-size block exists.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::OutOfMemory`] if no block of the requested order
    /// (or larger) is free, or if an installed fault injector forces the
    /// allocation to fail.
    pub fn alloc(&mut self, order: PageOrder) -> Result<PhysAddr, TpsError> {
        if inject::should_fault(&self.injector, FaultSite::BuddyAlloc { order: order.get() }) {
            return Err(TpsError::OutOfMemory { order: order.get() });
        }
        self.alloc_uninjected(order)
    }

    /// [`BuddyAllocator::alloc`] without consulting the fault injector.
    ///
    /// Used where an allocation is known to succeed by construction and a
    /// forced failure would break an internal invariant: re-allocating the
    /// freed multiset during compaction, and the degradation path inside
    /// [`BuddyAllocator::alloc_at_most`] after a free list was checked
    /// non-empty.
    pub(crate) fn alloc_uninjected(&mut self, order: PageOrder) -> Result<PhysAddr, TpsError> {
        let want = order.get();
        // Find the smallest order >= want with a free block.
        let from = (want..=self.max_order)
            .find(|&o| !self.free_lists[o as usize].is_empty())
            .ok_or(TpsError::OutOfMemory { order: want })?;
        let base = *self.free_lists[from as usize]
            .iter()
            .next()
            .expect("non-empty");
        self.free_lists[from as usize].remove(&base);
        // Split down to the requested order; the upper halves go back free.
        let mut cur = from;
        while cur > want {
            cur -= 1;
            let half = 1u64 << (BASE_PAGE_SHIFT + cur as u32);
            self.free_lists[cur as usize].insert(base + half);
            self.splits += 1;
        }
        self.allocated.insert(base, want);
        self.free_bytes -= order.bytes();
        self.allocs += 1;
        Ok(PhysAddr::new(base))
    }

    /// Allocates the largest available block of order at most `order`.
    ///
    /// Used by the TPS reservation path under fragmentation: when the
    /// desired contiguity does not exist, the OS takes what it can get.
    /// Returns the block and its actual order, or `None` if memory is
    /// completely exhausted.
    pub fn alloc_at_most(&mut self, order: PageOrder) -> Option<(PhysAddr, PageOrder)> {
        // Prefer the exact size (splitting larger blocks if needed), then
        // degrade to the largest smaller block available.
        if let Ok(base) = self.alloc(order) {
            return Some((base, order));
        }
        let best = (0..order.get())
            .rev()
            .find(|&o| !self.free_lists[o as usize].is_empty())?;
        // The exact-order alloc below cannot fail: list `best` is non-empty,
        // and the uninjected path skips the fault injector (the injector was
        // already consulted by the exact-size attempt above).
        let o = PageOrder::new_unchecked(best);
        let base = self
            .alloc_uninjected(o)
            .expect("free list checked non-empty");
        Some((base, o))
    }

    /// Frees a previously allocated block, merging buddies upward.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidFree`] if `(base, order)` does not match an
    /// outstanding allocation.
    pub fn free(&mut self, base: PhysAddr, order: PageOrder) -> Result<(), TpsError> {
        match self.allocated.get(&base.value()) {
            Some(&o) if o == order.get() => {}
            _ => return Err(TpsError::InvalidFree { addr: base.value() }),
        }
        self.allocated.remove(&base.value());
        self.free_bytes += order.bytes();
        self.frees += 1;
        // Merge with the buddy while it is free.
        let mut cur_base = base.value();
        let mut cur_order = order.get();
        while cur_order < self.max_order {
            let buddy = cur_base ^ (1u64 << (BASE_PAGE_SHIFT + cur_order as u32));
            // The buddy may extend past the end of memory for non-power-of-two
            // totals; the set lookup handles that (it simply won't be free).
            if self.free_lists[cur_order as usize].remove(&buddy) {
                cur_base = cur_base.min(buddy);
                cur_order += 1;
                self.merges += 1;
            } else {
                break;
            }
        }
        self.free_lists[cur_order as usize].insert(cur_base);
        Ok(())
    }

    /// True if the block at `base` of the given order is currently allocated.
    pub fn is_allocated(&self, base: PhysAddr, order: PageOrder) -> bool {
        self.allocated.get(&base.value()) == Some(&order.get())
    }

    /// Snapshot of the free lists (order → block count).
    pub fn histogram(&self) -> FreeHistogram {
        FreeHistogram {
            counts: self.free_lists.iter().map(|l| l.len() as u64).collect(),
        }
    }

    /// All outstanding allocations as `(base, order)` pairs, address order.
    pub fn allocations(&self) -> Vec<(PhysAddr, PageOrder)> {
        let mut v: Vec<_> = self
            .allocated
            // tps-lint::allow(unordered-iteration, reason = "audited: collected into a Vec that is sorted before being observed")
            .iter()
            .map(|(&b, &o)| (PhysAddr::new(b), PageOrder::new_unchecked(o)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of split operations performed so far.
    pub fn split_count(&self) -> u64 {
        self.splits
    }

    /// Number of buddy-merge operations performed so far.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Number of allocations performed so far.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Number of frees performed so far.
    pub fn free_count(&self) -> u64 {
        self.frees
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// Verifies that free blocks are aligned, disjoint from each other and
    /// from allocations, and that the byte accounting adds up.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut spans: Vec<(u64, u64, bool)> = Vec::new(); // (start, len, is_free)
        for (o, list) in self.free_lists.iter().enumerate() {
            let size = 1u64 << (BASE_PAGE_SHIFT + o as u32);
            for &b in list {
                if b % size != 0 {
                    return Err(format!("free block {b:#x} misaligned for order {o}"));
                }
                spans.push((b, size, true));
            }
        }
        // tps-lint::allow(unordered-iteration, reason = "audited: spans are sorted below before any order-sensitive check")
        for (&b, &o) in &self.allocated {
            spans.push((b, 1u64 << (BASE_PAGE_SHIFT + o as u32), false));
        }
        spans.sort_unstable();
        let mut end = 0u64;
        let mut free_total = 0u64;
        for (start, len, is_free) in &spans {
            if *start < end {
                return Err(format!("overlap at {start:#x}"));
            }
            end = start + len;
            if *is_free {
                free_total += len;
            }
        }
        if end > self.total_bytes {
            return Err(format!("block past end of memory: {end:#x}"));
        }
        if free_total != self.free_bytes {
            return Err(format!(
                "free byte accounting mismatch: {free_total} vs {}",
                self.free_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    #[test]
    fn fresh_allocator_is_all_free() {
        let b = BuddyAllocator::new(256 << 20);
        assert_eq!(b.free_bytes(), 256 << 20);
        assert_eq!(b.used_bytes(), 0);
        b.check_invariants().unwrap();
    }

    #[test]
    fn non_power_of_two_total() {
        let total = (256 << 20) + (12 << 10) + BASE_PAGE_SIZE; // odd size
        let b = BuddyAllocator::new(total + BASE_PAGE_SIZE - (total % BASE_PAGE_SIZE));
        b.check_invariants().unwrap();
    }

    #[test]
    fn alloc_is_aligned_and_within_memory() {
        let mut b = BuddyAllocator::new(64 << 20);
        for order in [0u8, 3, 9, 12] {
            let a = b.alloc(o(order)).unwrap();
            assert!(a.is_aligned(12 + order as u32), "order {order}");
            assert!(a.value() + o(order).bytes() <= 64 << 20);
        }
        b.check_invariants().unwrap();
    }

    #[test]
    fn split_and_merge_round_trip() {
        let mut b = BuddyAllocator::new(4 << 20);
        let blocks: Vec<_> = (0..1024).map(|_| b.alloc(o(0)).unwrap()).collect();
        assert_eq!(b.free_bytes(), 0);
        b.check_invariants().unwrap();
        for blk in blocks {
            b.free(blk, o(0)).unwrap();
        }
        assert_eq!(b.free_bytes(), 4 << 20);
        // Everything merged back: one free block of order 10 (4 MB).
        let h = b.histogram();
        assert_eq!(h.count(o(10)), 1);
        assert!(PageOrder::all()
            .filter(|&x| x != o(10))
            .all(|x| h.count(x) == 0));
        b.check_invariants().unwrap();
    }

    #[test]
    fn buddy_merge_requires_buddy_not_neighbor() {
        let mut b = BuddyAllocator::new(16 << 10); // 4 base pages
        let p: Vec<_> = (0..4).map(|_| b.alloc(o(0)).unwrap()).collect();
        // Free pages 1 and 2: adjacent but NOT buddies (1^1=0, 2^1=3).
        b.free(p[1], o(0)).unwrap();
        b.free(p[2], o(0)).unwrap();
        let h = b.histogram();
        assert_eq!(h.count(o(0)), 2);
        assert_eq!(h.count(o(1)), 0);
        // Now free 0: merges with 1. Free 3: merges with 2, then orders 1+1 merge.
        b.free(p[0], o(0)).unwrap();
        assert_eq!(b.histogram().count(o(1)), 1);
        b.free(p[3], o(0)).unwrap();
        assert_eq!(b.histogram().count(o(2)), 1);
    }

    #[test]
    fn out_of_memory() {
        let mut b = BuddyAllocator::new(8 << 10);
        assert!(b.alloc(o(2)).is_err()); // 16K from 8K memory
        let _ = b.alloc(o(1)).unwrap();
        assert!(matches!(
            b.alloc(o(0)),
            Err(TpsError::OutOfMemory { order: 0 })
        ));
    }

    #[test]
    fn invalid_free_detected() {
        let mut b = BuddyAllocator::new(1 << 20);
        let a = b.alloc(o(0)).unwrap();
        assert!(b.free(a, o(1)).is_err()); // wrong order
        assert!(b.free(PhysAddr::new(0x5000), o(0)).is_err()); // never allocated
        b.free(a, o(0)).unwrap();
        assert!(b.free(a, o(0)).is_err()); // double free
    }

    #[test]
    fn alloc_at_most_degrades() {
        let mut b = BuddyAllocator::new(1 << 20); // 256 pages
                                                  // Exhaust into single pages, free every other one -> only order 0 free.
        let pages: Vec<_> = (0..256).map(|_| b.alloc(o(0)).unwrap()).collect();
        for p in pages.iter().step_by(2) {
            b.free(*p, o(0)).unwrap();
        }
        let (blk, got) = b.alloc_at_most(o(8)).unwrap();
        assert_eq!(got, o(0), "only single pages are free");
        assert!(blk.is_aligned(12));
        // Exhaust everything.
        while b.alloc_at_most(o(8)).is_some() {}
        assert_eq!(b.free_bytes(), 0);
        assert!(b.alloc_at_most(o(0)).is_none());
    }

    #[test]
    fn histogram_and_coverage() {
        let mut b = BuddyAllocator::new(2 << 20); // order 9 block
        let h = b.histogram();
        assert_eq!(h.free_bytes(), 2 << 20);
        assert_eq!(h.coverage(o(9)), 1.0);
        // Allocate one 4K page: the order-9 block shatters; 2M coverage -> 0.
        let _ = b.alloc(o(0)).unwrap();
        let h = b.histogram();
        assert_eq!(h.coverage(o(9)), 0.0);
        assert_eq!(h.coverage(o(0)), 1.0);
        assert!(h.coverage(o(8)) > 0.49 && h.coverage(o(8)) < 0.52);
    }

    #[test]
    fn deterministic_allocation_order() {
        let mut a = BuddyAllocator::new(8 << 20);
        let mut b = BuddyAllocator::new(8 << 20);
        for _ in 0..100 {
            assert_eq!(a.alloc(o(1)).unwrap(), b.alloc(o(1)).unwrap());
        }
    }

    #[test]
    fn injector_forces_oom_and_alloc_at_most_degrades() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Debug)]
        struct AlwaysFault;
        impl tps_core::FaultInjector for AlwaysFault {
            fn should_fault(&mut self, _site: tps_core::FaultSite) -> bool {
                true
            }
        }

        let mut b = BuddyAllocator::new(1 << 20);
        // Shatter the single large block so smaller free lists are populated.
        let a = b.alloc(o(0)).unwrap();
        b.set_injector(Some(Rc::new(RefCell::new(AlwaysFault))));
        assert!(matches!(
            b.alloc(o(0)),
            Err(TpsError::OutOfMemory { order: 0 })
        ));
        // The degradation path must not panic: the injected exact-size
        // failure falls back to the largest smaller free block.
        let (blk, got) = b.alloc_at_most(o(3)).unwrap();
        assert!(got < o(3));
        b.set_injector(None);
        b.free(blk, got).unwrap();
        b.free(a, o(0)).unwrap();
        assert_eq!(b.free_bytes(), 1 << 20);
        b.check_invariants().unwrap();
    }

    #[test]
    fn op_counters_advance() {
        let mut b = BuddyAllocator::new(1 << 20);
        let x = b.alloc(o(0)).unwrap();
        assert!(b.split_count() > 0);
        assert_eq!(b.alloc_count(), 1);
        b.free(x, o(0)).unwrap();
        assert!(b.merge_count() > 0);
        assert_eq!(b.free_count(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random alloc/free sequences keep every invariant intact and
        /// freeing everything restores all memory.
        #[test]
        fn random_churn_preserves_invariants(
            seed in 0u64..1_000_000,
            ops in 1usize..200,
        ) {
            let mut rng = tps_core::rng::Rng::new(seed);
            let mut b = BuddyAllocator::new(16 << 20);
            let mut live: Vec<(PhysAddr, PageOrder)> = Vec::new();
            for _ in 0..ops {
                if live.is_empty() || rng.chance(0.6) {
                    let order = PageOrder::new(rng.below(7) as u8).unwrap();
                    if let Ok(base) = b.alloc(order) {
                        live.push((base, order));
                    }
                } else {
                    let i = rng.below(live.len() as u64) as usize;
                    let (base, order) = live.swap_remove(i);
                    b.free(base, order).unwrap();
                }
            }
            b.check_invariants().map_err(TestCaseError::fail)?;
            for (base, order) in live {
                b.free(base, order).unwrap();
            }
            prop_assert_eq!(b.free_bytes(), 16 << 20);
            b.check_invariants().map_err(TestCaseError::fail)?;
        }

        /// Allocated blocks never overlap.
        #[test]
        fn allocations_disjoint(seed in 0u64..1_000_000) {
            let mut rng = tps_core::rng::Rng::new(seed);
            let mut b = BuddyAllocator::new(4 << 20);
            let mut live = Vec::new();
            for _ in 0..64 {
                let order = PageOrder::new(rng.below(5) as u8).unwrap();
                if let Ok(base) = b.alloc(order) {
                    live.push((base.value(), order.bytes()));
                }
            }
            live.sort_unstable();
            for w in live.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0);
            }
        }
    }
}
