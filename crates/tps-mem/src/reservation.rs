//! Frame reservations for reservation-based demand paging (paper §III-B1).
//!
//! When a large mapping request arrives, the OS does not immediately map it.
//! It removes appropriately sized free blocks from the buddy allocator and
//! parks them in a *paging reservation table* keyed by the virtual range.
//! Demand faults then consume frames from the reservation, and the
//! [`UtilizationTree`] tracks which constituent base pages have been touched
//! so the policy can decide when an aligned power-of-two region is
//! promotable to a single larger page.

use crate::buddy::BuddyAllocator;
use std::collections::BTreeMap;
use tps_core::inject::FaultSite;
use tps_core::{InvariantLayer, PageOrder, PhysAddr, TpsError, VirtAddr, BASE_PAGE_SHIFT};

/// Identifier of a reservation in a [`ReservationTable`].
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct ReservationId(pub u64);

/// One physically contiguous piece of a reservation.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct Segment {
    /// Byte offset of this segment within the reserved virtual range.
    pub offset: u64,
    /// Physical base of the reserved block.
    pub base: PhysAddr,
    /// Order of the reserved block.
    pub order: PageOrder,
}

/// A reserved virtual range with the physical blocks backing it.
///
/// Reserved frames are "neither free nor in use": they are out of the buddy
/// allocator but not yet mapped (paper §III-B1).
#[derive(Clone, Debug)]
pub struct Reservation {
    id: ReservationId,
    va_base: VirtAddr,
    len: u64,
    segments: Vec<Segment>,
    util: UtilizationTree,
}

impl Reservation {
    /// Creates a reservation over `[va_base, va_base + len)` backed by the
    /// given segments.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvariantViolation`] if the segments do not
    /// exactly tile `[0, len)` in order, if a segment's physical base or
    /// offset is not aligned to its order, or if `len` exceeds the largest
    /// representable page order. These conditions mean the caller's segment
    /// list is corrupt; the mmap path reports that instead of panicking.
    pub fn new(
        id: ReservationId,
        va_base: VirtAddr,
        len: u64,
        segments: Vec<Segment>,
    ) -> Result<Self, TpsError> {
        let mut expect = 0u64;
        for s in &segments {
            if s.offset != expect {
                return Err(TpsError::invariant(
                    InvariantLayer::Reservation,
                    format!(
                        "segments must tile the range: expected offset {expect:#x}, got {:#x}",
                        s.offset
                    ),
                ));
            }
            if !s.base.is_aligned(s.order.shift()) {
                return Err(TpsError::invariant(
                    InvariantLayer::Reservation,
                    format!(
                        "segment base {:#x} misaligned for order {}",
                        s.base.value(),
                        s.order.get()
                    ),
                ));
            }
            if s.offset % s.order.bytes() != 0 {
                return Err(TpsError::invariant(
                    InvariantLayer::Reservation,
                    format!(
                        "segment offset {:#x} not aligned to its order {}",
                        s.offset,
                        s.order.get()
                    ),
                ));
            }
            expect += s.order.bytes();
        }
        if expect != len {
            return Err(TpsError::invariant(
                InvariantLayer::Reservation,
                format!("segments cover {expect:#x} bytes of a {len:#x}-byte range"),
            ));
        }
        let tree_order = PageOrder::covering(len)
            .map_err(|_| {
                TpsError::invariant(
                    InvariantLayer::Reservation,
                    format!("reservation of {len:#x} bytes exceeds the maximum page order"),
                )
            })?
            .get();
        Ok(Reservation {
            id,
            va_base,
            len,
            segments,
            util: UtilizationTree::new(tree_order),
        })
    }

    /// The reservation's identifier.
    pub fn id(&self) -> ReservationId {
        self.id
    }

    /// First virtual address covered.
    pub fn va_base(&self) -> VirtAddr {
        self.va_base
    }

    /// Length in bytes of the reserved virtual range.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the reservation covers no bytes (never constructed in
    /// practice, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `va` falls inside the reserved range.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.va_base && (va - self.va_base) < self.len
    }

    /// The backing segments, in offset order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Mutable access to the backing segments — used by memory compaction
    /// to retarget physical bases after migration. Callers must preserve
    /// the tiling invariants (offsets and orders may not change) and keep
    /// each base aligned to its order.
    pub fn segments_mut(&mut self) -> &mut [Segment] {
        &mut self.segments
    }

    /// The physical address backing the given byte offset, if reserved.
    pub fn frame_for(&self, offset: u64) -> Option<PhysAddr> {
        if offset >= self.len {
            return None;
        }
        let idx = self
            .segments
            .partition_point(|s| s.offset <= offset)
            .checked_sub(1)?;
        let s = &self.segments[idx];
        debug_assert!(offset >= s.offset && offset < s.offset + s.order.bytes());
        Some(PhysAddr::new(s.base.value() + (offset - s.offset)))
    }

    /// True if the reservation's backing is one single contiguous block
    /// whose order equals the covering order of the range (i.e. the whole
    /// range could be mapped with one PTE if fully utilized).
    pub fn is_fully_contiguous(&self) -> bool {
        self.segments.len() == 1
    }

    /// The largest page order that can be mapped at `offset` without leaving
    /// the physically contiguous, VA-aligned segment containing it.
    pub fn max_order_at(&self, offset: u64) -> Option<PageOrder> {
        let idx = self
            .segments
            .partition_point(|s| s.offset <= offset)
            .checked_sub(1)?;
        Some(self.segments[idx].order)
    }

    /// Shared access to the utilization tree.
    pub fn utilization(&self) -> &UtilizationTree {
        &self.util
    }

    /// Mutable access to the utilization tree (the fault handler touches
    /// pages through this).
    pub fn utilization_mut(&mut self) -> &mut UtilizationTree {
        &mut self.util
    }
}

/// The OS paging reservation table: reservations keyed by virtual range.
#[derive(Clone, Debug, Default)]
pub struct ReservationTable {
    by_start: BTreeMap<u64, Reservation>,
    next_id: u64,
}

impl ReservationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live reservations.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// True if no reservations exist.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Inserts a reservation built from segments, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::RangeOverlap`] if the virtual range overlaps an
    /// existing reservation, or [`TpsError::InvariantViolation`] if the
    /// segment list does not validly tile the range (see
    /// [`Reservation::new`]).
    pub fn insert(
        &mut self,
        va_base: VirtAddr,
        len: u64,
        segments: Vec<Segment>,
    ) -> Result<ReservationId, TpsError> {
        let start = va_base.value();
        let overlap_err = TpsError::RangeOverlap { start, len };
        if let Some((_, prev)) = self.by_start.range(..=start).next_back() {
            if prev.va_base.value() + prev.len > start {
                return Err(overlap_err);
            }
        }
        if let Some((&next_start, _)) = self.by_start.range(start..).next() {
            if next_start < start + len {
                return Err(overlap_err);
            }
        }
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.by_start
            .insert(start, Reservation::new(id, va_base, len, segments)?);
        Ok(id)
    }

    /// The reservation containing `va`, if any.
    pub fn find(&self, va: VirtAddr) -> Option<&Reservation> {
        let (_, r) = self.by_start.range(..=va.value()).next_back()?;
        r.contains(va).then_some(r)
    }

    /// Mutable variant of [`ReservationTable::find`].
    pub fn find_mut(&mut self, va: VirtAddr) -> Option<&mut Reservation> {
        let (_, r) = self.by_start.range_mut(..=va.value()).next_back()?;
        r.contains(va).then_some(r)
    }

    /// Removes and returns the reservation starting exactly at `va_base`.
    pub fn remove(&mut self, va_base: VirtAddr) -> Option<Reservation> {
        self.by_start.remove(&va_base.value())
    }

    /// Removes and returns every reservation whose base lies in
    /// `[start, end)` — the munmap path.
    pub fn remove_in_range(&mut self, start: VirtAddr, end: VirtAddr) -> Vec<Reservation> {
        let keys: Vec<u64> = self
            .by_start
            .range(start.value()..end.value())
            .map(|(&k, _)| k)
            .collect();
        // filter_map instead of expect: the keys were collected from the map
        // with no interleaving removal, so every lookup hits, but the munmap
        // path must stay panic-free even if that ever changes.
        keys.into_iter()
            .filter_map(|k| self.by_start.remove(&k))
            .collect()
    }

    /// Iterates all reservations in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Reservation> {
        self.by_start.values()
    }

    /// Mutable iteration (compaction retargeting).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Reservation> {
        self.by_start.values_mut()
    }
}

/// Tracks which base pages of a power-of-two region have been touched, with
/// per-node counts for every aligned sub-region, so the TPS policy can make
/// threshold-based promotion decisions (paper §III-B1: "TPS can adjust page
/// promotion aggressiveness based on a utilization threshold").
///
/// Implemented as per-level count arrays: level 0 holds one entry per base
/// page, level `k` holds counts of touched base pages within each aligned
/// `2^k`-page region.
#[derive(Clone, Debug)]
pub struct UtilizationTree {
    order: u8,
    /// levels[k][i] = touched base pages in region i of order k.
    levels: Vec<Vec<u32>>,
    touched_total: u64,
}

impl UtilizationTree {
    /// Creates a tree over a region of `2^order` base pages.
    ///
    /// # Panics
    ///
    /// Panics if `order > 24` (a 64 GB region — larger single reservations
    /// are unrealistic and would use excessive host memory).
    pub fn new(order: u8) -> Self {
        assert!(order <= 24, "utilization tree region too large");
        let levels = (0..=order)
            .map(|k| vec![0u32; 1usize << (order - k)])
            .collect();
        UtilizationTree {
            order,
            levels,
            touched_total: 0,
        }
    }

    /// The region order (log2 of the number of base pages tracked).
    pub fn order(&self) -> u8 {
        self.order
    }

    /// Total number of distinct base pages touched so far.
    pub fn touched_total(&self) -> u64 {
        self.touched_total
    }

    /// True if the base page at `page_idx` has been touched.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is outside the region.
    pub fn touched(&self, page_idx: u64) -> bool {
        self.levels[0][page_idx as usize] != 0
    }

    /// Marks a base page touched. Returns `true` if it was newly touched.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is outside the region.
    pub fn touch(&mut self, page_idx: u64) -> bool {
        if self.levels[0][page_idx as usize] != 0 {
            return false;
        }
        for k in 0..=self.order {
            self.levels[k as usize][(page_idx >> k) as usize] += 1;
        }
        self.touched_total += 1;
        true
    }

    /// Count of touched base pages in the aligned order-`k` region that
    /// contains `page_idx`.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.order()` or `page_idx` is outside the region.
    pub fn count(&self, k: u8, page_idx: u64) -> u32 {
        self.levels[k as usize][(page_idx >> k) as usize]
    }

    /// The largest order `k` such that the aligned order-`k` region
    /// containing `page_idx` meets the utilization `threshold`
    /// (`0 < threshold <= 1`). Returns 0 if only the base page qualifies.
    ///
    /// With `threshold = 1.0` this is the paper's conservative policy:
    /// promote only when 100 % of constituent pages are utilized,
    /// guaranteeing memory usage identical to 4 KB-only paging.
    pub fn promotable_order(&self, page_idx: u64, threshold: f64) -> u8 {
        debug_assert!(threshold > 0.0 && threshold <= 1.0);
        let mut best = 0;
        for k in 1..=self.order {
            let cap = 1u64 << k;
            let need = (threshold * cap as f64).ceil() as u64;
            if u64::from(self.count(k, page_idx)) >= need {
                best = k;
            }
            // Counts are monotone down the tree only in capacity fraction,
            // not absolute terms, so do not break early on the first miss:
            // a 50% threshold can pass at a higher level after failing lower.
        }
        best
    }
}

/// Reserves physical blocks covering `len` bytes with the conservative
/// exact-span decomposition (paper §III-B2: "an aligned 28 KB request
/// results in 16 KB + 8 KB + 4 KB").
///
/// Each piece is the largest power of two that fits the remaining length,
/// is aligned at its offset, and does not exceed `max_order`. Under
/// fragmentation, a piece degrades to whatever the buddy allocator can
/// provide ([`BuddyAllocator::alloc_at_most`]).
///
/// # Errors
///
/// Returns [`TpsError::OutOfMemory`] (after rolling back any partial
/// allocation) if physical memory is exhausted, or if a fault injector
/// installed on `buddy` denies the whole-span reservation up front.
/// Returns [`TpsError::InvariantViolation`] if `len` is zero or not a
/// multiple of the base page size — a malformed request from the mmap
/// layer must surface as an error, not a panic.
pub fn reserve_span(
    buddy: &mut BuddyAllocator,
    len: u64,
    max_order: PageOrder,
) -> Result<Vec<Segment>, TpsError> {
    if len == 0 {
        return Err(TpsError::invariant(
            InvariantLayer::Reservation,
            "cannot reserve an empty span".to_string(),
        ));
    }
    if !len.is_multiple_of(1 << BASE_PAGE_SHIFT) {
        return Err(TpsError::invariant(
            InvariantLayer::Reservation,
            format!("span of {len:#x} bytes is not base-page-aligned"),
        ));
    }
    if buddy.consult_injector(FaultSite::ReserveSpan) {
        // Forced denial before any block is taken: the caller sees the same
        // error an exhausted allocator would produce and degrades to 4 KB.
        return Err(TpsError::OutOfMemory {
            order: max_order.get(),
        });
    }
    let mut segments: Vec<Segment> = Vec::new();
    let mut offset = 0u64;
    while offset < len {
        let remaining = len - offset;
        // `remaining` is a positive multiple of the base page size (checked
        // above, and `got.bytes()` only subtracts page multiples), so
        // `fitting` cannot return None; report rather than panic regardless.
        let Some(fit) = PageOrder::fitting(remaining) else {
            return Err(TpsError::invariant(
                InvariantLayer::Reservation,
                format!("no page order fits {remaining:#x} remaining bytes"),
            ));
        };
        let align = if offset == 0 {
            max_order
        } else {
            PageOrder::new_unchecked(
                ((offset.trailing_zeros() - BASE_PAGE_SHIFT) as u8).min(max_order.get()),
            )
        };
        let ideal = fit.min(align).min(max_order);
        match buddy.alloc_at_most(ideal) {
            Some((base, got)) => {
                segments.push(Segment {
                    offset,
                    base,
                    order: got,
                });
                offset += got.bytes();
            }
            None => {
                // Roll back: return everything to the allocator. A rejected
                // rollback free means allocator state is corrupt; report it
                // instead of panicking.
                for s in segments {
                    if buddy.free(s.base, s.order).is_err() {
                        return Err(TpsError::invariant(
                            InvariantLayer::Buddy,
                            format!(
                                "rollback free of just-allocated block {:#x} (order {}) rejected",
                                s.base.value(),
                                s.order.get()
                            ),
                        ));
                    }
                }
                return Err(TpsError::OutOfMemory { order: ideal.get() });
            }
        }
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tps_core::BASE_PAGE_SIZE;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    fn fresh_buddy() -> BuddyAllocator {
        BuddyAllocator::new(64 << 20)
    }

    #[test]
    fn exact_span_decomposition_matches_paper_example() {
        let mut buddy = fresh_buddy();
        // 28 KB -> 16 + 8 + 4 (paper §III-B2).
        let segs = reserve_span(&mut buddy, 28 << 10, o(18)).unwrap();
        let orders: Vec<u8> = segs.iter().map(|s| s.order.get()).collect();
        assert_eq!(orders, vec![2, 1, 0]);
        assert_eq!(segs[0].offset, 0);
        assert_eq!(segs[1].offset, 16 << 10);
        assert_eq!(segs[2].offset, 24 << 10);
    }

    #[test]
    fn power_of_two_span_is_single_segment() {
        let mut buddy = fresh_buddy();
        let segs = reserve_span(&mut buddy, 4 << 20, o(18)).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].order, o(10));
    }

    #[test]
    fn span_respects_max_order() {
        let mut buddy = fresh_buddy();
        let segs = reserve_span(&mut buddy, 4 << 20, o(8)).unwrap();
        assert!(segs.iter().all(|s| s.order <= o(8)));
        let total: u64 = segs.iter().map(|s| s.order.bytes()).sum();
        assert_eq!(total, 4 << 20);
    }

    #[test]
    fn span_out_of_memory_rolls_back() {
        let mut buddy = BuddyAllocator::new(1 << 20);
        let before = buddy.free_bytes();
        assert!(reserve_span(&mut buddy, 2 << 20, o(18)).is_err());
        assert_eq!(buddy.free_bytes(), before, "partial allocation rolled back");
        buddy.check_invariants().unwrap();
    }

    #[test]
    fn span_degrades_under_fragmentation() {
        let mut buddy = BuddyAllocator::new(1 << 20);
        // Fragment: allocate all 256 pages, free every other page.
        let pages: Vec<_> = (0..256).map(|_| buddy.alloc(o(0)).unwrap()).collect();
        for p in pages.iter().step_by(2) {
            buddy.free(*p, o(0)).unwrap();
        }
        // Request 64K: only 4K blocks exist -> 16 order-0 segments.
        let segs = reserve_span(&mut buddy, 64 << 10, o(18)).unwrap();
        assert_eq!(segs.len(), 16);
        assert!(segs.iter().all(|s| s.order == o(0)));
    }

    #[test]
    fn reservation_frame_lookup() {
        let mut buddy = fresh_buddy();
        let segs = reserve_span(&mut buddy, 28 << 10, o(18)).unwrap();
        let seg0_base = segs[0].base;
        let seg2_base = segs[2].base;
        let r =
            Reservation::new(ReservationId(0), VirtAddr::new(0x10000000), 28 << 10, segs).unwrap();
        assert_eq!(r.frame_for(0), Some(seg0_base));
        assert_eq!(
            r.frame_for(BASE_PAGE_SIZE),
            Some(PhysAddr::new(seg0_base.value() + BASE_PAGE_SIZE))
        );
        assert_eq!(r.frame_for(24 << 10), Some(seg2_base));
        assert_eq!(r.frame_for(28 << 10), None);
        assert!(r.contains(VirtAddr::new(0x10000fff)));
        assert!(!r.contains(VirtAddr::new(0x10007000)));
    }

    #[test]
    fn reservation_table_overlap_rejected() {
        let mut buddy = fresh_buddy();
        let mut table = ReservationTable::new();
        let segs = reserve_span(&mut buddy, 16 << 10, o(18)).unwrap();
        table
            .insert(VirtAddr::new(0x1000_0000), 16 << 10, segs)
            .unwrap();
        let segs2 = reserve_span(&mut buddy, 16 << 10, o(18)).unwrap();
        // Overlapping from below.
        assert!(table
            .insert(VirtAddr::new(0x1000_2000), 16 << 10, segs2.clone())
            .is_err());
        // Overlapping from above an existing one.
        assert!(table
            .insert(VirtAddr::new(0x0fff_f000), 16 << 10, segs2.clone())
            .is_err());
        // Adjacent is fine.
        table
            .insert(VirtAddr::new(0x1000_4000), 16 << 10, segs2)
            .unwrap();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn reservation_table_find() {
        let mut buddy = fresh_buddy();
        let mut table = ReservationTable::new();
        let segs = reserve_span(&mut buddy, 64 << 10, o(18)).unwrap();
        let id = table
            .insert(VirtAddr::new(0x2000_0000), 64 << 10, segs)
            .unwrap();
        assert_eq!(table.find(VirtAddr::new(0x2000_8000)).unwrap().id(), id);
        assert!(table.find(VirtAddr::new(0x2001_0000)).is_none());
        assert!(table.find(VirtAddr::new(0x1fff_f000)).is_none());
        let r = table.remove(VirtAddr::new(0x2000_0000)).unwrap();
        assert_eq!(r.id(), id);
        assert!(table.is_empty());
    }

    #[test]
    fn utilization_tree_touch_and_counts() {
        let mut t = UtilizationTree::new(3); // 8 pages
        assert!(t.touch(0));
        assert!(!t.touch(0), "double touch is idempotent");
        assert!(t.touch(1));
        assert_eq!(t.count(0, 0), 1);
        assert_eq!(t.count(1, 0), 2);
        assert_eq!(t.count(3, 7), 2);
        assert_eq!(t.touched_total(), 2);
        assert!(t.touched(1));
        assert!(!t.touched(2));
    }

    #[test]
    fn promotable_order_full_threshold() {
        let mut t = UtilizationTree::new(3);
        for i in 0..4 {
            t.touch(i);
        }
        // Pages 0..4 full: order-2 region 0 is 100% utilized.
        assert_eq!(t.promotable_order(0, 1.0), 2);
        assert_eq!(t.promotable_order(3, 1.0), 2);
        // Page 5 untouched: region at order 1 containing page 5 not full.
        t.touch(4);
        assert_eq!(t.promotable_order(4, 1.0), 0);
        for i in 5..8 {
            t.touch(i);
        }
        assert_eq!(t.promotable_order(7, 1.0), 3, "whole region now full");
    }

    #[test]
    fn promotable_order_partial_threshold() {
        let mut t = UtilizationTree::new(4); // 16 pages
                                             // Touch pages 0..8 (half the region).
        for i in 0..8 {
            t.touch(i);
        }
        assert_eq!(t.promotable_order(0, 1.0), 3);
        assert_eq!(
            t.promotable_order(0, 0.5),
            4,
            "50% threshold promotes whole"
        );
    }

    #[test]
    #[should_panic(expected = "region too large")]
    fn utilization_tree_caps_order() {
        UtilizationTree::new(25);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tps_core::GIB;

    fn o(x: u8) -> PageOrder {
        PageOrder::new(x).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// reserve_span always tiles exactly and each segment is aligned both
        /// physically and at its VA offset.
        #[test]
        fn span_tiles_exactly(pages in 1u64..2000, max_order in 0u8..12) {
            let mut buddy = BuddyAllocator::new(64 << 20);
            let len = pages << 12;
            let segs = reserve_span(&mut buddy, len, o(max_order)).unwrap();
            let mut expect = 0;
            for s in &segs {
                prop_assert_eq!(s.offset, expect);
                prop_assert!(s.base.is_aligned(s.order.shift()));
                prop_assert_eq!(s.offset % s.order.bytes(), 0);
                prop_assert!(s.order.get() <= max_order);
                expect += s.order.bytes();
            }
            prop_assert_eq!(expect, len);
            // Conservative decomposition never over-reserves.
            prop_assert_eq!(buddy.used_bytes(), len);
        }

        /// frame_for agrees with a naive linear scan.
        #[test]
        fn frame_lookup_matches_linear_scan(pages in 1u64..500, probe in 0u64..500) {
            let mut buddy = BuddyAllocator::new(64 << 20);
            let len = pages << 12;
            let segs = reserve_span(&mut buddy, len, o(18)).unwrap();
            let r = Reservation::new(ReservationId(1), VirtAddr::new(GIB), len, segs.clone())
                .unwrap();
            let offset = (probe % pages) << 12;
            let expected = segs.iter()
                .find(|s| offset >= s.offset && offset < s.offset + s.order.bytes())
                .map(|s| PhysAddr::new(s.base.value() + (offset - s.offset)));
            prop_assert_eq!(r.frame_for(offset), expected);
        }

        /// Utilization counts always equal the number of touched leaves in
        /// the region, at every level.
        #[test]
        fn utilization_counts_consistent(order in 1u8..8, touches in proptest::collection::vec(0u64..256, 1..64)) {
            let mut t = UtilizationTree::new(order);
            let n = 1u64 << order;
            let mut touched = std::collections::HashSet::new();
            for raw in touches {
                let idx = raw % n;
                t.touch(idx);
                touched.insert(idx);
            }
            prop_assert_eq!(t.touched_total(), touched.len() as u64);
            for k in 0..=order {
                for region in 0..(n >> k) {
                    let lo = region << k;
                    let hi = lo + (1 << k);
                    let expect = touched.iter().filter(|&&p| p >= lo && p < hi).count() as u32;
                    prop_assert_eq!(t.count(k, lo), expect);
                }
            }
        }
    }
}
