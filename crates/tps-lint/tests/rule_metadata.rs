//! Operator-facing rule metadata, asserted for every registered rule: a
//! rule without `--explain` text is undebuggable from CI output, and a
//! rule whose diagnostics do not survive `--format json` is invisible to
//! machine consumers.

use tps_lint::diag::{to_json, Diagnostic};
use tps_lint::rules::{explain, RULES};

#[test]
fn every_rule_has_explain_text_leading_with_its_name() {
    for rule in RULES {
        let text = explain(rule)
            .unwrap_or_else(|| panic!("rule {rule} is registered but has no --explain text"));
        assert!(!text.trim().is_empty(), "rule {rule} explain text is empty");
        assert!(
            text.starts_with(&format!("{rule}:")),
            "rule {rule} explain text must lead with the rule name so \
             `--explain` output is self-identifying"
        );
    }
}

#[test]
fn unknown_rules_have_no_explain_text() {
    assert!(explain("no-such-rule").is_none());
    assert!(explain("").is_none());
}

#[test]
fn every_rule_round_trips_through_the_json_renderer() {
    let diags: Vec<Diagnostic> = RULES
        .iter()
        .map(|rule| Diagnostic {
            path: format!("crates/x/src/{rule}.rs"),
            line: 7,
            col: 3,
            rule,
            message: format!("sample {rule} finding"),
        })
        .collect();
    let j = to_json(&diags, 0, true);
    for rule in RULES {
        assert!(
            j.contains(&format!("\"rule\": \"{rule}\"")),
            "rule {rule} is missing from the JSON rendering"
        );
        assert!(
            j.contains(&format!("crates/x/src/{rule}.rs")),
            "rule {rule} diagnostic path is missing from the JSON rendering"
        );
    }
    assert!(j.contains(&format!("\"total\": {}", RULES.len())));
    assert!(j.contains("\"failed\": true"));
}
