//! The ratchet, asserted in-tree: the shipped workspace must be within the
//! committed `lint-baseline.toml`, the panic-free budget must be strictly
//! below its pre-PR level, and the magic-page-size budget must be zero.

use std::fs;
use std::path::Path;

use tps_lint::baseline::Baseline;
use tps_lint::{lint_workspace, rules};

/// Grandfathered `panic-free-fault-path` count before this PR's burn-down.
/// The baseline may only shrink from here; growing it back is a regression.
const PRE_PR_PANIC_FREE_COUNT: usize = 15;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/tps-lint sits two levels below the workspace root")
}

fn committed_baseline() -> Baseline {
    let path = workspace_root().join("lint-baseline.toml");
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Baseline::parse(&text).expect("committed baseline parses")
}

#[test]
fn workspace_is_within_the_committed_baseline() {
    let report = lint_workspace(workspace_root()).expect("workspace lints");
    let (over, _within) = report.against(&committed_baseline());
    assert!(
        over.is_empty(),
        "lint gate is red — {} diagnostic(s) over the committed baseline:\n{}",
        over.len(),
        over.iter()
            .map(|d| format!("  {}:{} [{}] {}", d.path, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn panic_free_budget_shrank_below_its_pre_pr_level() {
    let total = committed_baseline().rule_total(rules::PANIC_FREE);
    assert!(
        total < PRE_PR_PANIC_FREE_COUNT,
        "panic-free-fault-path baseline is {total}, expected strictly below \
         the pre-PR count of {PRE_PR_PANIC_FREE_COUNT}"
    );
}

#[test]
fn no_magic_page_size_budget_is_zero() {
    let base = committed_baseline();
    assert_eq!(
        base.rule_total(rules::NO_MAGIC_PAGE_SIZE),
        0,
        "no bare page-size literal may ever be grandfathered"
    );
}

#[test]
fn determinism_rules_have_no_grandfathered_debt() {
    // The four determinism rules shipped with their findings burned down
    // (BTreeMap conversions) or suppressed with an audit reason — the
    // baseline must not quietly grow entries for them.
    let base = committed_baseline();
    for rule in [
        rules::UNORDERED_ITERATION,
        rules::WALL_CLOCK,
        rules::UNSEEDED_ENTROPY,
        rules::FLOAT_ACCUM_ORDER,
    ] {
        assert_eq!(
            base.rule_total(rule),
            0,
            "determinism rule {rule} must not carry grandfathered violations"
        );
    }
}

#[test]
fn hot_path_rules_have_no_grandfathered_debt() {
    // The four hot-path rules shipped after their burn-down (the CoLT
    // contiguity probe devirtualized, the walker's ref Vec replaced with
    // an inline buffer) — zero grandfathered entries, forever. Audited
    // sites use inline allow-with-reason, never the baseline.
    let base = committed_baseline();
    for rule in [
        rules::HOT_PATH_ALLOC,
        rules::HOT_PATH_DYN_DISPATCH,
        rules::HOT_PATH_LOCK_IO,
        rules::HOT_PATH_CLONE,
    ] {
        assert_eq!(
            base.rule_total(rule),
            0,
            "hot-path rule {rule} must not carry grandfathered violations"
        );
    }
}

#[test]
fn hot_path_contract_file_is_committed_and_populated() {
    // `lint_workspace` prefers `<root>/hot-paths.toml`; the compiled-in
    // builtin is an include_str! of the same file, so the committed copy
    // is the single source of truth and must exist and declare entries.
    let path = workspace_root().join("hot-paths.toml");
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let hot = tps_lint::hot_paths::HotPaths::parse(&text).expect("committed hot-paths.toml parses");
    assert!(
        !hot.entry_points.is_empty(),
        "hot-paths.toml declares no entry points — the reachability pass would be vacuous"
    );
    assert!(
        hot.entry_points.keys().any(|k| k == "Mmu::access"),
        "the per-access translation entry point must stay declared"
    );
}

#[test]
fn write_baseline_output_is_deterministic() {
    // `--write-baseline` must produce byte-identical output regardless of
    // the order files reach the linter, and must round-trip through parse —
    // otherwise regenerating the baseline creates spurious diffs.
    let mut files = tps_lint::collect_files(workspace_root()).expect("workspace readable");
    let forward = tps_lint::lint_files(&files).to_baseline().serialize();
    files.reverse();
    let reversed = tps_lint::lint_files(&files).to_baseline().serialize();
    assert_eq!(
        forward, reversed,
        "baseline serialization depends on file discovery order"
    );
    let reparsed = Baseline::parse(&forward).expect("serialized baseline parses");
    assert_eq!(
        reparsed.serialize(),
        forward,
        "baseline does not round-trip byte-identically"
    );
    // Sections must appear in sorted rule order, entries in sorted path
    // order — the property that makes diffs reviewable.
    let mut rules_seen = Vec::new();
    let mut paths_in_section = Vec::new();
    for line in forward.lines() {
        if let Some(rule) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            rules_seen.push(rule.to_string());
            paths_in_section.clear();
        } else if let Some((path, _)) = line.split_once('=') {
            let path = path.trim().trim_matches('"').to_string();
            assert!(
                paths_in_section.last().map(|p| p < &path).unwrap_or(true),
                "paths out of order in baseline section"
            );
            paths_in_section.push(path);
        }
    }
    let mut sorted = rules_seen.clone();
    sorted.sort();
    assert_eq!(rules_seen, sorted, "rule sections out of order in baseline");
}

#[test]
fn baseline_only_freezes_known_rules() {
    for (rule, path, count) in committed_baseline().iter() {
        assert!(
            rules::RULES.contains(&rule),
            "baseline entry [{rule}] \"{path}\" = {count} names an unknown rule"
        );
        assert!(count > 0, "zero-count entry for {path} should be dropped");
    }
}
