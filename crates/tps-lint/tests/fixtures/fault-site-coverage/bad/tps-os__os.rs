// fixture: crate=tps-os path=crates/tps-os/src/os.rs

fn hooks(injector: &mut Injector) -> bool {
    injector.should_fault(FaultSite::BuddyAlloc { order: 3 })
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_references_do_not_count_as_hooks() {
        let _ = FaultSite::ReserveSpan;
    }
}
