// fixture: crate=tps-core path=crates/tps-core/src/inject.rs

/// Places where a fault can be injected.
pub enum FaultSite {
    /// A buddy-allocator block allocation.
    BuddyAlloc {
        /// The order being allocated.
        order: u8,
    },
    /// A whole-span reservation request — declared but never consulted.
    ReserveSpan, //~ ERROR fault-site-coverage
}
