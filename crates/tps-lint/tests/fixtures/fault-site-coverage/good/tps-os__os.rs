// fixture: crate=tps-os path=crates/tps-os/src/os.rs

fn hooks(injector: &mut Injector) -> bool {
    injector.should_fault(FaultSite::BuddyAlloc { order: 3 })
        || injector.should_fault(FaultSite::ReserveSpan)
}
