// fixture: crate=tps-sim path=crates/tps-sim/src/fixture.rs
//! Bad: hash-ordered iteration escaping into observable results inside a
//! deterministic crate.

use std::collections::{HashMap, HashSet};

/// Per-region counters, hash-keyed.
pub struct Stats {
    regions: HashMap<u32, u64>,
}

/// Returns a hash-ordered census (the call sites below are the findings).
pub fn census() -> HashMap<u64, u64> {
    HashMap::new()
}

impl Stats {
    /// Field iteration resolved through the struct declaration.
    pub fn dump(&self) -> Vec<(u32, u64)> {
        self.regions.iter().map(|(&k, &v)| (k, v)).collect() //~ ERROR unordered-iteration
    }
}

/// Parameter bindings and call-returned maps are resolved too.
pub fn report(map: &HashMap<u32, u64>, tags: &mut HashSet<u32>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_k, v) in map { //~ ERROR unordered-iteration
        out.push(*v);
    }
    for t in tags.drain() { //~ ERROR unordered-iteration
        out.push(t as u64);
    }
    let keys: Vec<u64> = census().keys().copied().collect(); //~ ERROR unordered-iteration
    out.extend(keys);
    out
}
