// fixture: crate=tps-sim path=crates/tps-sim/src/fixture.rs
//! Good: ordered containers, order-insensitive folds, audited
//! suppressions and test code are all silent.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Holds one ordered and one hash-ordered map.
pub struct Stats {
    regions: BTreeMap<u32, u64>,
    scratch: HashMap<u32, u64>,
}

impl Stats {
    /// BTreeMap iteration is ordered: fine to observe.
    pub fn ordered_dump(&self) -> Vec<(u32, u64)> {
        self.regions.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Integer sum is order-insensitive: fine over a HashMap.
    pub fn total(&self) -> u64 {
        self.scratch.values().sum::<u64>()
    }

    /// count() is order-insensitive.
    pub fn occupied(&self) -> usize {
        self.scratch.keys().count()
    }

    /// Audited case: hash order escapes the iterator but is sorted before
    /// anything can observe it — suppressed with a reason.
    pub fn sorted_keys(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .scratch
            // tps-lint::allow(unordered-iteration, reason = "audited: collected into a Vec that is sorted before observation")
            .keys()
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

/// Collecting into a BTree container re-establishes a total order.
pub fn ordered_copy(set: &HashSet<u32>) -> BTreeSet<u32> {
    set.iter().copied().collect::<BTreeSet<u32>>()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_iterate_hash_maps() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {
            let _ = (k, v);
        }
        let _: Vec<u32> = m.values().copied().collect();
    }
}
