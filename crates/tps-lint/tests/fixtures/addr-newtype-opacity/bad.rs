// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn raw_bits(va: VirtAddr, pa: PhysAddr) -> u64 {
    let v = va.0; //~ ERROR addr-newtype-opacity
    let p = pa.0; //~ ERROR addr-newtype-opacity
    let fresh = VirtAddr::new(v).0; //~ ERROR addr-newtype-opacity
    let forged = PhysAddr(p); //~ ERROR addr-newtype-opacity
    fresh + forged.value()
}
