// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn raw_bits(va: VirtAddr, pa: PhysAddr) -> u64 {
    // The accessor, not the field, is the public surface.
    let v = va.value();
    let p = pa.value();
    let fresh = VirtAddr::new(v).value();
    // Tuple projection on unrelated types is fine.
    let pair = (v, p);
    fresh + pair.0
}
