// fixture: crate=tps-sim path=crates/tps-sim/src/fixture.rs
//! Good: entropy sources that are provably test-only — either in test code
//! directly, or in helpers the call graph shows only tests reach.

/// Reads a test-scale override. Every caller is test code (see below), so
/// the call-graph exemption applies: this value cannot taint sim state or
/// report fields at run time.
fn scale_override() -> Option<String> {
    std::env::var("TPS_SCALE").ok()
}

#[cfg(test)]
mod tests {
    use std::collections::hash_map::RandomState;
    use std::hash::BuildHasher;

    #[test]
    fn helper_is_test_only() {
        let _ = super::scale_override();
        let state = RandomState::new();
        let _ = state.hash_one(1u8);
    }
}
