// fixture: crate=tps-sim path=crates/tps-sim/src/fixture.rs
//! Bad: per-process entropy reaching deterministic code. Nothing here is
//! reachable only from tests, so every source is a finding.

use std::collections::hash_map::RandomState;

/// Mixes four entropy sources into a "seed" — four violations.
pub fn entropy_soup() -> u64 {
    let state = RandomState::new(); //~ ERROR unseeded-entropy
    let scale = std::env::var("TPS_SCALE").unwrap_or_default(); //~ ERROR unseeded-entropy
    let tid = std::thread::current().name().map(str::len).unwrap_or(0); //~ ERROR unseeded-entropy
    let noise: u64 = rand::random(); //~ ERROR unseeded-entropy
    let _ = (state, scale);
    tid as u64 ^ noise
}

/// Having a non-test caller keeps the helper non-exempt.
pub fn run() -> u64 {
    entropy_soup()
}
