// fixture: crate=tps-core path=crates/tps-core/src/fixture.rs

pub fn undocumented() {} //~ ERROR pub-item-docs

pub struct Bare { //~ ERROR pub-item-docs
    pub field: u64,
}

pub const LIMIT: u64 = 7; //~ ERROR pub-item-docs
