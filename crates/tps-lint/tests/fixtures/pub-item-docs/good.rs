// fixture: crate=tps-core path=crates/tps-core/src/fixture.rs

/// Does the documented thing.
pub fn documented() {}

/// A documented container.
#[derive(Clone)]
pub struct Container {
    /// The documented payload.
    pub field: u64,
}

/// An upper bound with a story.
pub const LIMIT: u64 = 7;

// Crate-internal items need no docs.
pub(crate) fn internal() {}

/// Out-of-line modules carry their docs as `//!` inner docs.
pub mod with_outer_doc;
pub mod documented_in_file;
