// fixture: crate=tps-sim path=crates/tps-sim/src/experiment/io.rs

// io.rs itself is the one file allowed to touch the real filesystem:
// everything here is exempt.
use std::fs::{File, OpenOptions};

fn create(path: &std::path::Path) -> std::io::Result<File> {
    File::create(path)
}

fn open_append(path: &std::path::Path) -> std::io::Result<File> {
    OpenOptions::new().append(true).open(path)
}

fn publish(tmp: &std::path::Path, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::rename(tmp, path)
}

// Reads never need the sink layer (this would be fine in any file).
fn inspect(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}
