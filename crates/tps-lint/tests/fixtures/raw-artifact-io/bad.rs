// fixture: crate=tps-sim path=crates/tps-sim/src/experiment/checkpoint.rs

use std::io::Write;

fn journal(path: &std::path::Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?; //~ ERROR raw-artifact-io
    f.write_all(b"header\n")
}

fn reopen(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).open(path) //~ ERROR raw-artifact-io
}

fn publish(path: &std::path::Path, doc: &str) -> std::io::Result<()> {
    std::fs::write(path, doc)?; //~ ERROR raw-artifact-io
    std::fs::rename(path, path.with_extension("json")) //~ ERROR raw-artifact-io
}

// Reads are fine: only the write path must go through the sink layer.
fn load(path: &std::path::Path) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

#[cfg(test)]
mod tests {
    // Test code writes scratch files directly all the time.
    #[test]
    fn scratch() {
        std::fs::write("/tmp/x", b"ok").unwrap();
        std::fs::File::create("/tmp/y").unwrap();
    }
}
