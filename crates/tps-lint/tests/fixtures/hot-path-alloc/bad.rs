// fixture: crate=tps-tlb path=crates/tps-tlb/src/hot_alloc.rs
//! Heap allocation in functions hot-reachable from declared entry points
//! (`lookup_l1` is an entry tail; `helper_step` is reached through it).

pub fn lookup_l1(n: usize) -> usize {
    let scratch = Vec::with_capacity(n); //~ ERROR hot-path-alloc
    let label = format!("n={n}"); //~ ERROR hot-path-alloc
    scratch.len() + label.len() + helper_step(n)
}

fn helper_step(n: usize) -> usize {
    let owned = "tag".to_string(); //~ ERROR hot-path-alloc
    owned.len() + n
}

fn report(n: usize) -> Vec<usize> {
    // Not reachable from any entry point: allocation is fine here.
    (0..n).collect::<Vec<usize>>()
}
