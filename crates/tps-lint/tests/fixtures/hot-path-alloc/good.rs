// fixture: crate=tps-tlb path=crates/tps-tlb/src/hot_alloc_ok.rs
//! Clean: allocation stays behind cold boundaries (constructors run at
//! setup time); the hot lookup reuses preallocated state.

pub struct Slots {
    slots: Vec<u64>,
}

impl Slots {
    pub fn new(n: usize) -> Slots {
        // `new` is a declared cold boundary: setup-time allocation is fine.
        Slots {
            slots: Vec::with_capacity(n),
        }
    }
}

pub fn lookup_l1(s: &Slots, key: u64) -> bool {
    s.slots.iter().any(|v| *v == key)
}
