// fixture: crate=tps-sim path=crates/tps-sim/src/experiment/pool.rs
//! Good: the worker-pool watchdog is an allowlisted harness-timing module,
//! so wall-clock reads here are legitimate (they time the harness, not the
//! simulation).

use std::time::{Duration, Instant};

/// Deadline for declaring a worker hung.
pub fn watchdog_deadline(budget: Duration) -> Instant {
    Instant::now() + budget
}

/// Imports alone never count as a wall-clock read.
pub fn elapsed_since(t0: Instant) -> Duration {
    t0.elapsed()
}
