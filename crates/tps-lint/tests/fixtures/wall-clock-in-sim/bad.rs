// fixture: crate=tps-sim path=crates/tps-sim/src/machine.rs
//! Bad: wall-clock reads inside the deterministic pipeline. Simulated time
//! must come from the simulator's own event clock.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Stamps a report field with host time — three violations.
pub fn stamp() -> u64 {
    let t0 = Instant::now(); //~ ERROR wall-clock-in-sim
    let wall = SystemTime::now() //~ ERROR wall-clock-in-sim
        .duration_since(UNIX_EPOCH) //~ ERROR wall-clock-in-sim
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let _ = t0;
    wall
}
