// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn classify(e: &TpsError) -> u32 {
    match e {
        TpsError::OutOfMemory { .. } => 1,
        TpsError::Unmapped { .. } => 2,
        _ => 0, //~ ERROR no-wildcard-enum-match
    }
}

fn site_cost(site: FaultSite) -> u64 {
    match site {
        FaultSite::BuddyAlloc { order } => order as u64,
        _ => 0, //~ ERROR no-wildcard-enum-match
    }
}
