// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn classify(e: &TpsError) -> u32 {
    match e {
        TpsError::OutOfMemory { .. } => 1,
        TpsError::Unmapped { .. } => 2,
        TpsError::RangeOverlap { .. } => 3,
        TpsError::InvariantViolation { .. } => 4,
    }
}

fn unguarded(v: Option<u64>) -> u64 {
    // Wildcards over non-TPS enums are unrestricted.
    match v {
        Some(x) if x > 0 => x,
        _ => 0,
    }
}
