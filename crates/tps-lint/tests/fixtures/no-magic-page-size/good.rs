// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

use tps_core::{PageOrder, BASE_PAGE_SIZE, GIB};

fn sizes(order: PageOrder) -> (u64, u64, u64) {
    // Named constants and derived values, never bare page-size literals.
    let base = BASE_PAGE_SIZE;
    let tailored = order.bytes();
    // Other powers of two are not page sizes and stay legal.
    let not_a_page = 1 << 13;
    (base, tailored, GIB + not_a_page)
}
