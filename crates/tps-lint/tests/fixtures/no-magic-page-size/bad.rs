// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn sizes() -> (u64, u64, u64, u64, u64) {
    let base = 4096; //~ ERROR no-magic-page-size
    let hex = 0x1000u64; //~ ERROR no-magic-page-size
    let shifted = 1 << 12; //~ ERROR no-magic-page-size
    let huge = 2097152; //~ ERROR no-magic-page-size
    let giant = 1u64 << 30; //~ ERROR no-magic-page-size
    (base, hex, shifted, huge, giant)
}
