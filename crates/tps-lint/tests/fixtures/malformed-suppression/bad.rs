// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn handle(x: Option<u64>) -> u64 {
    // A suppression without a reason is itself a violation, and it does NOT
    // suppress the underlying diagnostic.
    let a = x.unwrap(); // tps-lint::allow(panic-free-fault-path) //~ ERROR malformed-suppression //~ ERROR panic-free-fault-path
    // tps-lint::allow(not-a-real-rule, reason = "unknown rules are rejected") //~ ERROR malformed-suppression
    let b = x.unwrap(); //~ ERROR panic-free-fault-path
    // tps-lint::allow(panic-free-fault-path, reason = "") //~ ERROR malformed-suppression
    let c = x.unwrap(); //~ ERROR panic-free-fault-path
    a + b + c
}
