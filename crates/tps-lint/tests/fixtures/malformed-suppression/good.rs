// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn handle(x: Option<u64>) -> u64 {
    // A trailing directive with a reason suppresses its own line.
    let a = x.unwrap(); // tps-lint::allow(panic-free-fault-path, reason = "fixture exercising suppression")
    // A standalone directive with a reason suppresses the next line.
    // tps-lint::allow(panic-free-fault-path, reason = "fixture exercising standalone form")
    let b = x.unwrap();
    a + b
}
