// fixture: crate=tps-sim path=crates/tps-sim/src/fixture.rs
//! Bad: float addition is not associative, so accumulating f64 in hasher
//! order changes the low bits — and the report bytes — per process.

use std::collections::HashMap;

/// Turbofish float sum over a hash-ordered container.
pub fn mean_latency(samples: &HashMap<u32, f64>) -> f64 {
    let total = samples.values().sum::<f64>(); //~ ERROR float-accum-order
    total / samples.len() as f64
}

/// Float-seeded fold over a hash-ordered container.
pub fn folded(samples: &HashMap<u32, f64>) -> f64 {
    samples.values().fold(0.0f64, |acc, &v| acc + v) //~ ERROR float-accum-order
}
