// fixture: crate=tps-sim path=crates/tps-sim/src/fixture.rs
//! Good: float folds over ordered containers, and integer folds over
//! hash-ordered ones, are both deterministic.

use std::collections::{BTreeMap, HashMap};

/// Float accumulation over a BTreeMap visits entries in key order.
pub fn mean_latency(samples: &BTreeMap<u32, f64>) -> f64 {
    samples.values().sum::<f64>() / samples.len() as f64
}

/// Integer addition is associative and commutative: hash order is fine.
pub fn total_accesses(counts: &HashMap<u32, u64>) -> u64 {
    counts.values().sum::<u64>()
}
