// fixture: crate=tps-os path=crates/tps-os/src/os.rs

impl Os {
    fn serve(&mut self) {
        self.stats.mmaps += 1;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_increments_do_not_count() {
        let mut s = OsStats::default();
        s.faults += 1;
    }
}
