// fixture: crate=tps-os path=crates/tps-os/src/stats.rs

/// Aggregate OS counters.
pub struct OsStats {
    /// mmap calls served.
    pub mmaps: u64,
    /// Demand faults handled — the counter nothing ever increments.
    pub faults: u64, //~ ERROR stats-counter-coverage
}
