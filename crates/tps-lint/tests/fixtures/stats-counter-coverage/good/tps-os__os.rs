// fixture: crate=tps-os path=crates/tps-os/src/os.rs

impl Os {
    fn serve(&mut self) {
        self.stats.mmaps += 1;
        self.stats.faults += 1;
    }
}
