// fixture: crate=tps-os path=crates/tps-os/src/stats.rs

/// Aggregate OS counters.
pub struct OsStats {
    /// mmap calls served.
    pub mmaps: u64,
    /// Demand faults handled.
    pub faults: u64,
}
