// fixture: crate=tps-tlb path=crates/tps-tlb/src/hot_dyn.rs
//! Dyn dispatch in hot-reachable functions: a literal `dyn` parameter, a
//! use of a type alias that expands to `dyn`, and a read of a struct
//! field declared with a `dyn` type.

type Probe<'a> = &'a dyn Fn(u64) -> bool;

pub struct Caught {
    pub hook: Box<dyn Fn(u64) -> u64>,
}

pub fn lookup_l2(p: Probe<'_>, x: u64) -> bool { //~ ERROR hot-path-dyn-dispatch
    p(x)
}

pub fn fill_l2(c: &Caught, x: u64) -> u64 {
    let f = &c.hook; //~ ERROR hot-path-dyn-dispatch
    f(x)
}

pub fn walk(q: &dyn Fn(u64) -> u64, x: u64) -> u64 { //~ ERROR hot-path-dyn-dispatch
    q(x)
}
