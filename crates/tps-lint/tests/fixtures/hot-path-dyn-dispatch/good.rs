// fixture: crate=tps-tlb path=crates/tps-tlb/src/hot_dyn_ok.rs
//! Clean: the hot probe is a generic parameter so it inlines; `dyn` stays
//! in code no entry point reaches.

pub fn lookup_l2(probe: impl Fn(u64) -> bool, x: u64) -> bool {
    probe(x)
}

fn describe(hook: &dyn Fn(u64) -> u64, x: u64) -> u64 {
    // Not hot-reachable: dyn dispatch in reporting code is fine.
    hook(x)
}
