// fixture: crate=tps-sim path=crates/tps-sim/src/machine.rs

fn step(slot: Option<usize>, live: &[usize]) -> usize {
    let slot = slot.unwrap(); //~ ERROR panic-free-fault-path
    assert!(slot < 64); //~ ERROR panic-free-fault-path
    assert_eq!(live.len(), 64); //~ ERROR panic-free-fault-path
    assert_ne!(slot, 63); //~ ERROR panic-free-fault-path
    debug_assert!(live.contains(&slot)); //~ ERROR panic-free-fault-path
    if !live.contains(&slot) {
        panic!("tenant vanished"); //~ ERROR panic-free-fault-path
    }
    slot
}
