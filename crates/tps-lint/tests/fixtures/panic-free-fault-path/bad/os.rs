// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn handle(x: Option<u64>, r: Result<u64, ()>) -> u64 {
    let a = x.unwrap(); //~ ERROR panic-free-fault-path
    let b = r.expect("backing frame exists"); //~ ERROR panic-free-fault-path
    if a + b == 0 {
        panic!("impossible"); //~ ERROR panic-free-fault-path
    }
    if a > b {
        unreachable!(); //~ ERROR panic-free-fault-path
    }
    a + b
}
