// fixture: crate=tps-sim path=crates/tps-sim/src/scheduler.rs

// A tps-sim file off the tenant event path: asserts are allowed, so this
// file contributes no expected diagnostics even in the bad corpus.
fn pick(slots: &[usize]) -> usize {
    assert!(!slots.is_empty());
    slots[0]
}
