// fixture: crate=tps-os path=crates/tps-os/src/fixture.rs

fn handle(x: Option<u64>, r: Result<u64, Error>) -> Result<u64, Error> {
    let a = x.ok_or(Error::Unmapped)?;
    let b = r?;
    Ok(a + b)
}

// The unwrap_or family is not a panic site.
fn lenient(x: Option<u64>) -> u64 {
    x.unwrap_or(0).max(x.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    // Test code may assert freely.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        Option::<u64>::None.unwrap_or_else(|| panic!("still test code"));
    }
}
