// fixture: crate=tps-sim path=crates/tps-sim/src/machine.rs

fn step(slot: Option<usize>) -> Result<usize, Error> {
    // The tenant event path surfaces faults instead of asserting them.
    let slot = slot.ok_or(Error::UnknownTenant)?;
    if slot > 64 {
        return Err(Error::UnknownTenant);
    }
    Ok(slot)
}

// Other tps-sim files stay outside the rule; only machine.rs is fenced.
fn lenient(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    // Test code may assert (and unwrap) freely even inside machine.rs.
    #[test]
    fn asserts_are_fine_here() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        assert!(v.is_some());
    }
}
