// fixture: crate=tps-tlb path=crates/tps-tlb/src/hot_clone.rs
//! `.clone()` of heap containers and non-`Copy` workspace structs in
//! hot-reachable functions.

pub struct PendingRuns {
    runs: Vec<u64>,
}

pub struct Snapshot {
    hits: u64,
    misses: u64,
}

pub fn fill_range(state: &PendingRuns) -> usize {
    let copy = state.runs.clone(); //~ ERROR hot-path-clone
    copy.len()
}

pub fn lookup_l1(seed: &Snapshot) -> u64 {
    let snap: Snapshot = freeze(seed);
    let again = snap.clone(); //~ ERROR hot-path-clone
    snap.hits + again.misses
}

fn freeze(seed: &Snapshot) -> Snapshot {
    Snapshot {
        hits: seed.hits,
        misses: seed.misses,
    }
}
