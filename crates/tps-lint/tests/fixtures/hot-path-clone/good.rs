// fixture: crate=tps-tlb path=crates/tps-tlb/src/hot_clone_ok.rs
//! Clean: hot code copies `Copy` data, and the one audited clone carries
//! a suppression with its reason.

#[derive(Clone, Copy)]
pub struct Entry {
    pfn: u64,
}

pub struct Table {
    slots: Vec<Entry>,
}

pub fn lookup_l1(t: &Table, idx: usize) -> u64 {
    // Copy types copy; no allocation, no deep copy.
    let e: Entry = t.slots[idx];
    let d = e.clone();
    d.pfn
}

pub fn fill_range(t: &Table) -> Vec<Entry> {
    t.slots.clone() // tps-lint::allow(hot-path-clone, reason = "audited: one copy per range install, measured cold in BENCH_8")
}
