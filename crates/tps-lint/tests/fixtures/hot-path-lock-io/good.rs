// fixture: crate=tps-sim path=crates/tps-sim/src/hot_io_ok.rs
//! Clean: the hot path never synchronizes or prints; reporting happens
//! behind a declared cold boundary.

pub fn access(x: u64) -> u64 {
    let v = step(x);
    page_census(v);
    v
}

fn step(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9)
}

fn page_census(v: u64) {
    // `page_census` is a declared cold boundary: reporting may print.
    println!("census {v}");
}
