// fixture: crate=tps-sim path=crates/tps-sim/src/hot_io.rs
//! Locks, console output and filesystem access in hot-reachable functions
//! (`access` is an entry tail; `step` is reached through it).

use std::sync::Mutex;

pub struct Shared {
    counter: Mutex<u64>,
}

pub fn access(s: &Shared, x: u64) -> u64 {
    println!("translating {x}"); //~ ERROR hot-path-lock-io
    step(s, x)
}

fn step(s: &Shared, x: u64) -> u64 {
    let held = s.counter.lock(); //~ ERROR hot-path-lock-io
    let spilled = std::fs::read("spill.bin"); //~ ERROR hot-path-lock-io
    x + held.is_ok() as u64 + spilled.is_ok() as u64
}
