//! UI-style fixture corpus: every rule has at least one passing (`good`)
//! and one failing (`bad`) fixture, with expected diagnostics asserted by
//! `//~ ERROR <rule>` markers on the offending lines.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use tps_lint::file::SourceFile;
use tps_lint::lint_files;

fn fixture_dir(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
}

/// Parses the mandatory fixture header:
/// `// fixture: crate=<name> path=<workspace-relative path>`.
fn parse_header(text: &str, from: &Path) -> (String, String) {
    let first = text.lines().next().unwrap_or_default();
    let rest = first
        .strip_prefix("// fixture:")
        .unwrap_or_else(|| panic!("{} is missing its `// fixture:` header", from.display()));
    let mut crate_name = None;
    let mut rel_path = None;
    for part in rest.split_whitespace() {
        if let Some(v) = part.strip_prefix("crate=") {
            crate_name = Some(v.to_string());
        } else if let Some(v) = part.strip_prefix("path=") {
            rel_path = Some(v.to_string());
        }
    }
    (
        crate_name.expect("fixture header names a crate"),
        rel_path.expect("fixture header names a path"),
    )
}

/// Collects `(path, line, rule)` for every `//~ ERROR <rule>` marker.
fn expected_errors(rel_path: &str, text: &str, out: &mut BTreeSet<(String, u32, String)>) {
    for (idx, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~ ERROR ") {
            rest = &rest[at + "//~ ERROR ".len()..];
            let rule: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            assert!(!rule.is_empty(), "empty //~ ERROR marker in {rel_path}");
            out.insert((rel_path.to_string(), idx as u32 + 1, rule));
        }
    }
}

/// Lints the given fixture files and asserts the diagnostics match the
/// `//~ ERROR` markers exactly (as a set of `(path, line, rule)`).
fn check(files: Vec<SourceFile>) {
    let mut expected = BTreeSet::new();
    for f in &files {
        expected_errors(&f.rel_path, &f.text, &mut expected);
    }
    let report = lint_files(&files);
    let actual: BTreeSet<(String, u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.to_string()))
        .collect();
    assert_eq!(
        actual, expected,
        "fixture diagnostics diverge from //~ ERROR markers"
    );
}

/// Loads `<rule>/good.rs` or `<rule>/bad.rs` as a one-file workspace.
fn load_single(rule: &str, which: &str) -> Vec<SourceFile> {
    let path = fixture_dir(rule).join(format!("{which}.rs"));
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let (crate_name, rel_path) = parse_header(&text, &path);
    vec![SourceFile {
        rel_path,
        crate_name,
        text,
    }]
}

/// Loads `<rule>/good/` or `<rule>/bad/` (cross-file rules) — every `.rs`
/// file in the directory, crate taken from the `// fixture:` header.
fn load_multi(rule: &str, which: &str) -> Vec<SourceFile> {
    let dir = fixture_dir(rule).join(which);
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures in {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p).expect("fixture readable");
            let (crate_name, rel_path) = parse_header(&text, &p);
            SourceFile {
                rel_path,
                crate_name,
                text,
            }
        })
        .collect()
}

fn check_single_rule(rule: &str) {
    let good = load_single(rule, "good");
    assert!(
        lint_files(&good).diagnostics.is_empty(),
        "{rule}/good.rs should lint clean"
    );
    let bad = load_single(rule, "bad");
    assert!(
        !lint_files(&bad).diagnostics.is_empty(),
        "{rule}/bad.rs should produce diagnostics"
    );
    check(bad);
}

fn check_multi_rule(rule: &str) {
    let good = load_multi(rule, "good");
    assert!(
        lint_files(&good).diagnostics.is_empty(),
        "{rule}/good/ should lint clean"
    );
    let bad = load_multi(rule, "bad");
    assert!(
        !lint_files(&bad).diagnostics.is_empty(),
        "{rule}/bad/ should produce diagnostics"
    );
    check(bad);
}

#[test]
fn panic_free_fault_path_fixtures() {
    check_multi_rule("panic-free-fault-path");
}

#[test]
fn no_magic_page_size_fixtures() {
    check_single_rule("no-magic-page-size");
}

#[test]
fn addr_newtype_opacity_fixtures() {
    check_single_rule("addr-newtype-opacity");
}

#[test]
fn no_wildcard_enum_match_fixtures() {
    check_single_rule("no-wildcard-enum-match");
}

#[test]
fn pub_item_docs_fixtures() {
    check_single_rule("pub-item-docs");
}

#[test]
fn malformed_suppression_fixtures() {
    check_single_rule("malformed-suppression");
}

#[test]
fn raw_artifact_io_fixtures() {
    check_single_rule("raw-artifact-io");
}

#[test]
fn unordered_iteration_fixtures() {
    check_single_rule("unordered-iteration");
}

#[test]
fn wall_clock_in_sim_fixtures() {
    check_single_rule("wall-clock-in-sim");
}

#[test]
fn unseeded_entropy_fixtures() {
    check_single_rule("unseeded-entropy");
}

#[test]
fn float_accum_order_fixtures() {
    check_single_rule("float-accum-order");
}

#[test]
fn hot_path_alloc_fixtures() {
    check_single_rule("hot-path-alloc");
}

#[test]
fn hot_path_dyn_dispatch_fixtures() {
    check_single_rule("hot-path-dyn-dispatch");
}

#[test]
fn hot_path_lock_io_fixtures() {
    check_single_rule("hot-path-lock-io");
}

#[test]
fn hot_path_clone_fixtures() {
    check_single_rule("hot-path-clone");
}

#[test]
fn fault_site_coverage_fixtures() {
    check_multi_rule("fault-site-coverage");
}

#[test]
fn stats_counter_coverage_fixtures() {
    check_multi_rule("stats-counter-coverage");
}
