//! Pass 1 of the workspace analysis: a conservative symbol index.
//!
//! The per-file rules of PR 2 are purely lexical — they can ban `unwrap`
//! anywhere, but they cannot answer "is `regions` a `HashMap`?" or "is this
//! helper only ever called from tests?". This module builds the structures
//! those questions need, straight from the lexer output of every file:
//!
//! * **Item definitions** — `fn` / `struct` / `enum` / `trait` / `type` /
//!   `const` / `static` / `mod` / `impl` targets, with module paths derived
//!   from the file's location.
//! * **`use` resolution** — per-file map from imported name to full path,
//!   including `as` renames and brace groups, so `Map` introduced by
//!   `use std::collections::HashMap as Map;` is recognized as a hash map.
//! * **Type bindings** — a flow-insensitive map from identifier to the
//!   *head* of its declared type (`let m: HashMap<u32, VirtAddr>`, fn
//!   params, closure params) plus initializer inference
//!   (`= HashMap::new()`, `.collect::<HashMap<_, _>>()`).
//! * **Struct fields, fn return types and type aliases** — indexed per
//!   crate, so `proc.direct_blocks.values()` resolves through the field
//!   declaration even when the receiver is not `self`.
//! * **A conservative call/field-use graph** — per `fn`, the set of names
//!   it calls and fields it touches, with caller links. The determinism
//!   rules use it to exempt entropy sources in helpers that are provably
//!   only reachable from test code.
//!
//! Everything is name-based and deliberately over-approximate: when two
//! items share a name the index merges them, which can only make the rules
//! fire *more* often, never less — the right failure mode for a linter
//! guarding a byte-identical-output contract. Audited false positives are
//! silenced with the standard allow-with-reason suppression.

use crate::file::FileCtx;
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// The kind of item a [`SymbolDef`] introduces.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DefKind {
    /// A function or method definition.
    Fn,
    /// A struct definition.
    Struct,
    /// An enum definition.
    Enum,
    /// A trait definition.
    Trait,
    /// A `type` alias.
    TypeAlias,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A module (inline or out-of-line).
    Mod,
    /// An `impl` block; the name is the implemented type.
    Impl,
}

/// One indexed item definition.
#[derive(Clone, Debug)]
pub struct SymbolDef {
    /// What kind of item this is.
    pub kind: DefKind,
    /// The item's name (for `impl`, the target type).
    pub name: String,
    /// The defining crate.
    pub crate_name: String,
    /// Module path derived from the file location (e.g. `tps_os::os`).
    pub module_path: String,
    /// 1-based definition line.
    pub line: u32,
    /// 1-based definition column.
    pub col: u32,
    /// True when the definition lies in test-only code.
    pub is_test: bool,
}

/// The span of one `fn` body in a file's significant-token stream.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword in [`FileCtx::sig`].
    pub start: usize,
    /// Index of the token closing the body (or ending the signature).
    pub end: usize,
}

/// Per-file symbol information.
#[derive(Clone, Debug, Default)]
pub struct FileSymbols {
    /// Module path derived from the file's location.
    pub module_path: String,
    /// Imported name → full path (`HashMap` → `std::collections::HashMap`).
    pub imports: BTreeMap<String, String>,
    /// Identifier → declared/inferred type head, flow-insensitive.
    pub bindings: BTreeMap<String, String>,
    /// Spans of every `fn` body, for enclosing-function lookups.
    pub fn_spans: Vec<FnSpan>,
}

/// Call/field-use information for one function (merged by name).
#[derive(Clone, Debug, Default)]
pub struct FnInfo {
    /// Names this function calls (free functions, methods, macros).
    pub calls: BTreeSet<String>,
    /// Field names this function reads or writes.
    pub fields_used: BTreeSet<String>,
    /// True when *every* definition of this name is in test code.
    pub test_only: bool,
}

/// The whole-workspace symbol index.
#[derive(Clone, Debug, Default)]
pub struct SymbolIndex {
    /// Every indexed item definition, in file/line order.
    pub defs: Vec<SymbolDef>,
    files: BTreeMap<String, FileSymbols>,
    /// crate → field name → type head (struct fields).
    fields: BTreeMap<String, BTreeMap<String, String>>,
    /// crate → fn name → return-type head.
    fn_returns: BTreeMap<String, BTreeMap<String, String>>,
    /// crate → alias name → aliased type head.
    aliases: BTreeMap<String, BTreeMap<String, String>>,
    /// fn name → merged call/field info.
    fns: BTreeMap<String, FnInfo>,
    /// callee name → set of (caller name, caller-is-test).
    callers: BTreeMap<String, BTreeSet<(String, bool)>>,
    /// struct/enum names that `#[derive(Copy)]` (merged across crates).
    copy_types: BTreeSet<String>,
    /// `type` alias names whose right-hand side mentions `dyn`.
    dyn_aliases: BTreeSet<String>,
    /// struct field names whose declared type mentions `dyn`.
    dyn_fields: BTreeSet<String>,
}

/// Type heads that denote a hash-ordered (iteration-order-unstable)
/// container once resolved.
const HASH_CONTAINERS: [&str; 2] = ["HashMap", "HashSet"];

impl SymbolIndex {
    /// Builds the index over every file of a lint run.
    pub fn build(files: &[FileCtx<'_>]) -> Self {
        let mut index = SymbolIndex::default();
        for ctx in files {
            index.index_file(ctx);
        }
        // A name is test-only when no non-test definition of it exists.
        let mut any_non_test: BTreeSet<String> = BTreeSet::new();
        for def in &index.defs {
            if def.kind == DefKind::Fn && !def.is_test {
                any_non_test.insert(def.name.clone());
            }
        }
        for (name, info) in index.fns.iter_mut() {
            info.test_only = !any_non_test.contains(name);
        }
        index
    }

    /// The per-file symbols for `rel_path` (empty defaults if unknown).
    pub fn file(&self, rel_path: &str) -> Option<&FileSymbols> {
        self.files.get(rel_path)
    }

    /// Call/field-use info for the function named `name`, merged across
    /// every definition of that name.
    pub fn fn_info(&self, name: &str) -> Option<&FnInfo> {
        self.fns.get(name)
    }

    /// True when a workspace `struct`/`enum` named `name` derives `Copy`.
    pub fn is_copy_type(&self, name: &str) -> bool {
        self.copy_types.contains(name)
    }

    /// True when `name` is a `type` alias whose aliased type mentions
    /// `dyn` (e.g. `type Probe<'a> = &'a dyn Fn(..)`).
    pub fn is_dyn_alias(&self, name: &str) -> bool {
        self.dyn_aliases.contains(name)
    }

    /// True when `name` is a struct field declared with a type that
    /// mentions `dyn` (e.g. `cb: Box<dyn Fn(..)>`).
    pub fn is_dyn_field(&self, name: &str) -> bool {
        self.dyn_fields.contains(name)
    }

    /// The declared type head of the struct field `name` in `crate_name`.
    pub fn field_head(&self, crate_name: &str, name: &str) -> Option<&str> {
        self.fields
            .get(crate_name)
            .and_then(|m| m.get(name))
            .map(String::as_str)
    }

    /// Resolves a type head through the file's imports and the crate's
    /// `type` aliases to a full path (best effort, at most 4 alias hops).
    pub fn resolve_head(&self, ctx: &FileCtx<'_>, head: &str) -> String {
        let mut current = head.to_string();
        for _ in 0..4 {
            let single = !current.contains("::");
            let mut next = None;
            if single {
                if let Some(f) = self.files.get(ctx.rel_path) {
                    if let Some(full) = f.imports.get(&current) {
                        if full != &current {
                            next = Some(full.clone());
                        }
                    }
                }
                if next.is_none() {
                    if let Some(aliased) = self
                        .aliases
                        .get(ctx.crate_name)
                        .and_then(|a| a.get(&current))
                    {
                        if aliased != &current {
                            next = Some(aliased.clone());
                        }
                    }
                }
            }
            match next {
                Some(n) => current = n,
                None => break,
            }
        }
        current
    }

    /// True when `head` resolves to a hash-ordered container type.
    pub fn head_is_hash(&self, ctx: &FileCtx<'_>, head: &str) -> bool {
        let resolved = self.resolve_head(ctx, head);
        let last = resolved.rsplit("::").next().unwrap_or(&resolved);
        HASH_CONTAINERS.contains(&last)
    }

    /// True when the identifier `name`, used in `ctx`, denotes a
    /// hash-ordered container: a local/param binding in the file, or a
    /// struct field of the file's crate.
    pub fn ident_is_hash(&self, ctx: &FileCtx<'_>, name: &str) -> bool {
        if let Some(f) = self.files.get(ctx.rel_path) {
            if let Some(head) = f.bindings.get(name) {
                return self.head_is_hash(ctx, head);
            }
        }
        if let Some(head) = self.fields.get(ctx.crate_name).and_then(|m| m.get(name)) {
            return self.head_is_hash(ctx, head);
        }
        false
    }

    /// True when the function `name` (called in `ctx`'s crate) returns a
    /// hash-ordered container.
    pub fn fn_returns_hash(&self, ctx: &FileCtx<'_>, name: &str) -> bool {
        match self
            .fn_returns
            .get(ctx.crate_name)
            .and_then(|m| m.get(name))
        {
            Some(head) => self.head_is_hash(ctx, head),
            None => false,
        }
    }

    /// True when every transitive caller of `name` lies in test code — the
    /// call-graph exemption: a helper only tests can reach cannot taint sim
    /// state or report fields at run time. A function with *no* indexed
    /// callers is NOT exempt (it may be an entry point or exported API).
    pub fn reachable_only_from_tests(&self, name: &str) -> bool {
        let Some(first) = self.callers.get(name) else {
            return false;
        };
        if first.is_empty() {
            return false;
        }
        let mut queue: Vec<&str> = vec![name];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(name);
        let mut any_test_root = false;
        while let Some(callee) = queue.pop() {
            let Some(callers) = self.callers.get(callee) else {
                continue;
            };
            for (caller, caller_is_test) in callers {
                let is_test = *caller_is_test
                    || self
                        .fns
                        .get(caller.as_str())
                        .map(|i| i.test_only)
                        .unwrap_or(false);
                if is_test {
                    any_test_root = true;
                    continue;
                }
                // A non-test caller is acceptable only when it is itself
                // reachable solely from tests — so it must have callers of
                // its own (otherwise it is an entry point) and we keep
                // walking upward through it.
                let has_callers = self
                    .callers
                    .get(caller.as_str())
                    .map(|c| !c.is_empty())
                    .unwrap_or(false);
                if !has_callers {
                    return false;
                }
                if seen.insert(caller.as_str()) {
                    queue.push(caller.as_str());
                }
            }
        }
        // A caller graph that never touches a test (e.g. a dead non-test
        // cycle) is not a proof of test-only reachability.
        any_test_root
    }

    /// The name of the `fn` whose body contains `sig_idx` in `rel_path`
    /// (innermost span wins).
    pub fn enclosing_fn(&self, rel_path: &str, sig_idx: usize) -> Option<&str> {
        let f = self.files.get(rel_path)?;
        f.fn_spans
            .iter()
            .filter(|s| s.start <= sig_idx && sig_idx <= s.end)
            .min_by_key(|s| s.end - s.start)
            .map(|s| s.name.as_str())
    }

    fn index_file(&mut self, ctx: &FileCtx<'_>) {
        let mut fs = FileSymbols {
            module_path: module_path_of(ctx.rel_path, ctx.crate_name),
            ..FileSymbols::default()
        };
        self.index_imports(ctx, &mut fs);
        self.index_defs(ctx, &mut fs);
        self.index_bindings(ctx, &mut fs);
        self.index_call_graph(ctx, &fs);
        self.files.insert(ctx.rel_path.to_string(), fs);
    }

    /// Parses every `use` declaration into name → full-path entries.
    fn index_imports(&mut self, ctx: &FileCtx<'_>, fs: &mut FileSymbols) {
        let sig = &ctx.sig;
        for i in 0..sig.len() {
            if sig[i].text != "use" || sig[i].kind != TokenKind::Ident {
                continue;
            }
            // Statement position: preceded by nothing, `;`, `}`, `{` or
            // `pub` — not `.use` or similar.
            if i > 0 && !matches!(ctx.text(i - 1), ";" | "}" | "{" | "pub" | ")") {
                continue;
            }
            let end = match (i..sig.len()).find(|&j| sig[j].text == ";") {
                Some(e) => e,
                None => continue,
            };
            parse_use_tree(ctx, i + 1, end, "", &mut fs.imports);
        }
    }

    /// Records item definitions, struct fields, fn return types, aliases
    /// and fn spans.
    fn index_defs(&mut self, ctx: &FileCtx<'_>, fs: &mut FileSymbols) {
        let sig = &ctx.sig;
        for i in 0..sig.len() {
            if sig[i].kind != TokenKind::Ident {
                continue;
            }
            let kind = match sig[i].text {
                "fn" => DefKind::Fn,
                "struct" => DefKind::Struct,
                "enum" => DefKind::Enum,
                "trait" => DefKind::Trait,
                "type" => DefKind::TypeAlias,
                "const" if ctx.text(i + 1) != "fn" => DefKind::Const,
                "static" => DefKind::Static,
                "mod" => DefKind::Mod,
                "impl" => DefKind::Impl,
                _ => continue,
            };
            // `->` return types spell `fn` only after the arrow's type; a
            // `fn` in type position (`fn(u32) -> u32`) has `(` right after.
            if kind == DefKind::Fn && ctx.text(i + 1) == "(" {
                continue;
            }
            let name = match kind {
                DefKind::Impl => impl_target_name(ctx, i),
                _ => {
                    let n = ctx.text(i + 1);
                    if n.is_empty() || sig[i + 1].kind != TokenKind::Ident {
                        continue;
                    }
                    n.to_string()
                }
            };
            let Some(name) = Some(name).filter(|n| !n.is_empty()) else {
                continue;
            };
            self.defs.push(SymbolDef {
                kind,
                name: name.clone(),
                crate_name: ctx.crate_name.to_string(),
                module_path: fs.module_path.clone(),
                line: sig[i].line,
                col: sig[i].col,
                is_test: ctx.is_test(i),
            });
            if matches!(kind, DefKind::Struct | DefKind::Enum) && has_copy_derive(ctx, i) {
                self.copy_types.insert(name.clone());
            }
            match kind {
                DefKind::Fn => {
                    let end = item_body_end(ctx, i).unwrap_or(i + 1);
                    fs.fn_spans.push(FnSpan {
                        name: name.clone(),
                        start: i,
                        end,
                    });
                    if let Some(head) = fn_return_head(ctx, i) {
                        self.fn_returns
                            .entry(ctx.crate_name.to_string())
                            .or_default()
                            .insert(name, head);
                    }
                }
                DefKind::Struct => {
                    self.index_struct_fields(ctx, i);
                }
                DefKind::TypeAlias => {
                    // `type Name<...> = ...;` — find the `=` past any
                    // generic parameters.
                    if let Some(eq) = alias_eq_idx(ctx, i + 2) {
                        if let Some((head, _)) = type_head(ctx, eq + 1) {
                            self.aliases
                                .entry(ctx.crate_name.to_string())
                                .or_default()
                                .insert(name.clone(), head);
                        }
                        if alias_rhs_has_dyn(ctx, eq + 1) {
                            self.dyn_aliases.insert(name);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Collects `field: Type` pairs from a struct body into the crate's
    /// field map.
    fn index_struct_fields(&mut self, ctx: &FileCtx<'_>, struct_idx: usize) {
        let sig = &ctx.sig;
        // Find the body `{` at depth 0 (skipping generics and where-clauses).
        let mut j = struct_idx + 2;
        let mut angle = 0i32;
        let open = loop {
            if j >= sig.len() {
                return;
            }
            match sig[j].text {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" if angle <= 0 => break j,
                ";" | "(" if angle <= 0 => return, // unit or tuple struct
                _ => {}
            }
            j += 1;
        };
        let Some(close) = matching_forward(ctx, open, "{", "}") else {
            return;
        };
        let mut depth = 0i32;
        for k in open + 1..close {
            match sig[k].text {
                "{" | "(" | "[" | "<" => depth += 1,
                "<<" => depth += 2,
                "}" | ")" | "]" | ">" => depth -= 1,
                ">>" => depth -= 2,
                ":" if depth == 0 && sig[k - 1].kind == TokenKind::Ident => {
                    if let Some((head, _)) = type_head(ctx, k + 1) {
                        self.fields
                            .entry(ctx.crate_name.to_string())
                            .or_default()
                            .insert(sig[k - 1].text.to_string(), head);
                    }
                    // A `dyn` anywhere in the declared type (up to the
                    // field's top-level comma) marks the field dynamic.
                    let mut d = 0i32;
                    for t in k + 1..close {
                        match sig[t].text {
                            "{" | "(" | "[" | "<" => d += 1,
                            "<<" => d += 2,
                            "}" | ")" | "]" | ">" => d -= 1,
                            ">>" => d -= 2,
                            "," if d == 0 => break,
                            "dyn" => {
                                self.dyn_fields.insert(sig[k - 1].text.to_string());
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Records `ident: Type` bindings (params, lets, closure params) and
    /// initializer-inferred types.
    fn index_bindings(&mut self, ctx: &FileCtx<'_>, fs: &mut FileSymbols) {
        let sig = &ctx.sig;
        for i in 1..sig.len() {
            if sig[i].text != ":" {
                continue;
            }
            if sig[i - 1].kind != TokenKind::Ident {
                continue;
            }
            if let Some((head, _)) = type_head(ctx, i + 1) {
                fs.bindings
                    .entry(sig[i - 1].text.to_string())
                    .or_insert(head);
            }
        }
        // Initializer inference: `name = Path::new(...)` and
        // `name = ....collect::<HashMap<...>>()`.
        for i in 1..sig.len() {
            if sig[i].text != "=" || sig[i - 1].kind != TokenKind::Ident {
                continue;
            }
            let name = sig[i - 1].text;
            if let Some((head, after)) = type_head(ctx, i + 1) {
                // `Path::ctor(` — strip the constructor segment.
                if ctx.text(after) == "(" {
                    if let Some((ty, ctor)) = head.rsplit_once("::") {
                        if matches!(ctor, "new" | "with_capacity" | "from" | "default") {
                            fs.bindings
                                .entry(name.to_string())
                                .or_insert(ty.to_string());
                            continue;
                        }
                    }
                }
            }
            // Scan the initializer for a `collect::<Head<...>>` turbofish.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < sig.len() {
                match sig[j].text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth == 0 => break,
                    "collect"
                        if ctx.text(j + 1) == "::"
                            && ctx.text(j + 2) == "<"
                            && sig.get(j + 3).map(|s| s.kind) == Some(TokenKind::Ident) =>
                    {
                        fs.bindings
                            .entry(name.to_string())
                            .or_insert_with(|| ctx.text(j + 3).to_string());
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }

    /// Builds the conservative call/field-use graph from the fn spans.
    fn index_call_graph(&mut self, ctx: &FileCtx<'_>, fs: &FileSymbols) {
        for span in &fs.fn_spans {
            let caller_is_test = ctx.is_test(span.start);
            let mut calls = BTreeSet::new();
            let mut fields_used = BTreeSet::new();
            for j in span.start + 2..span.end.min(ctx.sig.len()) {
                if ctx.sig[j].kind != TokenKind::Ident {
                    continue;
                }
                let t = ctx.sig[j].text;
                let next = ctx.text(j + 1);
                if next == "(" || (next == "::" && ctx.text(j + 2) == "<") {
                    // Skip nested `fn` names and macro invocations.
                    if ctx.text(j.wrapping_sub(1)) != "fn" && next != "!" {
                        calls.insert(t.to_string());
                    }
                } else if ctx.text(j.wrapping_sub(1)) == "." && next != "(" {
                    fields_used.insert(t.to_string());
                }
            }
            for callee in &calls {
                self.callers
                    .entry(callee.clone())
                    .or_default()
                    .insert((span.name.clone(), caller_is_test));
            }
            let info = self.fns.entry(span.name.clone()).or_default();
            info.calls.extend(calls);
            info.fields_used.extend(fields_used);
        }
    }
}

/// Derives a module path like `tps_os::os` from a workspace-relative file
/// path.
fn module_path_of(rel_path: &str, crate_name: &str) -> String {
    let crate_mod = crate_name.replace('-', "_");
    let tail = rel_path
        .rsplit_once("/src/")
        .map(|(_, t)| t)
        .unwrap_or(rel_path);
    let tail = tail.trim_end_matches(".rs");
    if tail == "lib" || tail == "main" {
        return crate_mod;
    }
    let tail = tail.trim_end_matches("/mod");
    format!("{crate_mod}::{}", tail.replace('/', "::"))
}

/// Recursively parses one `use` tree (`a::b::{C, D as E}`) rooted at
/// `prefix`, filling `out` with name → full-path entries.
fn parse_use_tree(
    ctx: &FileCtx<'_>,
    start: usize,
    end: usize,
    prefix: &str,
    out: &mut BTreeMap<String, String>,
) {
    let sig = &ctx.sig;
    let mut path: Vec<String> = if prefix.is_empty() {
        Vec::new()
    } else {
        vec![prefix.to_string()]
    };
    let mut j = start;
    while j < end {
        match sig[j].text {
            "::" | "," => j += 1,
            "{" => {
                let Some(close) = matching_forward(ctx, j, "{", "}") else {
                    return;
                };
                // Split the group body on top-level commas and recurse.
                let joined = path.join("::");
                let mut seg_start = j + 1;
                let mut depth = 0i32;
                for (k, s) in sig.iter().enumerate().take(close).skip(j + 1) {
                    match s.text {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "," if depth == 0 => {
                            parse_use_tree(ctx, seg_start, k, &joined, out);
                            seg_start = k + 1;
                        }
                        _ => {}
                    }
                }
                parse_use_tree(ctx, seg_start, close, &joined, out);
                return;
            }
            "*" => return, // glob: nothing nameable to record
            "as" => {
                let alias = ctx.text(j + 1);
                if !alias.is_empty() && !path.is_empty() {
                    out.insert(alias.to_string(), path.join("::"));
                }
                return;
            }
            _ if sig[j].kind == TokenKind::Ident => {
                path.push(sig[j].text.to_string());
                j += 1;
            }
            _ => j += 1,
        }
    }
    if let Some(last) = path.last() {
        if last != "self" {
            out.insert(last.clone(), path.join("::"));
        } else if path.len() > 1 {
            // `use a::b::{self}` names `b`.
            let name = path[path.len() - 2].clone();
            out.insert(name, path[..path.len() - 1].join("::"));
        }
    }
}

/// Reads a type path starting at `start`: skips `&`/`mut`/`dyn`/`impl` and
/// lifetimes, then collects `seg(::seg)*`. Returns the joined head and the
/// index one past it, or `None` when no path starts there.
fn type_head(ctx: &FileCtx<'_>, start: usize) -> Option<(String, usize)> {
    let sig = &ctx.sig;
    let mut j = start;
    while j < sig.len() {
        match sig[j].text {
            "&" | "&&" | "mut" | "dyn" | "impl" => j += 1,
            _ if sig[j].kind == TokenKind::Lifetime => j += 1,
            _ => break,
        }
    }
    if j >= sig.len() || sig[j].kind != TokenKind::Ident {
        return None;
    }
    let mut segs = vec![sig[j].text.to_string()];
    j += 1;
    while j + 1 < sig.len() && sig[j].text == "::" && sig[j + 1].kind == TokenKind::Ident {
        segs.push(sig[j + 1].text.to_string());
        j += 2;
    }
    Some((segs.join("::"), j))
}

/// The implemented type's name for an `impl` at `impl_idx`:
/// `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`.
fn impl_target_name(ctx: &FileCtx<'_>, impl_idx: usize) -> String {
    let sig = &ctx.sig;
    let mut j = impl_idx + 1;
    // Skip generic parameters.
    if ctx.text(j) == "<" {
        let mut depth = 0i32;
        while j < sig.len() {
            match sig[j].text {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" | ">>" => {
                    depth -= if sig[j].text == ">" { 1 } else { 2 };
                    if depth <= 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // `impl Trait for Type`: take the segment after `for` if present.
    let mut last_ident = String::new();
    let mut depth = 0i32;
    while j < sig.len() {
        match sig[j].text {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "{" | "where" if depth <= 0 => break,
            "for" if depth == 0 => {
                last_ident.clear();
            }
            t if sig[j].kind == TokenKind::Ident && depth == 0 => {
                last_ident = t.to_string();
            }
            _ => {}
        }
        j += 1;
    }
    last_ident
}

/// End of the item starting at `start` (its `fn` keyword): the matching
/// `}` of the body, or the trailing `;` of a bodiless signature.
fn item_body_end(ctx: &FileCtx<'_>, start: usize) -> Option<usize> {
    let sig = &ctx.sig;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = start;
    while j < sig.len() {
        match sig[j].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return matching_forward(ctx, j, "{", "}"),
            ";" if paren == 0 && bracket == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `=` of a `type Name<...> = ...;` alias, scanning from just
/// past the alias name (skips generic parameters).
fn alias_eq_idx(ctx: &FileCtx<'_>, start: usize) -> Option<usize> {
    let sig = &ctx.sig;
    let mut angle = 0i32;
    let mut j = start;
    while j < sig.len() {
        match sig[j].text {
            "<" => angle += 1,
            "<<" => angle += 2,
            ">" => angle -= 1,
            ">>" => angle -= 2,
            "=" if angle <= 0 => return Some(j),
            ";" | "{" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// True when the alias right-hand side starting at `start` mentions `dyn`
/// before its terminating `;`.
fn alias_rhs_has_dyn(ctx: &FileCtx<'_>, start: usize) -> bool {
    let sig = &ctx.sig;
    for s in sig.iter().skip(start) {
        match s.text {
            ";" => return false,
            "dyn" => return true,
            _ => {}
        }
    }
    false
}

/// True when the item keyword at `kw_idx` is covered by a
/// `#[derive(..., Copy, ...)]` attribute (scans backward over visibility
/// modifiers and stacked attributes).
fn has_copy_derive(ctx: &FileCtx<'_>, kw_idx: usize) -> bool {
    let mut j = kw_idx;
    // Step back over `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
    loop {
        if j == 0 {
            return false;
        }
        let prev = ctx.text(j - 1);
        if prev == "pub" {
            j -= 1;
        } else if prev == ")" {
            match matching_backward(ctx, j - 1, "(", ")") {
                Some(open) if open >= 1 && ctx.text(open - 1) == "pub" => j = open - 1,
                _ => return false,
            }
        } else {
            break;
        }
    }
    // Walk the stack of preceding `#[...]` groups.
    while j >= 2 && ctx.text(j - 1) == "]" {
        let Some(open) = matching_backward(ctx, j - 1, "[", "]") else {
            return false;
        };
        if open == 0 || ctx.text(open - 1) != "#" {
            return false;
        }
        let mut saw_derive = false;
        let mut saw_copy = false;
        for t in open + 1..j - 1 {
            match ctx.text(t) {
                "derive" => saw_derive = true,
                "Copy" => saw_copy = true,
                _ => {}
            }
        }
        if saw_derive && saw_copy {
            return true;
        }
        j = open - 1;
    }
    false
}

/// Index of the token opening the group closed at `close_idx`.
fn matching_backward(
    ctx: &FileCtx<'_>,
    close_idx: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close_idx).rev() {
        let t = ctx.text(j);
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the token closing the group opened at `open_idx`.
fn matching_forward(ctx: &FileCtx<'_>, open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, s) in ctx.sig.iter().enumerate().skip(open_idx) {
        if s.text == open {
            depth += 1;
        } else if s.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The return-type head of the `fn` at `fn_idx`, when declared.
fn fn_return_head(ctx: &FileCtx<'_>, fn_idx: usize) -> Option<String> {
    let sig = &ctx.sig;
    let mut paren = 0i32;
    let mut j = fn_idx + 1;
    while j < sig.len() {
        match sig[j].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "->" if paren == 0 => return type_head(ctx, j + 1).map(|(h, _)| h),
            "{" | ";" if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::SourceFile;

    fn build_one(crate_name: &str, rel_path: &str, text: &str) -> (SourceFile, SymbolIndex) {
        let file = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            text: text.to_string(),
        };
        let ctx = FileCtx::build(&file);
        let index = SymbolIndex::build(std::slice::from_ref(&ctx));
        // ctx borrows file; rebuild later via helper in each test.
        drop(ctx);
        (file, index)
    }

    #[test]
    fn use_resolution_handles_groups_and_renames() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/a.rs",
            "use std::collections::{HashMap, BTreeMap as Ordered};\n\
             use std::collections::HashSet as Set;\n",
        );
        let ctx = FileCtx::build(&file);
        let fs = index.file("crates/tps-sim/src/a.rs").unwrap();
        assert_eq!(
            fs.imports.get("HashMap").unwrap(),
            "std::collections::HashMap"
        );
        assert_eq!(
            fs.imports.get("Ordered").unwrap(),
            "std::collections::BTreeMap"
        );
        assert_eq!(fs.imports.get("Set").unwrap(), "std::collections::HashSet");
        assert!(index.head_is_hash(&ctx, "Set"));
        assert!(!index.head_is_hash(&ctx, "Ordered"));
    }

    #[test]
    fn bindings_from_annotations_and_initializers() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/b.rs",
            "use std::collections::HashMap;\n\
             fn f(regions: &HashMap<u32, u64>, sizes: &Vec<u64>) {\n\
                 let local = HashMap::new();\n\
                 let picked: Vec<u32> = regions.keys().copied().collect();\n\
                 let gathered = sizes.iter().map(|s| (*s, 0u32)).collect::<HashMap<_, _>>();\n\
                 let _ = (local, picked, gathered);\n\
             }\n",
        );
        let ctx = FileCtx::build(&file);
        assert!(index.ident_is_hash(&ctx, "regions"));
        assert!(index.ident_is_hash(&ctx, "local"));
        assert!(index.ident_is_hash(&ctx, "gathered"));
        assert!(!index.ident_is_hash(&ctx, "sizes"));
        assert!(!index.ident_is_hash(&ctx, "picked"));
    }

    #[test]
    fn struct_fields_resolve_across_the_crate() {
        let def = SourceFile {
            rel_path: "crates/tps-sim/src/types.rs".to_string(),
            crate_name: "tps-sim".to_string(),
            text: "use std::collections::HashMap;\n\
                   pub struct Machine { pub regions: HashMap<u32, u64>, pub count: u64 }\n"
                .to_string(),
        };
        let user = SourceFile {
            rel_path: "crates/tps-sim/src/use.rs".to_string(),
            crate_name: "tps-sim".to_string(),
            text: "fn g(m: &super::Machine) { let _ = &m; }\n".to_string(),
        };
        let ctxs = [FileCtx::build(&def), FileCtx::build(&user)];
        let index = SymbolIndex::build(&ctxs);
        assert!(index.ident_is_hash(&ctxs[1], "regions"));
        assert!(!index.ident_is_hash(&ctxs[1], "count"));
    }

    #[test]
    fn type_alias_resolves_to_hash() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/c.rs",
            "use std::collections::HashMap;\n\
             type Regions = HashMap<u32, u64>;\n\
             fn f(r: &Regions) { let _ = r; }\n",
        );
        let ctx = FileCtx::build(&file);
        assert!(index.ident_is_hash(&ctx, "r"));
    }

    #[test]
    fn fn_return_types_are_indexed() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/d.rs",
            "use std::collections::{BTreeMap, HashMap};\n\
             fn census() -> BTreeMap<u8, u64> { BTreeMap::new() }\n\
             fn raw() -> HashMap<u8, u64> { HashMap::new() }\n",
        );
        let ctx = FileCtx::build(&file);
        assert!(!index.fn_returns_hash(&ctx, "census"));
        assert!(index.fn_returns_hash(&ctx, "raw"));
    }

    #[test]
    fn call_graph_and_test_only_reachability() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/e.rs",
            "fn prod() { helper(); }\n\
             fn helper() { shared(); }\n\
             fn shared() {}\n\
             fn test_helper() { only_from_tests(); }\n\
             fn only_from_tests() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { super::test_helper(); }\n\
             }\n",
        );
        drop(file);
        // helper/shared reachable from prod (non-test): not exempt.
        assert!(!index.reachable_only_from_tests("helper"));
        assert!(!index.reachable_only_from_tests("shared"));
        // test_helper is only called from the test module, and
        // only_from_tests only from test_helper: both exempt.
        assert!(index.reachable_only_from_tests("test_helper"));
        assert!(index.reachable_only_from_tests("only_from_tests"));
        // prod has no callers at all: not exempt (entry point).
        assert!(!index.reachable_only_from_tests("prod"));
    }

    #[test]
    fn enclosing_fn_and_module_paths() {
        let (file, index) = build_one(
            "tps-os",
            "crates/tps-os/src/os.rs",
            "fn outer() { let x = 1; }\nfn later() {}\n",
        );
        let ctx = FileCtx::build(&file);
        let x_idx = ctx.sig.iter().position(|s| s.text == "x").unwrap();
        assert_eq!(
            index.enclosing_fn("crates/tps-os/src/os.rs", x_idx),
            Some("outer")
        );
        assert_eq!(
            index.file("crates/tps-os/src/os.rs").unwrap().module_path,
            "tps_os::os"
        );
        assert_eq!(
            module_path_of("crates/tps-os/src/lib.rs", "tps-os"),
            "tps_os"
        );
        assert_eq!(
            module_path_of("crates/tps-sim/src/experiment/mod.rs", "tps-sim"),
            "tps_sim::experiment"
        );
    }

    #[test]
    fn copy_derives_and_dyn_types_are_indexed() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/g.rs",
            "#[derive(Clone, Copy, Debug)]\n\
             pub struct Small { x: u32 }\n\
             #[derive(Clone)]\n\
             pub struct Big { data: Vec<u8>, cb: Box<dyn Fn(u32) -> u32> }\n\
             pub type Probe<'a> = &'a dyn Fn(u64) -> bool;\n\
             pub type Plain = u64;\n",
        );
        drop(file);
        assert!(index.is_copy_type("Small"));
        assert!(!index.is_copy_type("Big"));
        assert!(index.is_dyn_alias("Probe"));
        assert!(!index.is_dyn_alias("Plain"));
        assert!(index.is_dyn_field("cb"));
        assert!(!index.is_dyn_field("data"));
        assert_eq!(index.field_head("tps-sim", "data"), Some("Vec"));
    }

    #[test]
    fn defs_cover_items_and_impl_targets() {
        let (file, index) = build_one(
            "tps-sim",
            "crates/tps-sim/src/f.rs",
            "pub struct S { x: u32 }\n\
             impl S { fn m(&self) {} }\n\
             impl std::fmt::Display for S {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n\
             enum E { A }\n",
        );
        drop(file);
        let kinds: Vec<(DefKind, &str)> = index
            .defs
            .iter()
            .map(|d| (d.kind, d.name.as_str()))
            .collect();
        assert!(kinds.contains(&(DefKind::Struct, "S")));
        assert!(kinds.contains(&(DefKind::Fn, "m")));
        assert!(kinds.contains(&(DefKind::Impl, "S")));
        assert!(kinds.contains(&(DefKind::Enum, "E")));
        assert_eq!(
            index
                .defs
                .iter()
                .filter(|d| d.name == "S" && d.kind == DefKind::Impl)
                .count(),
            2,
            "both impl blocks target S"
        );
    }
}
