//! The committed hot-path contract: `hot-paths.toml`.
//!
//! The hot-path rule family ([`crate::rules::hot_path`]) fences the
//! translation fast path by call-graph reachability. Which functions seed
//! that closure is a *policy* decision, not something the linter can
//! infer — so the entry points live in a committed file at the workspace
//! root, reviewed like code. The same file declares the cold boundaries:
//! named slow paths (fault handling, debug oracles, constructors) the
//! closure must not cross.
//!
//! The format is the same hand-rolled TOML subset as the ratchet file:
//! `[section]` headers and `"key" = "value"` lines, where the value is
//! the human reason for the entry. Unknown syntax is an error — a typo'd
//! contract must not silently unfence the hot path.

use std::collections::BTreeMap;

/// The committed workspace contract, compiled in so the fixture tests and
/// `--workspace` runs agree on one default.
const BUILTIN: &str = include_str!("../../../hot-paths.toml");

/// The declared hot-path entry points and cold boundaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotPaths {
    /// `Type::method` → reason: functions seeding the reachability
    /// closure.
    pub entry_points: BTreeMap<String, String>,
    /// Function name (bare or `Type::method`) → reason: the closure
    /// neither scans nor crosses these.
    pub cold_boundaries: BTreeMap<String, String>,
}

impl HotPaths {
    /// The committed workspace configuration (`hot-paths.toml` at the
    /// repository root, compiled in).
    pub fn builtin() -> Self {
        // Validated by a unit test; failing here means the committed file
        // was broken after the last build that embedded it.
        Self::parse(BUILTIN).expect("committed hot-paths.toml parses")
    }

    /// An empty contract: no entry points, so the hot-path rules are
    /// inert.
    pub fn none() -> Self {
        Self::default()
    }

    /// Parses the `hot-paths.toml` format. Unknown sections or syntax are
    /// errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut hot = HotPaths::default();
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if name != "entry-points" && name != "cold-boundaries" {
                    return Err(format!("line {}: unknown section [{name}]", lineno + 1));
                }
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `\"name\" = \"reason\"`",
                    lineno + 1
                ));
            };
            let name = key.trim().trim_matches('"').to_string();
            let reason = value.trim().trim_matches('"').to_string();
            if name.is_empty() || reason.is_empty() {
                return Err(format!("line {}: empty name or reason", lineno + 1));
            }
            match section.as_deref() {
                Some("entry-points") => {
                    hot.entry_points.insert(name, reason);
                }
                Some("cold-boundaries") => {
                    hot.cold_boundaries.insert(name, reason);
                }
                _ => {
                    return Err(format!("line {}: entry before any section", lineno + 1));
                }
            }
        }
        Ok(hot)
    }
}

/// The bare function name of a `Type::method` entry (`Mmu::access` →
/// `access`).
pub fn name_tail(full: &str) -> &str {
    full.rsplit("::").next().unwrap_or(full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contract_parses_and_is_populated() {
        let hot = HotPaths::builtin();
        assert!(
            hot.entry_points.contains_key("Mmu::access"),
            "the per-access entry point is the contract's reason to exist"
        );
        assert!(hot.entry_points.len() >= 10);
        assert!(hot.cold_boundaries.contains_key("handle_fault"));
    }

    #[test]
    fn parse_round_trips_both_sections() {
        let hot = HotPaths::parse(
            "# comment\n\n[entry-points]\n\"A::b\" = \"why\"\n\
             [cold-boundaries]\n\"slow\" = \"cold\"\n",
        )
        .unwrap();
        assert_eq!(hot.entry_points.get("A::b").unwrap(), "why");
        assert_eq!(hot.cold_boundaries.get("slow").unwrap(), "cold");
    }

    #[test]
    fn rejects_garbage() {
        assert!(HotPaths::parse("what").is_err());
        assert!(
            HotPaths::parse("\"a\" = \"b\"").is_err(),
            "entry before section"
        );
        assert!(HotPaths::parse("[nope]\n").is_err(), "unknown section");
        assert!(
            HotPaths::parse("[entry-points]\n\"a\" = \"\"\n").is_err(),
            "empty reason"
        );
    }

    #[test]
    fn tails() {
        assert_eq!(name_tail("Mmu::access"), "access");
        assert_eq!(name_tail("walk"), "walk");
    }
}
