//! The ratchet file: `lint-baseline.toml`.
//!
//! Pre-existing violations are frozen per `(rule, file)`; the gate fails
//! only when a count *grows*. The file is a tiny TOML subset — section
//! headers are rule names, keys are workspace-relative paths, values are
//! violation counts — parsed by hand because the workspace is std-only.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Budgets keyed by `(rule, path)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// An empty baseline (every violation is new).
    pub fn new() -> Self {
        Self::default()
    }

    /// The frozen violation budget for `(rule, path)`.
    pub fn budget(&self, rule: &str, path: &str) -> usize {
        self.counts
            .get(&(rule.to_string(), path.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total frozen budget for one rule across all files.
    pub fn rule_total(&self, rule: &str) -> usize {
        self.counts
            .iter()
            .filter(|((r, _), _)| r == rule)
            .map(|(_, n)| n)
            .sum()
    }

    /// Records a budget (used by `--write-baseline`).
    pub fn set(&mut self, rule: &str, path: &str, count: usize) {
        if count > 0 {
            self.counts
                .insert((rule.to_string(), path.to_string()), count);
        }
    }

    /// Iterates `(rule, path, count)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, usize)> {
        self.counts
            .iter()
            .map(|((r, p), n)| (r.as_str(), p.as_str(), *n))
    }

    /// Parses the baseline file format. Unknown syntax is an error so a
    /// corrupted ratchet cannot silently unfreeze violations.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = Some(name.trim().to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `\"path\" = count`", lineno + 1));
            };
            let Some(rule) = section.clone() else {
                return Err(format!(
                    "line {}: entry before any [rule] section",
                    lineno + 1
                ));
            };
            let path = key.trim().trim_matches('"').to_string();
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count is not an integer", lineno + 1))?;
            counts.insert((rule, path), count);
        }
        Ok(Baseline { counts })
    }

    /// Serializes in the format [`Baseline::parse`] reads.
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# tps-lint ratchet file. Frozen pre-existing violations, per rule and file.\n\
             # Counts may only shrink: scripts/lint-ratchet.sh fails the build if an entry\n\
             # grows relative to the committed copy. Regenerate with:\n\
             #   cargo run -p tps-lint -- --workspace --write-baseline\n",
        );
        let mut current_rule: Option<&str> = None;
        for (rule, path, count) in self.iter() {
            if current_rule != Some(rule) {
                let _ = write!(out, "\n[{rule}]\n");
                current_rule = Some(rule);
            }
            let _ = writeln!(out, "\"{path}\" = {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Baseline::new();
        b.set("panic-free-fault-path", "crates/tps-os/src/os.rs", 3);
        b.set("panic-free-fault-path", "crates/tps-mem/src/buddy.rs", 2);
        b.set("pub-item-docs", "crates/tps-core/src/pte.rs", 1);
        let text = b.serialize();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(
            parsed.budget("panic-free-fault-path", "crates/tps-os/src/os.rs"),
            3
        );
        assert_eq!(parsed.budget("panic-free-fault-path", "nope.rs"), 0);
        assert_eq!(parsed.rule_total("panic-free-fault-path"), 5);
        assert_eq!(parsed.rule_total("no-magic-page-size"), 0);
    }

    #[test]
    fn zero_counts_are_not_written() {
        let mut b = Baseline::new();
        b.set("pub-item-docs", "a.rs", 0);
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("what is this").is_err());
        assert!(
            Baseline::parse("\"a.rs\" = 3").is_err(),
            "entry before section"
        );
        assert!(
            Baseline::parse("[r]\n\"a.rs\" = x").is_err(),
            "non-integer count"
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n[r]\n# note\n\"a.rs\" = 2\n").unwrap();
        assert_eq!(b.budget("r", "a.rs"), 2);
    }
}
