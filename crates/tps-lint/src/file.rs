//! Per-file lint context: significant tokens, test-code spans, and
//! inline-suppression directives.

use crate::diag::Diagnostic;
use crate::lexer::{self, Token, TokenKind};
use crate::rules;

/// One file loaded for linting.
pub struct SourceFile {
    /// Workspace-relative path with unix separators.
    pub rel_path: String,
    /// The owning crate (directory name under `crates/`, or `tps` for the
    /// facade package at the workspace root).
    pub crate_name: String,
    /// Full file contents.
    pub text: String,
}

/// A significant (non-comment) token, with a back-pointer into the full
/// stream so documentation checks can look at adjacent comments.
#[derive(Copy, Clone, Debug)]
pub struct Sig<'a> {
    /// Token classification.
    pub kind: TokenKind,
    /// Token text.
    pub text: &'a str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Index into [`FileCtx::tokens`].
    pub full_idx: usize,
}

/// A parsed `// tps-lint::allow(rule, reason = "...")` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The suppressed rule.
    pub rule: String,
    /// The line the suppression applies to: the directive's own line when
    /// it trails code, otherwise the next line.
    pub target_line: u32,
}

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Owning crate name.
    pub crate_name: &'a str,
    /// File contents.
    pub src: &'a str,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Significant tokens only (no comments).
    pub sig: Vec<Sig<'a>>,
    /// `test_mask[i]` is true when `sig[i]` lies inside test-only code
    /// (`#[cfg(test)]` / `#[test]` items, or a tests/benches/examples file).
    pub test_mask: Vec<bool>,
    /// Valid suppression directives.
    pub allows: Vec<Allow>,
    /// Diagnostics for malformed suppression directives.
    pub malformed: Vec<Diagnostic>,
}

impl<'a> FileCtx<'a> {
    /// Builds the context for one file: lexes it, classifies test spans and
    /// parses suppression comments.
    pub fn build(file: &'a SourceFile) -> Self {
        let src = file.text.as_str();
        let tokens = lexer::lex(src);
        let sig: Vec<Sig<'a>> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
                )
            })
            .map(|(i, t)| Sig {
                kind: t.kind,
                text: t.text(src),
                line: t.line,
                col: t.col,
                full_idx: i,
            })
            .collect();
        let all_test = path_is_test_only(&file.rel_path);
        let test_mask = if all_test {
            vec![true; sig.len()]
        } else {
            test_mask(&sig)
        };
        let (allows, malformed) = parse_allows(&file.rel_path, src, &tokens);
        FileCtx {
            rel_path: &file.rel_path,
            crate_name: &file.crate_name,
            src,
            tokens,
            sig,
            test_mask,
            allows,
            malformed,
        }
    }

    /// True when `sig[i]` is inside test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Convenience: the text of `sig[i]`, or `""` past the end.
    pub fn text(&self, i: usize) -> &str {
        self.sig.get(i).map(|s| s.text).unwrap_or("")
    }

    /// Emits a diagnostic anchored at `sig[i]`.
    pub fn diag(&self, i: usize, rule: &'static str, message: String) -> Diagnostic {
        let s = &self.sig[i];
        Diagnostic {
            path: self.rel_path.to_string(),
            line: s.line,
            col: s.col,
            rule,
            message,
        }
    }
}

/// Whole files under tests/, benches/ or examples/ trees are test-only.
fn path_is_test_only(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts[..parts.len().saturating_sub(1)]
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        || rel.ends_with("build.rs")
}

/// Marks significant tokens covered by `#[cfg(test)]` / `#[test]` items.
fn test_mask(sig: &[Sig<'_>]) -> Vec<bool> {
    let mut mask = vec![false; sig.len()];
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].text == "#" && i + 1 < sig.len() && sig[i + 1].text == "[" {
            let attr_start = i;
            let close = match matching(sig, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            if attr_is_test(&sig[i + 2..close]) {
                if let Some(end) = item_end(sig, close + 1) {
                    for m in mask.iter_mut().take(end + 1).skip(attr_start) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` — but not
/// `#[cfg(not(test))]`.
fn attr_is_test(body: &[Sig<'_>]) -> bool {
    if body.is_empty() {
        return false;
    }
    if body.len() == 1 && body[0].text == "test" {
        return true;
    }
    if body[0].text != "cfg" {
        return false;
    }
    let mentions_test = body.iter().any(|s| s.text == "test");
    let negated = body.iter().any(|s| s.text == "not");
    mentions_test && !negated
}

/// Index of the token closing the group opened at `open_idx`.
fn matching(sig: &[Sig<'_>], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, s) in sig.iter().enumerate().skip(open_idx) {
        if s.text == open {
            depth += 1;
        } else if s.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds the end of the item starting at `start` (first token after its
/// attributes): the matching `}` of its body, or a trailing `;`.
fn item_end(sig: &[Sig<'_>], start: usize) -> Option<usize> {
    let mut j = start;
    // Skip any further attributes between the test attribute and the item.
    while j + 1 < sig.len() && sig[j].text == "#" && sig[j + 1].text == "[" {
        j = matching(sig, j + 1, "[", "]")? + 1;
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < sig.len() {
        match sig[j].text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return matching(sig, j, "{", "}"),
            ";" if paren == 0 && bracket == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses every `tps-lint::allow` directive in the file's line comments.
fn parse_allows(rel_path: &str, src: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment {
            continue;
        }
        let text = t.text(src);
        let Some(at) = text.find("tps-lint::allow") else {
            continue;
        };
        let mut bad = |why: &str| {
            malformed.push(Diagnostic {
                path: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: rules::MALFORMED_SUPPRESSION,
                message: why.to_string(),
            });
        };
        let rest = &text[at + "tps-lint::allow".len()..];
        let Some(args) = rest
            .strip_prefix('(')
            .and_then(|r| r.find(')').map(|close| &r[..close]))
        else {
            bad("suppression must have the form tps-lint::allow(<rule>, reason = \"...\")");
            continue;
        };
        let Some((rule_part, reason_part)) = args.split_once(',') else {
            bad("suppression is missing the mandatory reason: tps-lint::allow(<rule>, reason = \"...\")");
            continue;
        };
        let rule = rule_part.trim();
        if !rules::RULES.contains(&rule) {
            bad(&format!(
                "unknown rule `{rule}` in suppression (known rules: {})",
                rules::RULES.join(", ")
            ));
            continue;
        }
        let reason_ok = reason_part
            .split_once('=')
            .filter(|(k, _)| k.trim() == "reason")
            .map(|(_, v)| v.trim())
            .filter(|v| v.len() >= 2 && v.starts_with('"') && v.ends_with('"') && v.len() > 2)
            .is_some();
        if !reason_ok {
            bad("suppression reason must be a non-empty string: reason = \"...\"");
            continue;
        }
        // A directive trailing code suppresses its own line; a directive on
        // a line of its own suppresses the next line.
        let trails_code = tokens[..i].iter().any(|p| {
            p.line == t.line
                && !matches!(
                    p.kind,
                    TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
                )
        });
        let target_line = if trails_code { t.line } else { t.line + 1 };
        allows.push(Allow {
            rule: rule.to_string(),
            target_line,
        });
    }
    (allows, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(file: &SourceFile) -> FileCtx<'_> {
        FileCtx::build(file)
    }

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_string(),
            crate_name: "tps-os".to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let f = file(
            "crates/tps-os/src/a.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_real() {}\n",
        );
        let c = ctx_of(&f);
        let unwrap_idx = c.sig.iter().position(|s| s.text == "unwrap").unwrap();
        assert!(c.is_test(unwrap_idx));
        let real_idx = c.sig.iter().position(|s| s.text == "also_real").unwrap();
        assert!(!c.is_test(real_idx));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = file(
            "crates/tps-os/src/a.rs",
            "#[cfg(not(test))]\nfn real() { x.unwrap(); }\n",
        );
        let c = ctx_of(&f);
        let unwrap_idx = c.sig.iter().position(|s| s.text == "unwrap").unwrap();
        assert!(!c.is_test(unwrap_idx));
    }

    #[test]
    fn integration_test_files_are_fully_masked() {
        let f = SourceFile {
            rel_path: "crates/tps-os/tests/it.rs".into(),
            crate_name: "tps-os".into(),
            text: "fn t() { x.unwrap(); }".into(),
        };
        let c = ctx_of(&f);
        assert!(c.test_mask.iter().all(|&m| m));
    }

    #[test]
    fn allow_parsing_and_targets() {
        let f = file(
            "crates/tps-os/src/a.rs",
            concat!(
                "let a = x.unwrap(); // tps-lint::allow(panic-free-fault-path, reason = \"trailing\")\n",
                "// tps-lint::allow(no-magic-page-size, reason = \"next line\")\n",
                "let b = 1;\n",
            ),
        );
        let c = ctx_of(&f);
        assert_eq!(c.allows.len(), 2);
        assert_eq!(c.allows[0].rule, "panic-free-fault-path");
        assert_eq!(c.allows[0].target_line, 1);
        assert_eq!(c.allows[1].rule, "no-magic-page-size");
        assert_eq!(c.allows[1].target_line, 3);
        assert!(c.malformed.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = file(
            "crates/tps-os/src/a.rs",
            "// tps-lint::allow(panic-free-fault-path)\nlet a = 1;\n",
        );
        let c = ctx_of(&f);
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
        assert!(c.malformed[0].message.contains("mandatory reason"));
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let f = file(
            "crates/tps-os/src/a.rs",
            "// tps-lint::allow(no-such-rule, reason = \"x\")\n",
        );
        let c = ctx_of(&f);
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
        assert!(c.malformed[0].message.contains("unknown rule"));
    }

    #[test]
    fn allow_with_empty_reason_is_malformed() {
        let f = file(
            "crates/tps-os/src/a.rs",
            "// tps-lint::allow(pub-item-docs, reason = \"\")\n",
        );
        let c = ctx_of(&f);
        assert!(c.allows.is_empty());
        assert_eq!(c.malformed.len(), 1);
    }
}
