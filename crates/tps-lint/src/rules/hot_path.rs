//! Pass 3 of the workspace analysis: hot-path cost rules.
//!
//! ROADMAP item 2 wants a measured speedup on the translation path;
//! nothing in passes 1–2 stops a `format!` or a `&dyn Fn` from creeping
//! back into `Mmu::access`. This pass computes the transitive closure of
//! workspace functions reachable from the entry points declared in
//! `hot-paths.toml` (walking the PR 6 call graph, stopping at declared
//! cold boundaries) and then scans every closure member's body in the
//! hot crates for four cost classes:
//!
//! * [`super::HOT_PATH_ALLOC`] — heap allocation: `Vec::new`, `Box::new`,
//!   `vec!`/`format!`, `.to_vec()`/`.to_string()`/`.to_owned()`, heap
//!   `collect::<...>` turbofish.
//! * [`super::HOT_PATH_DYN_DISPATCH`] — `dyn` anywhere in the function,
//!   uses of `type` aliases that expand to `dyn`, and reads of struct
//!   fields declared with `dyn` types.
//! * [`super::HOT_PATH_LOCK_IO`] — `Mutex`/`RwLock`/`Condvar`, `.lock()`,
//!   console macros, `std::fs`/`File` calls and std stream handles.
//! * [`super::HOT_PATH_CLONE`] — `.clone()` where the receiver's
//!   flow-insensitive type is a heap container or a workspace type that
//!   does not derive `Copy`.
//!
//! Everything is name-merged and over-approximate, like the rest of the
//! index: a shared method name pulls every same-named workspace fn into
//! the closure. That can only make the fence wider, and audited false
//! positives use the standard allow-with-reason suppression.

use super::{HOT_PATH_ALLOC, HOT_PATH_CLONE, HOT_PATH_DYN_DISPATCH, HOT_PATH_LOCK_IO};
use crate::diag::Diagnostic;
use crate::file::FileCtx;
use crate::hot_paths::{name_tail, HotPaths};
use crate::lexer::TokenKind;
use crate::symbol_index::{DefKind, SymbolIndex};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates whose function bodies are scanned when hot-reachable. The
/// closure itself is workspace-wide (name merging crosses crates), but
/// findings outside the simulator core would only be noise.
pub const HOT_CRATES: [&str; 6] = [
    "tps-core", "tps-mem", "tps-os", "tps-pt", "tps-tlb", "tps-sim",
];

/// Heap-allocating type heads.
const HEAP_TYPES: [&str; 10] = [
    "Vec", "VecDeque", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Box", "Rc", "Arc",
];
/// Constructor names that allocate when called on a heap type.
const HEAP_CTORS: [&str; 4] = ["new", "with_capacity", "from", "default"];
/// Allocating conversion methods.
const ALLOC_METHODS: [&str; 3] = ["to_vec", "to_string", "to_owned"];
/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
/// Console/debug output macros.
const IO_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];
/// Lock types.
const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];
/// Std stream handles.
const STD_STREAMS: [&str; 3] = ["stdout", "stderr", "stdin"];

/// Computes the hot closure: bare fn name → the declared entry point it
/// is reachable from (the first one, in deterministic order).
pub fn hot_closure(index: &SymbolIndex, hot: &HotPaths) -> BTreeMap<String, String> {
    let cold: BTreeSet<&str> = hot.cold_boundaries.keys().map(|k| name_tail(k)).collect();
    let mut origin: BTreeMap<String, String> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for full in hot.entry_points.keys() {
        let t = name_tail(full);
        if cold.contains(t) || origin.contains_key(t) {
            continue;
        }
        origin.insert(t.to_string(), full.clone());
        queue.push_back(t.to_string());
    }
    while let Some(name) = queue.pop_front() {
        let entry = origin[&name].clone();
        let Some(info) = index.fn_info(&name) else {
            continue;
        };
        for callee in &info.calls {
            if cold.contains(callee.as_str()) || origin.contains_key(callee) {
                continue;
            }
            // Only names the workspace defines can be scanned or call
            // further workspace code; std method names without a local
            // definition end the walk naturally.
            if index.fn_info(callee).is_none() {
                continue;
            }
            origin.insert(callee.clone(), entry.clone());
            queue.push_back(callee.clone());
        }
    }
    origin
}

/// Runs all four hot-path rules over the workspace.
pub fn check(
    files: &[FileCtx<'_>],
    index: &SymbolIndex,
    hot: &HotPaths,
    out: &mut Vec<Diagnostic>,
) {
    if hot.entry_points.is_empty() {
        return;
    }
    let closure = hot_closure(index, hot);
    // Workspace struct/enum names that do not derive Copy: cloning a value
    // of such a type is (potentially) a deep copy.
    let non_copy: BTreeSet<&str> = index
        .defs
        .iter()
        .filter(|d| matches!(d.kind, DefKind::Struct | DefKind::Enum))
        .filter(|d| !index.is_copy_type(&d.name))
        .map(|d| d.name.as_str())
        .collect();
    for ctx in files {
        if !HOT_CRATES.contains(&ctx.crate_name) {
            continue;
        }
        let Some(fs) = index.file(ctx.rel_path) else {
            continue;
        };
        for span in &fs.fn_spans {
            if ctx.is_test(span.start) {
                continue;
            }
            let Some(entry) = closure.get(&span.name) else {
                continue;
            };
            scan_span(
                ctx,
                index,
                span.name.as_str(),
                span.start,
                span.end,
                entry,
                &non_copy,
                out,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_span(
    ctx: &FileCtx<'_>,
    index: &SymbolIndex,
    fn_name: &str,
    start: usize,
    end: usize,
    entry: &str,
    non_copy: &BTreeSet<&str>,
    out: &mut Vec<Diagnostic>,
) {
    let sig = &ctx.sig;
    let last = end.min(sig.len().saturating_sub(1));
    for (j, tok) in sig.iter().enumerate().take(last + 1).skip(start) {
        if ctx.is_test(j) {
            continue;
        }
        let t = tok.text;
        let is_ident = tok.kind == TokenKind::Ident;
        let prev = if j == 0 { "" } else { ctx.text(j - 1) };
        let next = ctx.text(j + 1);
        let via = format!("`{fn_name}` is hot-reachable from `{entry}`");

        // ---- hot-path-dyn-dispatch -----------------------------------
        if t == "dyn" {
            out.push(ctx.diag(
                j,
                HOT_PATH_DYN_DISPATCH,
                format!("`dyn` dispatch on the hot path: {via}; use a generic parameter or a small enum so the call inlines"),
            ));
            continue;
        }
        if is_ident && index.is_dyn_alias(t) {
            out.push(ctx.diag(
                j,
                HOT_PATH_DYN_DISPATCH,
                format!("`{t}` is a type alias expanding to `dyn`: {via}"),
            ));
        }
        if is_ident && prev == "." && next != "(" && index.is_dyn_field(t) {
            out.push(ctx.diag(
                j,
                HOT_PATH_DYN_DISPATCH,
                format!("field `{t}` holds a `dyn` value: {via}"),
            ));
        }

        // ---- hot-path-alloc ------------------------------------------
        if is_ident {
            if HEAP_TYPES.contains(&t)
                && next == "::"
                && HEAP_CTORS.contains(&ctx.text(j + 2))
                && ctx.text(j + 3) == "("
            {
                out.push(ctx.diag(
                    j,
                    HOT_PATH_ALLOC,
                    format!("`{t}::{}` allocates: {via}", ctx.text(j + 2)),
                ));
            } else if ALLOC_MACROS.contains(&t) && next == "!" {
                out.push(ctx.diag(j, HOT_PATH_ALLOC, format!("`{t}!` allocates: {via}")));
            } else if prev == "." && next == "(" && ALLOC_METHODS.contains(&t) {
                out.push(ctx.diag(j, HOT_PATH_ALLOC, format!("`.{t}()` allocates: {via}")));
            } else if t == "collect"
                && next == "::"
                && ctx.text(j + 2) == "<"
                && HEAP_TYPES.contains(&ctx.text(j + 3))
            {
                out.push(ctx.diag(
                    j,
                    HOT_PATH_ALLOC,
                    format!("`collect::<{}<..>>` allocates: {via}", ctx.text(j + 3)),
                ));
            }
        }

        // ---- hot-path-lock-io ----------------------------------------
        if is_ident {
            if LOCK_TYPES.contains(&t) {
                out.push(ctx.diag(j, HOT_PATH_LOCK_IO, format!("`{t}` on the hot path: {via}")));
            } else if t == "lock" && prev == "." && next == "(" {
                out.push(ctx.diag(j, HOT_PATH_LOCK_IO, format!("`.lock()` blocks: {via}")));
            } else if IO_MACROS.contains(&t) && next == "!" {
                out.push(ctx.diag(
                    j,
                    HOT_PATH_LOCK_IO,
                    format!("`{t}!` performs console I/O: {via}"),
                ));
            } else if (t == "fs" || t == "File") && next == "::" {
                out.push(ctx.diag(
                    j,
                    HOT_PATH_LOCK_IO,
                    format!("`{t}::` filesystem access: {via}"),
                ));
            } else if STD_STREAMS.contains(&t) && next == "(" && prev == "::" {
                out.push(ctx.diag(
                    j,
                    HOT_PATH_LOCK_IO,
                    format!("`{t}()` std stream handle: {via}"),
                ));
            }
        }

        // ---- hot-path-clone ------------------------------------------
        if is_ident && t == "clone" && prev == "." && next == "(" {
            if let Some((recv, head)) = clone_receiver_head(ctx, index, j) {
                let resolved = index.resolve_head(ctx, &head);
                let tail = resolved.rsplit("::").next().unwrap_or(&resolved);
                if HEAP_TYPES.contains(&tail) || non_copy.contains(tail) {
                    out.push(ctx.diag(
                        j,
                        HOT_PATH_CLONE,
                        format!("`.clone()` of `{recv}` ({tail} is not `Copy`): {via}"),
                    ));
                }
            }
        }
    }
}

/// The receiver identifier and its flow-insensitive type head for a
/// `.clone()` at `clone_idx`, when both are resolvable. Chained or
/// expression receivers return `None` — the rule is deliberately
/// conservative about what it cannot type.
fn clone_receiver_head(
    ctx: &FileCtx<'_>,
    index: &SymbolIndex,
    clone_idx: usize,
) -> Option<(String, String)> {
    let r = clone_idx.checked_sub(2)?;
    if ctx.sig[r].kind != TokenKind::Ident {
        return None;
    }
    let name = ctx.sig[r].text;
    if name == "self" {
        return None;
    }
    let before = if r == 0 { "" } else { ctx.text(r - 1) };
    // `x.field.clone()`: type the field through the crate's field map.
    if before == "." {
        return index
            .field_head(ctx.crate_name, name)
            .map(|h| (name.to_string(), h.to_string()));
    }
    if let Some(fs) = index.file(ctx.rel_path) {
        if let Some(h) = fs.bindings.get(name) {
            return Some((name.to_string(), h.clone()));
        }
    }
    index
        .field_head(ctx.crate_name, name)
        .map(|h| (name.to_string(), h.to_string()))
}
