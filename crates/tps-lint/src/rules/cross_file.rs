//! Rules that need the whole workspace in view.

use super::{CORE_CRATE, FAULT_SITE_COVERAGE, STATS_COUNTER_COVERAGE};
use crate::diag::Diagnostic;
use crate::file::{FileCtx, Sig};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// A declaration found by the item scanners: the defining file's path plus
/// each member as `(name, line, col)`.
type FoundItems<'a> = (&'a str, Vec<(&'a str, u32, u32)>);

/// [`FAULT_SITE_COVERAGE`]: every `FaultSite` variant declared in
/// `tps-core` must be consulted by at least one real injection hook —
/// a non-test `FaultSite::Variant` reference outside `tps-core` (which
/// defines it) and `tps-check` (which merely interprets it). A variant
/// nobody consults is a fault path the campaigns can never exercise.
pub fn fault_site_coverage(files: &[FileCtx<'_>], out: &mut Vec<Diagnostic>) {
    let Some((def_file, variants)) = find_enum_variants(files, CORE_CRATE, "FaultSite") else {
        return; // enum not in view (partial lint run): nothing to check
    };
    let mut referenced: BTreeMap<&str, bool> =
        variants.iter().map(|(name, _, _)| (*name, false)).collect();
    for f in files {
        if f.crate_name == CORE_CRATE || f.crate_name == "tps-check" {
            continue;
        }
        for i in 0..f.sig.len() {
            if f.sig[i].text == "FaultSite" && f.text(i + 1) == "::" && !f.is_test(i) {
                if let Some(hit) = referenced.get_mut(f.text(i + 2)) {
                    *hit = true;
                }
            }
        }
    }
    for (name, line, col) in &variants {
        if !referenced[name] {
            out.push(Diagnostic {
                path: def_file.to_string(),
                line: *line,
                col: *col,
                rule: FAULT_SITE_COVERAGE,
                message: format!(
                    "FaultSite::{name} is never consulted by an injection hook outside \
                     tps-check; wire it into the layer it instruments or delete it"
                ),
            });
        }
    }
}

/// [`STATS_COUNTER_COVERAGE`]: every field of `OsStats` must be incremented
/// (`.field += ...`) somewhere in non-test code, so no degradation counter
/// can silently read zero forever.
pub fn stats_counter_coverage(files: &[FileCtx<'_>], out: &mut Vec<Diagnostic>) {
    let Some((def_file, fields)) = find_struct_fields(files, "tps-os", "OsStats") else {
        return;
    };
    let mut incremented: BTreeMap<&str, bool> =
        fields.iter().map(|(name, _, _)| (*name, false)).collect();
    for f in files {
        for i in 1..f.sig.len() {
            if f.text(i - 1) == "."
                && f.sig[i].kind == TokenKind::Ident
                && f.text(i + 1) == "+="
                && !f.is_test(i)
            {
                if let Some(hit) = incremented.get_mut(f.sig[i].text) {
                    *hit = true;
                }
            }
        }
    }
    for (name, line, col) in &fields {
        if !incremented[name] {
            out.push(Diagnostic {
                path: def_file.to_string(),
                line: *line,
                col: *col,
                rule: STATS_COUNTER_COVERAGE,
                message: format!(
                    "OsStats::{name} is never incremented; a counter that cannot move hides \
                     the degradation it was added to expose"
                ),
            });
        }
    }
}

/// Locates `enum <name>` in `crate_name` and collects its variants as
/// `(name, line, col)`.
fn find_enum_variants<'a>(
    files: &'a [FileCtx<'a>],
    crate_name: &str,
    enum_name: &str,
) -> Option<FoundItems<'a>> {
    for f in files {
        if f.crate_name != crate_name {
            continue;
        }
        for i in 0..f.sig.len() {
            if f.sig[i].text == "enum" && f.text(i + 1) == enum_name {
                // Generics would sit between name and `{`; these enums are plain.
                let open = i + 2;
                if f.text(open) != "{" {
                    continue;
                }
                return Some((f.rel_path, collect_variants(&f.sig, open)));
            }
        }
    }
    None
}

/// Walks the body of an enum collecting variant names, skipping attributes
/// and payloads.
fn collect_variants<'a>(sig: &[Sig<'a>], open: usize) -> Vec<(&'a str, u32, u32)> {
    let mut variants = Vec::new();
    let mut j = open + 1;
    let mut depth = 1i32;
    while j < sig.len() && depth > 0 {
        match sig[j].text {
            "{" | "(" | "[" => {
                depth += 1;
                j += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                j += 1;
            }
            "#" if depth == 1 => {
                // Attribute on a variant: skip the balanced `[...]`.
                j += 1;
                let mut adepth = 0i32;
                while j < sig.len() {
                    match sig[j].text {
                        "[" => adepth += 1,
                        "]" => {
                            adepth -= 1;
                            if adepth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            "," if depth == 1 => j += 1,
            _ => {
                if depth == 1 && sig[j].kind == TokenKind::Ident {
                    variants.push((sig[j].text, sig[j].line, sig[j].col));
                    // Skip a possible payload and discriminant to the comma.
                    j += 1;
                    let mut pdepth = 0i32;
                    while j < sig.len() {
                        match sig[j].text {
                            "{" | "(" | "[" => pdepth += 1,
                            "}" | ")" | "]" => {
                                if pdepth == 0 {
                                    break; // enum body closes
                                }
                                pdepth -= 1;
                            }
                            "," if pdepth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                } else {
                    j += 1;
                }
            }
        }
    }
    variants
}

/// Locates `struct <name>` in `crate_name` and collects its named fields.
fn find_struct_fields<'a>(
    files: &'a [FileCtx<'a>],
    crate_name: &str,
    struct_name: &str,
) -> Option<FoundItems<'a>> {
    for f in files {
        if f.crate_name != crate_name {
            continue;
        }
        for i in 0..f.sig.len() {
            if f.sig[i].text == "struct" && f.text(i + 1) == struct_name && f.text(i + 2) == "{" {
                let mut fields = Vec::new();
                let mut j = i + 3;
                let mut depth = 1i32;
                while j < f.sig.len() && depth > 0 {
                    match f.sig[j].text {
                        "{" | "(" | "[" | "<" => depth += 1,
                        "}" | ")" | "]" | ">" => depth -= 1,
                        "#" if depth == 1 => {
                            // Skip field attribute.
                            while j < f.sig.len() && f.sig[j].text != "]" {
                                j += 1;
                            }
                        }
                        _ => {
                            if depth == 1
                                && f.sig[j].kind == TokenKind::Ident
                                && f.sig[j].text != "pub"
                                && f.text(j + 1) == ":"
                            {
                                fields.push((f.sig[j].text, f.sig[j].line, f.sig[j].col));
                            }
                        }
                    }
                    j += 1;
                }
                return Some((f.rel_path, fields));
            }
        }
    }
    None
}
