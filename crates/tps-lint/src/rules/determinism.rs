//! Pass 2: determinism rules over the symbol index.
//!
//! The byte-identical-JSON contract (reports identical at any `--threads`,
//! `--resume` byte-identical, chaos schedules replayable) is enforced
//! dynamically by verify.sh — but a dynamic gate only proves the paths a
//! given seed exercises. These rules prove the complement statically: no
//! hash-ordered iteration, wall-clock read, or per-process entropy source
//! can reach the deterministic crates' state or report fields.
//!
//! Every rule here runs only over [`DET_CRATES`] (plus `tps-check` for the
//! wall-clock rule), skips test code, and flows through the same
//! baseline/ratchet/suppression machinery as the per-file rules.

use crate::diag::Diagnostic;
use crate::file::FileCtx;
use crate::lexer::TokenKind;
use crate::rules::{FLOAT_ACCUM_ORDER, UNORDERED_ITERATION, UNSEEDED_ENTROPY, WALL_CLOCK};
use crate::symbol_index::SymbolIndex;

/// The crates whose outputs must be bit-stable across thread counts,
/// resume boundaries and process restarts.
pub const DET_CRATES: [&str; 7] = [
    "tps-core", "tps-mem", "tps-os", "tps-pt", "tps-tlb", "tps-wl", "tps-sim",
];

/// Modules allowed to read the wall clock: the chaos campaign's own timing
/// and the worker-pool watchdog, both of which measure the *harness*, not
/// the simulation.
const WALL_CLOCK_ALLOW: [&str; 2] = [
    "crates/tps-check/src/campaign.rs",
    "crates/tps-sim/src/experiment/pool.rs",
];

/// Iterator-producing methods whose order is the container's order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Adapters that forward the underlying order unchanged; scanning
/// continues through them to the chain's terminal.
const TRANSPARENT: [&str; 10] = [
    "map",
    "filter",
    "filter_map",
    "copied",
    "cloned",
    "by_ref",
    "inspect",
    "enumerate",
    "flatten",
    "flat_map",
];

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const FLOAT_TYPES: [&str; 2] = ["f32", "f64"];

/// How a method chain rooted in a hash-ordered iterator terminates.
enum Terminal {
    /// Provably order-insensitive (integer sum, count, ...): no finding.
    OrderInsensitive,
    /// Floating-point accumulation: order-sensitive in a sneaky way.
    FloatAccum(usize),
    /// Anything else, including chains that escape analysis.
    Unknown,
}

/// Runs every determinism rule. Called from the workspace pass with the
/// pass-1 symbol index.
pub fn check(files: &[FileCtx<'_>], index: &SymbolIndex, out: &mut Vec<Diagnostic>) {
    for ctx in files {
        if DET_CRATES.contains(&ctx.crate_name) {
            unordered_iteration(ctx, index, out);
            unseeded_entropy(ctx, index, out);
            wall_clock(ctx, out);
        } else if ctx.crate_name == "tps-check" {
            wall_clock(ctx, out);
        }
    }
}

/// `unordered-iteration` and `float-accum-order`: iterating a `HashMap`/
/// `HashSet` observably (any sink that is not a proven order-insensitive
/// fold) — via `.iter()`-family methods or `for … in &map`.
fn unordered_iteration(ctx: &FileCtx<'_>, index: &SymbolIndex, out: &mut Vec<Diagnostic>) {
    let sig = &ctx.sig;
    for (i, s) in sig.iter().enumerate() {
        if ctx.is_test(i) {
            continue;
        }
        // Method-call form: `<recv>.iter()`, `self.map.values()`,
        // `make_map().keys()`, ...
        if s.kind == TokenKind::Ident
            && ITER_METHODS.contains(&s.text)
            && i >= 2
            && ctx.text(i - 1) == "."
            && ctx.text(i + 1) == "("
        {
            let Some(recv) = receiver_name(ctx, i - 2) else {
                continue;
            };
            let is_hash = match recv {
                Receiver::Ident(name) => index.ident_is_hash(ctx, name),
                Receiver::Call(name) => index.fn_returns_hash(ctx, name),
            };
            if !is_hash {
                continue;
            }
            let name = match recv {
                Receiver::Ident(n) | Receiver::Call(n) => n,
            };
            match chain_terminal(ctx, i + 1) {
                Terminal::OrderInsensitive => {}
                Terminal::FloatAccum(at) => out.push(ctx.diag(
                    at,
                    FLOAT_ACCUM_ORDER,
                    format!(
                        "floating-point accumulation over hash-ordered `{name}` depends on \
                         iteration order; iterate an ordered container (BTreeMap/BTreeSet) \
                         or accumulate in a fixed order"
                    ),
                )),
                Terminal::Unknown => out.push(ctx.diag(
                    i,
                    UNORDERED_ITERATION,
                    format!(
                        "iterating hash-ordered `{name}` via `{}` can leak hasher state into \
                         results; use BTreeMap/BTreeSet, sort first, or finish with an \
                         order-insensitive fold (integer sum/count/min/max)",
                        s.text
                    ),
                )),
            }
        }
        // Loop form: `for pat in [&][mut] path.to.map {`.
        if s.text == "for" && s.kind == TokenKind::Ident && ctx.text(i + 1) != "<" {
            if let Some(name) = for_loop_hash_expr(ctx, index, i) {
                out.push(ctx.diag(
                    i,
                    UNORDERED_ITERATION,
                    format!(
                        "`for` loop over hash-ordered `{name}` visits entries in hasher order; \
                         use BTreeMap/BTreeSet or sort the keys first"
                    ),
                ));
            }
        }
    }
}

/// The receiver of a method call whose `.` sits just after `recv_idx`.
enum Receiver<'a> {
    /// A plain identifier or field: `map.iter()`, `self.regions.iter()`.
    Ident(&'a str),
    /// A call result: `census().iter()` — the called function's name.
    Call(&'a str),
}

fn receiver_name<'a>(ctx: &'a FileCtx<'_>, recv_idx: usize) -> Option<Receiver<'a>> {
    let sig = &ctx.sig;
    let s = sig.get(recv_idx)?;
    if s.kind == TokenKind::Ident {
        return Some(Receiver::Ident(s.text));
    }
    if s.text == ")" {
        let open = matching_backward(ctx, recv_idx)?;
        let f = sig.get(open.checked_sub(1)?)?;
        if f.kind == TokenKind::Ident {
            return Some(Receiver::Call(f.text));
        }
    }
    None
}

/// Classifies the method chain starting at the `(` of the iterator call at
/// `open_idx`: walks transparent adapters and judges the terminal.
fn chain_terminal(ctx: &FileCtx<'_>, open_idx: usize) -> Terminal {
    let mut close = match matching_forward(ctx, open_idx) {
        Some(c) => c,
        None => return Terminal::Unknown,
    };
    loop {
        let dot = close + 1;
        if ctx.text(dot) != "." || ctx.sig.get(dot + 1).map(|s| s.kind) != Some(TokenKind::Ident) {
            return Terminal::Unknown; // chain escapes (binding, argument, `for` source, ...)
        }
        let method = ctx.text(dot + 1);
        let (turbofish, call_open) = if ctx.text(dot + 2) == "::" && ctx.text(dot + 3) == "<" {
            let Some(tf_close) = matching_angle(ctx, dot + 3) else {
                return Terminal::Unknown;
            };
            (Some((dot + 4, tf_close)), tf_close + 1)
        } else {
            (None, dot + 2)
        };
        if ctx.text(call_open) != "(" {
            return Terminal::Unknown; // field access or partial path
        }
        let Some(call_close) = matching_forward(ctx, call_open) else {
            return Terminal::Unknown;
        };
        if TRANSPARENT.contains(&method) {
            close = call_close;
            continue;
        }
        let tf_head = turbofish.map(|(s, _)| ctx.text(s));
        return match method {
            "count" | "min" | "max" | "any" | "all" => Terminal::OrderInsensitive,
            "sum" | "product" => match tf_head {
                Some(t) if INT_TYPES.contains(&t) => Terminal::OrderInsensitive,
                Some(t) if FLOAT_TYPES.contains(&t) => Terminal::FloatAccum(dot + 1),
                _ => Terminal::Unknown,
            },
            "fold" => {
                // `fold(0.0, ...)` / `fold(0f64, ...)`: float accumulator.
                if ctx.sig.get(call_open + 1).map(|s| s.kind) == Some(TokenKind::Float) {
                    Terminal::FloatAccum(dot + 1)
                } else {
                    Terminal::Unknown
                }
            }
            "collect" => match tf_head {
                Some("BTreeMap") | Some("BTreeSet") => Terminal::OrderInsensitive,
                _ => Terminal::Unknown,
            },
            _ => Terminal::Unknown,
        };
    }
}

/// When the `for` at `for_idx` loops over a plain (call-free) path whose
/// final identifier is hash-typed, returns that identifier.
fn for_loop_hash_expr(ctx: &FileCtx<'_>, index: &SymbolIndex, for_idx: usize) -> Option<String> {
    let sig = &ctx.sig;
    // Find `in` at depth 0 before the loop body opens.
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    let in_idx = loop {
        let s = sig.get(j)?;
        match s.text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return None, // `impl Trait for Type {`
            "in" if depth == 0 && s.kind == TokenKind::Ident => break j,
            _ => {}
        }
        j += 1;
    };
    // Expression: `[&][&][mut] ident(.ident)*` up to the body `{`.
    let mut k = in_idx + 1;
    while matches!(ctx.text(k), "&" | "&&" | "mut") {
        k += 1;
    }
    loop {
        let s = sig.get(k)?;
        if s.kind != TokenKind::Ident {
            return None;
        }
        let name = s.text;
        k += 1;
        match ctx.text(k) {
            "." => k += 1,
            "{" => {
                // Plain path: judge its final identifier.
                return index.ident_is_hash(ctx, name).then(|| name.to_string());
            }
            _ => return None, // calls, ranges, indexing, ... — not a plain path
        }
    }
}

/// `wall-clock-in-sim`: `Instant::now` / `SystemTime::now` / `UNIX_EPOCH`
/// anywhere in the deterministic crates or the checker, outside the
/// allowlisted harness-timing modules.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if WALL_CLOCK_ALLOW.contains(&ctx.rel_path) {
        return;
    }
    let sig = &ctx.sig;
    for (i, s) in sig.iter().enumerate() {
        if ctx.is_test(i) || s.kind != TokenKind::Ident {
            continue;
        }
        let hit = match s.text {
            "Instant" | "SystemTime" => ctx.text(i + 1) == "::" && ctx.text(i + 2) == "now",
            "UNIX_EPOCH" => !in_use_statement(ctx, i),
            _ => false,
        };
        if hit {
            out.push(ctx.diag(
                i,
                WALL_CLOCK,
                format!(
                    "`{}` reads the wall clock inside the deterministic pipeline; simulated \
                     time must come from the simulator, and harness timing belongs in the \
                     allowlisted watchdog/campaign modules",
                    s.text
                ),
            ));
        }
    }
}

/// `unseeded-entropy`: hasher state, OS RNGs, environment variables and
/// thread identity reaching the deterministic crates.
fn unseeded_entropy(ctx: &FileCtx<'_>, index: &SymbolIndex, out: &mut Vec<Diagnostic>) {
    let sig = &ctx.sig;
    for (i, s) in sig.iter().enumerate() {
        if ctx.is_test(i) || s.kind != TokenKind::Ident {
            continue;
        }
        let pattern: Option<&str> = match s.text {
            "RandomState" if ctx.text(i + 1) == "::" => Some("RandomState"),
            "thread_rng" if ctx.text(i + 1) == "(" => Some("thread_rng"),
            "rand"
                if ctx.text(i + 1) == "::"
                    && ctx.text(i + 2) == "random"
                    && matches!(ctx.text(i + 3), "(" | "::") =>
            {
                Some("rand::random")
            }
            "env"
                if ctx.text(i + 1) == "::"
                    && matches!(ctx.text(i + 2), "var" | "var_os")
                    && ctx.text(i + 3) == "(" =>
            {
                Some("std::env::var")
            }
            "thread"
                if ctx.text(i + 1) == "::"
                    && ctx.text(i + 2) == "current"
                    && ctx.text(i + 3) == "(" =>
            {
                Some("thread::current")
            }
            _ => None,
        };
        let Some(pat) = pattern else {
            continue;
        };
        // Call-graph exemption: a helper every caller of which is test code
        // cannot taint sim state or report fields at run time.
        if let Some(encl) = index.enclosing_fn(ctx.rel_path, i) {
            if index.reachable_only_from_tests(encl) {
                continue;
            }
        }
        out.push(ctx.diag(
            i,
            UNSEEDED_ENTROPY,
            format!(
                "`{pat}` injects per-process entropy into deterministic code; derive \
                 every run-affecting value from the experiment seed"
            ),
        ));
    }
}

/// True when `sig[i]` lies inside a `use` declaration (imports name the
/// item without evaluating it).
fn in_use_statement(ctx: &FileCtx<'_>, i: usize) -> bool {
    for j in (0..i).rev() {
        match ctx.text(j) {
            ";" | "}" => return false,
            "use" => return true,
            _ => {}
        }
    }
    false
}

/// Index of the token closing the group opened at `open_idx` (`(`…`)`).
fn matching_forward(ctx: &FileCtx<'_>, open_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, s) in ctx.sig.iter().enumerate().skip(open_idx) {
        match s.text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close_idx`.
fn matching_backward(ctx: &FileCtx<'_>, close_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close_idx).rev() {
        match ctx.text(j) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the token closing the `<` at `open_idx`, counting the fused
/// `<<`/`>>` tokens as two.
fn matching_angle(ctx: &FileCtx<'_>, open_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, s) in ctx.sig.iter().enumerate().skip(open_idx) {
        match s.text {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return Some(j);
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}
