//! The TPS domain rules.
//!
//! Each rule is a token-level pass over one file ([`check_file`]) or over
//! the whole workspace ([`check_workspace`]). See `DESIGN.md` ("Static
//! analysis") for the rationale behind each rule.

mod cross_file;
pub mod determinism;
pub mod hot_path;
mod per_file;

use crate::diag::Diagnostic;
use crate::file::FileCtx;
use crate::hot_paths::HotPaths;
use crate::symbol_index::SymbolIndex;

/// `unwrap`/`expect`/`panic!` and friends are banned on the
/// mmap/fault/munmap/compact path.
pub const PANIC_FREE: &str = "panic-free-fault-path";
/// Bare page-size literals (`4096`, `0x1000`, `1 << 12`, ...) are banned
/// outside `tps-core`.
pub const NO_MAGIC_PAGE_SIZE: &str = "no-magic-page-size";
/// `.0` projection or tuple-construction of `VirtAddr`/`PhysAddr` is banned
/// outside `tps-core`.
pub const ADDR_OPACITY: &str = "addr-newtype-opacity";
/// Every `FaultSite` variant must be consulted by an injection hook.
pub const FAULT_SITE_COVERAGE: &str = "fault-site-coverage";
/// Every `OsStats` counter must be incremented somewhere.
pub const STATS_COUNTER_COVERAGE: &str = "stats-counter-coverage";
/// Wildcard arms are banned in matches over the workspace's core enums.
pub const NO_WILDCARD_ENUM_MATCH: &str = "no-wildcard-enum-match";
/// Exported items of `tps-core`/`tps-os` must carry doc comments.
pub const PUB_ITEM_DOCS: &str = "pub-item-docs";
/// Meta-rule: a `tps-lint::allow` directive that cannot be honored.
pub const MALFORMED_SUPPRESSION: &str = "malformed-suppression";
/// Direct `std::fs` writes are banned inside the experiment engine; all
/// artifact output must flow through `experiment::io`.
pub const RAW_ARTIFACT_IO: &str = "raw-artifact-io";
/// Observable iteration over `HashMap`/`HashSet` is banned in the
/// deterministic crates unless the sink is an order-insensitive fold.
pub const UNORDERED_ITERATION: &str = "unordered-iteration";
/// `Instant::now`/`SystemTime::now` are banned in the deterministic crates
/// outside the allowlisted watchdog/campaign-timing modules.
pub const WALL_CLOCK: &str = "wall-clock-in-sim";
/// Hasher state, OS RNGs, environment variables and thread identity may
/// not reach sim state or report fields.
pub const UNSEEDED_ENTROPY: &str = "unseeded-entropy";
/// Floating-point accumulation over an unordered container is banned (the
/// result depends on iteration order).
pub const FLOAT_ACCUM_ORDER: &str = "float-accum-order";
/// Heap allocation is banned in functions hot-reachable from a declared
/// translation entry point.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// `dyn` dispatch (params, fields, aliases) is banned in hot-reachable
/// functions.
pub const HOT_PATH_DYN_DISPATCH: &str = "hot-path-dyn-dispatch";
/// Locks and console/filesystem I/O are banned in hot-reachable functions.
pub const HOT_PATH_LOCK_IO: &str = "hot-path-lock-io";
/// `.clone()` of non-`Copy` values is banned in hot-reachable functions.
pub const HOT_PATH_CLONE: &str = "hot-path-clone";

/// Every rule name, in reporting order.
pub const RULES: [&str; 17] = [
    PANIC_FREE,
    NO_MAGIC_PAGE_SIZE,
    ADDR_OPACITY,
    FAULT_SITE_COVERAGE,
    STATS_COUNTER_COVERAGE,
    NO_WILDCARD_ENUM_MATCH,
    PUB_ITEM_DOCS,
    MALFORMED_SUPPRESSION,
    RAW_ARTIFACT_IO,
    UNORDERED_ITERATION,
    WALL_CLOCK,
    UNSEEDED_ENTROPY,
    FLOAT_ACCUM_ORDER,
    HOT_PATH_ALLOC,
    HOT_PATH_DYN_DISPATCH,
    HOT_PATH_LOCK_IO,
    HOT_PATH_CLONE,
];

/// Crates forming the mmap/fault/munmap/compact path ([`PANIC_FREE`]).
pub const FAULT_PATH_CRATES: [&str; 3] = ["tps-os", "tps-mem", "tps-pt"];
/// Individual files on the tenant event path that must also stay
/// panic-free ([`PANIC_FREE`]). These live in crates that are otherwise
/// allowed to panic, so they are named file-by-file; in these files the
/// rule additionally bans `assert!` and friends — a failed containment
/// assertion would abort the very machine that is supposed to outlive a
/// misbehaving tenant.
pub const FAULT_PATH_FILES: [&str; 1] = ["crates/tps-sim/src/machine.rs"];
/// The only crate allowed to spell out page-size constants.
pub const CORE_CRATE: &str = "tps-core";
/// Crates whose exported items must be documented ([`PUB_ITEM_DOCS`]).
pub const DOC_CRATES: [&str; 2] = ["tps-core", "tps-os"];
/// Enums whose matches may not use a wildcard arm.
pub const GUARDED_ENUMS: [&str; 6] = [
    "TpsError",
    "FaultSite",
    "InvariantLayer",
    "PteFlags",
    "Mechanism",
    "SuiteScale",
];

/// Runs every per-file rule over `ctx`.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    per_file::panic_free(ctx, out);
    per_file::magic_page_size(ctx, out);
    per_file::addr_opacity(ctx, out);
    per_file::wildcard_enum_match(ctx, out);
    per_file::pub_item_docs(ctx, out);
    per_file::raw_artifact_io(ctx, out);
    out.extend(ctx.malformed.iter().cloned());
}

/// Runs every cross-file rule over the whole workspace, including the
/// symbol-indexed determinism and hot-path passes.
pub fn check_workspace(
    files: &[FileCtx<'_>],
    index: &SymbolIndex,
    hot: &HotPaths,
    out: &mut Vec<Diagnostic>,
) {
    cross_file::fault_site_coverage(files, out);
    cross_file::stats_counter_coverage(files, out);
    determinism::check(files, index, out);
    hot_path::check(files, index, hot, out);
}

/// A prose explanation of `rule` for `tps-lint --explain`, or `None` for
/// an unknown rule name.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        PANIC_FREE => {
            "panic-free-fault-path: `unwrap`, `expect`, `panic!`, indexing and friends are \
             banned in tps-os/tps-mem/tps-pt non-test code, and in the tenant event path \
             (tps-sim's machine.rs) where `assert!`/`assert_eq!`/`assert_ne!` are banned \
             too. The mmap/fault/munmap/compact path must degrade into TpsError values — a \
             panic mid-compaction corrupts the machine state the fault-injection campaigns \
             replay, and an abort on the tenant step path would take down the machine that \
             fault containment promises will outlive a misbehaving tenant."
        }
        NO_MAGIC_PAGE_SIZE => {
            "no-magic-page-size: bare page-size literals (4096, 0x1000, 1 << 12, ...) are \
             banned outside tps-core. Every size must come from the PageOrder/PAGE_SIZE \
             constants so a page-geometry change cannot silently miss a site."
        }
        ADDR_OPACITY => {
            "addr-newtype-opacity: `.0` projection or tuple-construction of VirtAddr/PhysAddr \
             is banned outside tps-core. Address arithmetic must go through the newtype \
             methods, which carry the alignment and overflow contracts."
        }
        FAULT_SITE_COVERAGE => {
            "fault-site-coverage: every FaultSite variant must be consulted by an injection \
             hook somewhere in the workspace, so the chaos campaigns cannot silently lose \
             coverage of a fault point."
        }
        STATS_COUNTER_COVERAGE => {
            "stats-counter-coverage: every OsStats counter must be incremented somewhere; a \
             counter nothing increments reports a permanently-zero metric as if it were real."
        }
        NO_WILDCARD_ENUM_MATCH => {
            "no-wildcard-enum-match: `_` arms are banned in matches over the workspace's core \
             enums (TpsError, FaultSite, Mechanism, ...), so adding a variant forces every \
             consumer to decide its behavior explicitly."
        }
        PUB_ITEM_DOCS => {
            "pub-item-docs: exported items of tps-core and tps-os must carry doc comments; \
             these two crates are the API surface the paper-reproduction experiments script."
        }
        MALFORMED_SUPPRESSION => {
            "malformed-suppression: a `tps-lint::allow(<rule>, reason = \"...\")` directive \
             that names an unknown rule or omits the mandatory reason is itself a violation — \
             a suppression that cannot be honored must not look like it works."
        }
        RAW_ARTIFACT_IO => {
            "raw-artifact-io: direct std::fs writes are banned inside the experiment engine; \
             artifacts must flow through experiment::io, which provides the crash-safe \
             tmp+rename+checksum protocol the chaos campaign verifies."
        }
        UNORDERED_ITERATION => {
            "unordered-iteration: iterating a HashMap/HashSet observably (iter/keys/values/\
             into_iter/drain or `for ... in &map`) is banned in the deterministic crates \
             (tps-core/mem/os/pt/tlb/wl/sim) unless the chain provably ends in an \
             order-insensitive fold (integer sum/count/min/max/any/all, or collect into a \
             BTree container). Hash iteration order varies per process, so any escape into \
             sim state or reports breaks byte-identical output across --threads and --resume. \
             Audited order-insensitive sites may use tps-lint::allow with a reason."
        }
        WALL_CLOCK => {
            "wall-clock-in-sim: Instant::now/SystemTime::now/UNIX_EPOCH are banned in the \
             deterministic crates and tps-check, outside the allowlisted harness-timing \
             modules (the worker-pool watchdog and the chaos campaign's own timer). \
             Simulated time must come from the simulator; wall-clock readings differ per \
             run and poison replayability."
        }
        UNSEEDED_ENTROPY => {
            "unseeded-entropy: RandomState::new, thread_rng, rand::random, std::env::var and \
             thread::current() are banned in the deterministic crates. Every run-affecting \
             value must derive from the experiment seed. Helpers provably reachable only \
             from test code are exempt (the call graph decides)."
        }
        FLOAT_ACCUM_ORDER => {
            "float-accum-order: f32/f64 sum/product/fold over a hash-ordered container is \
             banned — float addition is not associative, so hasher order changes the result \
             in the low bits and the report bytes with it. Iterate an ordered container or \
             accumulate integers."
        }
        HOT_PATH_ALLOC => {
            "hot-path-alloc: heap allocation (Vec/Box/String constructors, vec!/format!, \
             .to_vec()/.to_string()/.to_owned(), heap collect::<..>) is banned in functions \
             reachable from a hot-paths.toml entry point. The translation fast path runs \
             per simulated memory access; one allocation there multiplies into millions per \
             experiment cell. Preallocate in a constructor, use a fixed-size buffer, or \
             declare a cold boundary if the call edge is genuinely a slow path."
        }
        HOT_PATH_DYN_DISPATCH => {
            "hot-path-dyn-dispatch: `dyn Trait` parameters, fields and aliases are banned in \
             functions reachable from a hot-paths.toml entry point. A virtual call cannot \
             inline, so the compiler cannot hoist or vectorize across it; use a generic \
             parameter or a small enum instead. The rule also flags uses of type aliases \
             that expand to `dyn` and reads of struct fields declared with `dyn` types."
        }
        HOT_PATH_LOCK_IO => {
            "hot-path-lock-io: Mutex/RwLock/Condvar, .lock(), console macros (println!/dbg!/\
             ...), and std::fs/File access are banned in functions reachable from a \
             hot-paths.toml entry point. The experiment worker pool runs one cell per \
             thread precisely so the per-access path never synchronizes or touches the OS."
        }
        HOT_PATH_CLONE => {
            "hot-path-clone: `.clone()` is banned in functions reachable from a hot-paths.toml \
             entry point when the receiver's flow-insensitive type is a heap container or a \
             workspace struct/enum that does not derive Copy. Clones of such values allocate \
             or deep-copy per access; restructure to borrow, or derive Copy for small PODs."
        }
        _ => return None,
    })
}

/// Drops diagnostics covered by a valid same-file suppression directive.
pub fn apply_suppressions(files: &[FileCtx<'_>], diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            if d.rule == MALFORMED_SUPPRESSION {
                return true; // a broken directive cannot excuse anything
            }
            !files.iter().any(|f| {
                f.rel_path == d.path
                    && f.allows
                        .iter()
                        .any(|a| a.rule == d.rule && a.target_line == d.line)
            })
        })
        .collect()
}
