//! The TPS domain rules.
//!
//! Each rule is a token-level pass over one file ([`check_file`]) or over
//! the whole workspace ([`check_workspace`]). See `DESIGN.md` ("Static
//! analysis") for the rationale behind each rule.

mod cross_file;
mod per_file;

use crate::diag::Diagnostic;
use crate::file::FileCtx;

/// `unwrap`/`expect`/`panic!` and friends are banned on the
/// mmap/fault/munmap/compact path.
pub const PANIC_FREE: &str = "panic-free-fault-path";
/// Bare page-size literals (`4096`, `0x1000`, `1 << 12`, ...) are banned
/// outside `tps-core`.
pub const NO_MAGIC_PAGE_SIZE: &str = "no-magic-page-size";
/// `.0` projection or tuple-construction of `VirtAddr`/`PhysAddr` is banned
/// outside `tps-core`.
pub const ADDR_OPACITY: &str = "addr-newtype-opacity";
/// Every `FaultSite` variant must be consulted by an injection hook.
pub const FAULT_SITE_COVERAGE: &str = "fault-site-coverage";
/// Every `OsStats` counter must be incremented somewhere.
pub const STATS_COUNTER_COVERAGE: &str = "stats-counter-coverage";
/// Wildcard arms are banned in matches over the workspace's core enums.
pub const NO_WILDCARD_ENUM_MATCH: &str = "no-wildcard-enum-match";
/// Exported items of `tps-core`/`tps-os` must carry doc comments.
pub const PUB_ITEM_DOCS: &str = "pub-item-docs";
/// Meta-rule: a `tps-lint::allow` directive that cannot be honored.
pub const MALFORMED_SUPPRESSION: &str = "malformed-suppression";
/// Direct `std::fs` writes are banned inside the experiment engine; all
/// artifact output must flow through `experiment::io`.
pub const RAW_ARTIFACT_IO: &str = "raw-artifact-io";

/// Every rule name, in reporting order.
pub const RULES: [&str; 9] = [
    PANIC_FREE,
    NO_MAGIC_PAGE_SIZE,
    ADDR_OPACITY,
    FAULT_SITE_COVERAGE,
    STATS_COUNTER_COVERAGE,
    NO_WILDCARD_ENUM_MATCH,
    PUB_ITEM_DOCS,
    MALFORMED_SUPPRESSION,
    RAW_ARTIFACT_IO,
];

/// Crates forming the mmap/fault/munmap/compact path ([`PANIC_FREE`]).
pub const FAULT_PATH_CRATES: [&str; 3] = ["tps-os", "tps-mem", "tps-pt"];
/// The only crate allowed to spell out page-size constants.
pub const CORE_CRATE: &str = "tps-core";
/// Crates whose exported items must be documented ([`PUB_ITEM_DOCS`]).
pub const DOC_CRATES: [&str; 2] = ["tps-core", "tps-os"];
/// Enums whose matches may not use a wildcard arm.
pub const GUARDED_ENUMS: [&str; 6] = [
    "TpsError",
    "FaultSite",
    "InvariantLayer",
    "PteFlags",
    "Mechanism",
    "SuiteScale",
];

/// Runs every per-file rule over `ctx`.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    per_file::panic_free(ctx, out);
    per_file::magic_page_size(ctx, out);
    per_file::addr_opacity(ctx, out);
    per_file::wildcard_enum_match(ctx, out);
    per_file::pub_item_docs(ctx, out);
    per_file::raw_artifact_io(ctx, out);
    out.extend(ctx.malformed.iter().cloned());
}

/// Runs every cross-file rule over the whole workspace.
pub fn check_workspace(files: &[FileCtx<'_>], out: &mut Vec<Diagnostic>) {
    cross_file::fault_site_coverage(files, out);
    cross_file::stats_counter_coverage(files, out);
}

/// Drops diagnostics covered by a valid same-file suppression directive.
pub fn apply_suppressions(files: &[FileCtx<'_>], diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags
        .into_iter()
        .filter(|d| {
            if d.rule == MALFORMED_SUPPRESSION {
                return true; // a broken directive cannot excuse anything
            }
            !files.iter().any(|f| {
                f.rel_path == d.path
                    && f.allows
                        .iter()
                        .any(|a| a.rule == d.rule && a.target_line == d.line)
            })
        })
        .collect()
}
