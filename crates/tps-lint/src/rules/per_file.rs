//! Rules that inspect one file at a time.

use super::{
    ADDR_OPACITY, CORE_CRATE, DOC_CRATES, FAULT_PATH_CRATES, FAULT_PATH_FILES, GUARDED_ENUMS,
    NO_MAGIC_PAGE_SIZE, NO_WILDCARD_ENUM_MATCH, PANIC_FREE, PUB_ITEM_DOCS, RAW_ARTIFACT_IO,
};
use crate::diag::Diagnostic;
use crate::file::{FileCtx, Sig};
use crate::lexer::{int_value, TokenKind};
use std::collections::BTreeSet;

/// Page-size byte values that must come from `tps-core` constants.
// tps-lint::allow(no-magic-page-size, reason = "the lint's own definition of the banned values")
const PAGE_SIZE_VALUES: [u128; 3] = [4096, 2 << 20, 1 << 30];
/// Shift amounts in `1 << n` that spell a page size (4 KB / 2 MB / 1 GB).
const PAGE_SIZE_SHIFTS: [u128; 3] = [12, 21, 30];

/// Macros that abort instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Assertion macros additionally banned in [`FAULT_PATH_FILES`]: a failed
/// assertion on the tenant step path aborts the machine that containment
/// promises will outlive the faulting tenant.
const ASSERT_MACROS: [&str; 6] = [
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// [`PANIC_FREE`]: no `unwrap`/`expect` calls or aborting macros in
/// non-test code of the fault-path crates, nor in the named tenant
/// event-path files (where assertions are banned too).
pub fn panic_free(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let fault_path_file = FAULT_PATH_FILES.contains(&ctx.rel_path);
    if !fault_path_file && !FAULT_PATH_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.is_test(i) || ctx.sig[i].kind != TokenKind::Ident {
            continue;
        }
        let t = ctx.sig[i].text;
        let method_call = matches!(t, "unwrap" | "expect")
            && i > 0
            && ctx.text(i - 1) == "."
            && ctx.text(i + 1) == "(";
        let abort_macro = PANIC_MACROS.contains(&t) && ctx.text(i + 1) == "!";
        let assert_macro = fault_path_file && ASSERT_MACROS.contains(&t) && ctx.text(i + 1) == "!";
        if method_call {
            let site = if fault_path_file {
                format!("{} is on the tenant event path", ctx.rel_path)
            } else {
                format!(
                    "{} is on the mmap/fault/munmap/compact path",
                    ctx.crate_name
                )
            };
            out.push(ctx.diag(
                i,
                PANIC_FREE,
                format!(
                    "`.{t}()` on the fault path ({site}); \
                     return a TpsError (e.g. TpsError::invariant) instead"
                ),
            ));
        } else if abort_macro {
            out.push(ctx.diag(
                i,
                PANIC_FREE,
                format!(
                    "`{t}!` aborts the simulation; fault-path crates must surface a TpsError instead"
                ),
            ));
        } else if assert_macro {
            out.push(ctx.diag(
                i,
                PANIC_FREE,
                format!(
                    "`{t}!` on the tenant event path aborts the whole machine on a single \
                     tenant's misbehavior; surface a TenantFault / TpsError so the kill \
                     path can contain it"
                ),
            ));
        }
    }
}

/// [`NO_MAGIC_PAGE_SIZE`]: page-size byte values must be spelled via
/// `tps_core` constants everywhere outside `tps-core`, tests included.
pub fn magic_page_size(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == CORE_CRATE {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.sig[i].kind != TokenKind::Int {
            continue;
        }
        let Some(v) = int_value(ctx.sig[i].text) else {
            continue;
        };
        if PAGE_SIZE_VALUES.contains(&v) {
            out.push(ctx.diag(
                i,
                NO_MAGIC_PAGE_SIZE,
                format!(
                    "bare page-size literal `{}`; use tps_core::BASE_PAGE_SIZE / PageSize / \
                     PageOrder constants so a page-size change cannot silently miss this site",
                    ctx.sig[i].text
                ),
            ));
            continue;
        }
        if v == 1 && ctx.text(i + 1) == "<<" && ctx.sig.len() > i + 2 {
            if let Some(shift) = int_value(ctx.text(i + 2)) {
                if PAGE_SIZE_SHIFTS.contains(&shift) {
                    out.push(ctx.diag(
                        i,
                        NO_MAGIC_PAGE_SIZE,
                        format!(
                            "`1 << {shift}` spells a page size; use tps_core::BASE_PAGE_SIZE / \
                             PageSize::from_order instead"
                        ),
                    ));
                }
            }
        }
    }
}

/// [`ADDR_OPACITY`]: outside `tps-core`, address newtypes may only be used
/// through their methods — no `.0` projection, no tuple construction.
pub fn addr_opacity(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.crate_name == CORE_CRATE {
        return;
    }
    let newtypes = ["VirtAddr", "PhysAddr"];
    // Pass 1: identifiers annotated `name: VirtAddr` (params, lets, fields).
    let mut bound: BTreeSet<&str> = BTreeSet::new();
    for i in 2..ctx.sig.len() {
        if newtypes.contains(&ctx.sig[i].text)
            && ctx.text(i - 1) == ":"
            && ctx.sig[i - 2].kind == TokenKind::Ident
        {
            bound.insert(ctx.sig[i - 2].text);
        }
    }
    for i in 0..ctx.sig.len() {
        let t = ctx.sig[i].text;
        // Tuple construction `VirtAddr(...)` — bypasses `::new` masking.
        if newtypes.contains(&t) && ctx.sig[i].kind == TokenKind::Ident && ctx.text(i + 1) == "(" {
            out.push(ctx.diag(
                i,
                ADDR_OPACITY,
                format!(
                    "tuple construction of `{t}` bypasses `{t}::new` width masking; use `::new`"
                ),
            ));
            continue;
        }
        // Projection `x.0` on a known address binding, or directly on a
        // `VirtAddr::new(...)` call.
        if t == "." && ctx.text(i + 1) == "0" && i > 0 {
            let prev = &ctx.sig[i - 1];
            let mut flag = false;
            if prev.kind == TokenKind::Ident && bound.contains(prev.text) {
                flag = true;
            } else if prev.text == ")" {
                if let Some(open) = matching_backward(&ctx.sig, i - 1) {
                    if open >= 3
                        && ctx.text(open - 1) == "new"
                        && ctx.text(open - 2) == "::"
                        && newtypes.contains(&ctx.text(open - 3))
                    {
                        flag = true;
                    }
                }
            }
            if flag {
                out.push(
                    ctx.diag(
                        i + 1,
                        ADDR_OPACITY,
                        "`.0` projects through an address newtype; use `.value()` so the \
                     width-masking invariant stays inside tps-core"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// Index of the `(` matching the `)` at `close_idx`, scanning backward.
fn matching_backward(sig: &[Sig<'_>], close_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in (0..=close_idx).rev() {
        match sig[j].text {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// [`NO_WILDCARD_ENUM_MATCH`]: a `match` whose arm patterns name one of the
/// guarded enums must stay exhaustive — no bare `_` arm, so that adding a
/// variant is a compile-time event at every consumer.
pub fn wildcard_enum_match(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.sig.len() {
        if ctx.sig[i].text != "match" || ctx.sig[i].kind != TokenKind::Ident || ctx.is_test(i) {
            continue;
        }
        let Some(block_open) = match_block_open(&ctx.sig, i) else {
            continue;
        };
        let Some(block_close) = matching_forward(&ctx.sig, block_open, "{", "}") else {
            continue;
        };
        let arms = parse_arms(&ctx.sig, block_open + 1, block_close);
        let guarded = arms.iter().any(|a| {
            pattern_slice(ctx, a)
                .windows(2)
                .any(|w| GUARDED_ENUMS.contains(&w[0].text) && w[1].text == "::")
        });
        if !guarded {
            continue;
        }
        for a in &arms {
            let pat = pattern_slice(ctx, a);
            if pat.len() == 1 && pat[0].text == "_" {
                out.push(
                    ctx.diag(
                        a.pat_start,
                        NO_WILDCARD_ENUM_MATCH,
                        "wildcard arm in a match over a core TPS enum; enumerate the variants so \
                     adding one forces every consumer to be revisited"
                            .to_string(),
                    ),
                );
            }
        }
    }
}

/// One parsed match arm: token index range of its pattern (inclusive start,
/// exclusive end at the `=>`), with any `if` guard excluded.
struct Arm {
    pat_start: usize,
    pat_end: usize,
}

fn pattern_slice<'c, 'a>(ctx: &'c FileCtx<'a>, a: &Arm) -> &'c [Sig<'a>] {
    &ctx.sig[a.pat_start..a.pat_end]
}

/// The `{` opening the match body: first `{` after the scrutinee at zero
/// paren/bracket depth (Rust forbids bare struct literals in scrutinees).
fn match_block_open(sig: &[Sig<'_>], match_idx: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (j, s) in sig.iter().enumerate().skip(match_idx + 1) {
        match s.text {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            // A bare block in the scrutinee would fool this scan, but Rust
            // requires parentheses around struct literals and closures there.
            "{" if paren == 0 && bracket == 0 => return Some(j),
            ";" if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

fn matching_forward(sig: &[Sig<'_>], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, s) in sig.iter().enumerate().skip(open_idx) {
        if s.text == open {
            depth += 1;
        } else if s.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Splits the token range of a match body into arms.
fn parse_arms(sig: &[Sig<'_>], start: usize, end: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut j = start;
    while j < end {
        // Skip attributes on the arm.
        while j + 1 < end && sig[j].text == "#" && sig[j + 1].text == "[" {
            match matching_forward(sig, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => return arms,
            }
        }
        if j >= end {
            break;
        }
        // Pattern runs until `=>` at this nesting level; an `if` guard ends
        // the pattern proper.
        let pat_start = j;
        let mut pat_end = None;
        let mut depth = 0i32;
        let mut k = j;
        while k < end {
            match sig[k].text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "if" if depth == 0 && pat_end.is_none() => pat_end = Some(k),
                "=>" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        if k >= end {
            break; // no arrow: not an arm (e.g. empty match)
        }
        arms.push(Arm {
            pat_start,
            pat_end: pat_end.unwrap_or(k),
        });
        // Skip the body: a braced block, or tokens until a comma at depth 0.
        let mut b = k + 1;
        if b < end && sig[b].text == "{" {
            match matching_forward(sig, b, "{", "}") {
                Some(c) => b = c + 1,
                None => return arms,
            }
            if b < end && sig[b].text == "," {
                b += 1;
            }
        } else {
            let mut depth = 0i32;
            while b < end {
                match sig[b].text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        b += 1;
                        break;
                    }
                    _ => {}
                }
                b += 1;
            }
        }
        j = b;
    }
    arms
}

/// The experiment-engine directory whose writes must use `experiment::io`.
const EXPERIMENT_DIR: &str = "crates/tps-sim/src/experiment/";
/// `std::fs` free functions that write or replace files.
const FS_WRITE_FNS: [&str; 2] = ["write", "rename"];

/// [`RAW_ARTIFACT_IO`]: inside `tps-sim`'s experiment engine, file output
/// must flow through the `experiment::io` sink layer (`ArtifactSink` /
/// `write_atomic`) so crash-safety and fault injection cover every byte
/// that reaches disk. Direct `File::create` / `OpenOptions` /
/// `fs::write` / `fs::rename` calls are flagged everywhere but `io.rs`
/// itself (the one place allowed to touch the real filesystem).
pub fn raw_artifact_io(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.rel_path.starts_with(EXPERIMENT_DIR) || ctx.rel_path.ends_with("/io.rs") {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.is_test(i) || ctx.sig[i].kind != TokenKind::Ident {
            continue;
        }
        match ctx.sig[i].text {
            "OpenOptions" => out.push(
                ctx.diag(
                    i,
                    RAW_ARTIFACT_IO,
                    "`OpenOptions` bypasses the experiment::io sink layer; open artifacts via \
                 ArtifactIo so crash injection and fsync discipline cover this write"
                        .to_string(),
                ),
            ),
            "File"
                if ctx.text(i + 1) == "::" && matches!(ctx.text(i + 2), "create" | "options") =>
            {
                out.push(ctx.diag(
                    i,
                    RAW_ARTIFACT_IO,
                    format!(
                        "`File::{}` bypasses the experiment::io sink layer; create artifacts via \
                         ArtifactIo::create / write_atomic",
                        ctx.text(i + 2)
                    ),
                ));
            }
            "fs" if ctx.text(i + 1) == "::" && FS_WRITE_FNS.contains(&ctx.text(i + 2)) => {
                out.push(ctx.diag(
                    i,
                    RAW_ARTIFACT_IO,
                    format!(
                        "`fs::{}` bypasses the experiment::io sink layer; write artifacts via \
                         write_atomic (or an ArtifactSink) so publication stays atomic and faultable",
                        ctx.text(i + 2)
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// Item keywords that may follow `pub` in an item that needs docs.
const ITEM_KWS: [&str; 12] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe", "async",
    "extern",
];

/// [`PUB_ITEM_DOCS`]: exported items of the API crates must carry a doc
/// comment (or a `#[doc = ...]` attribute).
pub fn pub_item_docs(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !DOC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for i in 0..ctx.sig.len() {
        if ctx.sig[i].text != "pub" || ctx.sig[i].kind != TokenKind::Ident || ctx.is_test(i) {
            continue;
        }
        let next = ctx.text(i + 1);
        if next == "(" {
            continue; // pub(crate) / pub(super): not exported
        }
        if !ITEM_KWS.contains(&next) {
            continue; // struct fields, `pub use` re-exports, tuple fields
        }
        if next == "mod" && ctx.text(i + 3) == ";" {
            // Out-of-line module: its docs live as `//!` inner docs in the
            // module's own file, which rustc's missing_docs accepts.
            continue;
        }
        if !has_doc(ctx, i) {
            let item_kind = item_kind_after(ctx, i);
            out.push(ctx.diag(
                i,
                PUB_ITEM_DOCS,
                format!(
                    "exported {item_kind} has no doc comment; document every public item of {}",
                    ctx.crate_name
                ),
            ));
        }
    }
}

/// The first real item keyword after `pub` (skipping qualifiers).
fn item_kind_after(ctx: &FileCtx<'_>, pub_idx: usize) -> &'static str {
    for j in pub_idx + 1..(pub_idx + 5).min(ctx.sig.len()) {
        match ctx.sig[j].text {
            "fn" => return "fn",
            "struct" => return "struct",
            "enum" => return "enum",
            "trait" => return "trait",
            "type" => return "type alias",
            "const" if ctx.text(j + 1) != "fn" => return "const",
            "static" => return "static",
            "mod" => return "module",
            "union" => return "union",
            _ => {}
        }
    }
    "item"
}

/// True if the item introduced by `sig[pub_idx]` is documented: walking
/// backward over its attributes, a doc comment (or `#[doc...]` attribute)
/// is found immediately before the item.
fn has_doc(ctx: &FileCtx<'_>, pub_idx: usize) -> bool {
    let mut j = ctx.sig[pub_idx].full_idx;
    loop {
        if j == 0 {
            return false;
        }
        let prev = &ctx.tokens[j - 1];
        match prev.kind {
            TokenKind::DocComment => return true,
            TokenKind::LineComment | TokenKind::BlockComment => {
                j -= 1; // plain comments are transparent
            }
            _ => {
                // An attribute ends in `]`; skip it (checking for #[doc ...]).
                if prev.text(ctx.src) != "]" {
                    return false;
                }
                let mut depth = 0i32;
                let mut k = j - 1;
                loop {
                    let text = ctx.tokens[k].text(ctx.src);
                    if text == "]" {
                        depth += 1;
                    } else if text == "[" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return false;
                    }
                    k -= 1;
                }
                // `#[doc = "..."]` counts as documentation.
                if ctx.tokens[k + 1..j - 1]
                    .iter()
                    .next()
                    .map(|t| t.text(ctx.src) == "doc")
                    .unwrap_or(false)
                {
                    return true;
                }
                // Step over `#` (outer) or `!#`-style inner attribute intro.
                if k == 0 {
                    return false;
                }
                j = k;
                if ctx.tokens[j - 1].text(ctx.src) == "#" {
                    j -= 1;
                } else if ctx.tokens[j - 1].text(ctx.src) == "!"
                    && j >= 2
                    && ctx.tokens[j - 2].text(ctx.src) == "#"
                {
                    j -= 2;
                }
            }
        }
    }
}
