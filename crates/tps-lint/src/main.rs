//! CLI driver for `tps-lint`.
//!
//! ```text
//! cargo run -p tps-lint -- --workspace [--format json] [--write-baseline]
//!                          [--root DIR] [--baseline FILE] [--no-baseline]
//! cargo run -p tps-lint -- --explain <rule>
//! ```
//!
//! Exit codes: 0 clean (or within the frozen baseline), 1 violations,
//! 2 usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tps_lint::baseline::Baseline;
use tps_lint::{diag, rules};

const USAGE: &str = "\
tps-lint: static analysis for the TPS workspace

USAGE:
    tps-lint --workspace [OPTIONS]
    tps-lint --explain <rule>

OPTIONS:
    --workspace        lint every crate in the enclosing workspace
    --format FMT       output format: text (default) or json
    --json             shorthand for --format json
    --explain RULE     print what a rule enforces and why, then exit
    --write-baseline   freeze the current violations into the ratchet file
    --no-baseline      ignore the ratchet file (report every violation)
    --root DIR         workspace root (default: nearest [workspace] upward)
    --baseline FILE    ratchet file (default: <root>/lint-baseline.toml)
    --help             this text
";

struct Options {
    json: bool,
    explain: Option<String>,
    write_baseline: bool,
    no_baseline: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        explain: None,
        write_baseline: false,
        no_baseline: false,
        root: None,
        baseline: None,
    };
    let mut workspace = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => opts.json = true,
            "--format" => {
                let v = args.next().ok_or("--format needs `text` or `json`")?;
                match v.as_str() {
                    "json" => opts.json = true,
                    "text" => opts.json = false,
                    other => return Err(format!("unknown format `{other}` (text or json)")),
                }
            }
            "--explain" => {
                let v = args.next().ok_or("--explain needs a rule name")?;
                opts.explain = Some(v);
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !workspace && opts.explain.is_none() {
        return Err("pass --workspace or --explain <rule>".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(rule) = &opts.explain {
        return match rules::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "error: unknown rule `{rule}` (known rules: {})",
                    rules::RULES.join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let root = match opts.root.clone().or_else(|| {
        env::current_dir()
            .ok()
            .and_then(|d| tps_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no enclosing [workspace] found; pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match tps_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    if opts.write_baseline {
        let text = report.to_baseline().serialize();
        if let Err(e) = fs::write(&baseline_path, text) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "tps-lint: froze {} violation(s) into {}",
            report.diagnostics.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        Baseline::new()
    } else if baseline_path.is_file() {
        match fs::read_to_string(&baseline_path).map_err(|e| e.to_string()) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "error: corrupt ratchet file {}: {e}",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::new()
    };

    let (over, within) = report.against(&baseline);
    let failed = !over.is_empty();

    if opts.json {
        print!("{}", diag::to_json(&over, within.len(), failed));
    } else {
        for d in &over {
            println!("{d}");
        }
        if failed {
            eprintln!(
                "tps-lint: {} violation(s) above the frozen baseline ({} grandfathered)",
                over.len(),
                within.len()
            );
        } else {
            eprintln!(
                "tps-lint: clean ({} grandfathered violation(s) within the baseline)",
                within.len()
            );
        }
        // Nudge when the ratchet can be tightened.
        let counts = report.counts();
        for (rule, path, budget) in baseline.iter() {
            let now = counts
                .iter()
                .find(|((r, p), _)| *r == rule && *p == path)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            if now < budget {
                eprintln!(
                    "tps-lint: note: {rule} in {path} is below its frozen budget \
                     ({now} < {budget}); tighten with --write-baseline"
                );
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
