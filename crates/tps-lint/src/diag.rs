//! Diagnostics and their human-readable / JSON renderings.

use std::fmt;

/// One lint finding, anchored to a file, line and column.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// The rule that fired (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders diagnostics as a machine-readable JSON document.
///
/// `grandfathered` is the number of violations absorbed by the frozen
/// ratchet baseline — CI consumers need it to distinguish "clean" from
/// "clean because the baseline still carries debt".
pub fn to_json(diags: &[Diagnostic], grandfathered: usize, failed: bool) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("    {\"path\": \"");
        json_escape(&d.path, &mut out);
        out.push_str(&format!(
            "\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"",
            d.line, d.col, d.rule
        ));
        json_escape(&d.message, &mut out);
        out.push_str("\"}");
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "  ],\n  \"total\": {},\n  \"grandfathered\": {},\n  \"failed\": {}\n}}\n",
        diags.len(),
        grandfathered,
        failed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_clickable_span() {
        let d = Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            rule: "no-magic-page-size",
            message: "bare literal".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/x/src/a.rs:3:9: [no-magic-page-size] bare literal"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic {
            path: "a\"b".into(),
            line: 1,
            col: 1,
            rule: "pub-item-docs",
            message: "tab\there\nnewline".into(),
        };
        let j = to_json(&[d], 4, true);
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("tab\\there\\nnewline"));
        assert!(j.contains("\"failed\": true"));
        assert!(j.contains("\"total\": 1"));
        assert!(j.contains("\"grandfathered\": 4"));
    }

    #[test]
    fn empty_json_document_is_well_formed() {
        let j = to_json(&[], 0, false);
        assert!(j.contains("\"diagnostics\": [\n  ]"));
        assert!(j.contains("\"failed\": false"));
    }
}
