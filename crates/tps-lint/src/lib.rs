//! `tps-lint`: workspace-specific static analysis for the TPS reproduction.
//!
//! PR 1 proved the OS fault paths panic-free *dynamically* (fault-injection
//! campaigns plus a cross-layer auditor). This crate turns those invariants
//! into *static* law: a hand-rolled Rust lexer ([`lexer`]), a per-file
//! token-stream rule engine and a whole-workspace cross-file pass
//! ([`rules`]), inline suppression with mandatory reasons, and a ratchet
//! file ([`baseline`]) that freezes pre-existing violations so they can
//! only shrink.
//!
//! The workspace pass is two-phase: pass 1 builds a conservative symbol
//! index ([`symbol_index`] — definitions, `use` resolution, type bindings,
//! struct fields, fn returns, and a call graph), pass 2 runs the
//! determinism rule family ([`rules::determinism`]) over it to statically
//! enforce the byte-identical-report contract the experiment engine
//! guarantees dynamically.
//!
//! Std-only by construction — the workspace has no registry access (the
//! same constraint that produced the proptest/criterion shims).
//!
//! Run it as a tier-1 gate:
//!
//! ```text
//! cargo run -p tps-lint -- --workspace
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod diag;
pub mod file;
pub mod hot_paths;
pub mod lexer;
pub mod rules;
pub mod symbol_index;

use baseline::Baseline;
use diag::Diagnostic;
use file::{FileCtx, SourceFile};
use hot_paths::HotPaths;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The whole-workspace lint outcome, before baseline filtering.
pub struct LintReport {
    /// All unsuppressed diagnostics, sorted by path/line/col.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Violation counts per `(rule, path)`.
    pub fn counts(&self) -> BTreeMap<(&'static str, &str), usize> {
        let mut counts: BTreeMap<(&'static str, &str), usize> = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry((d.rule, d.path.as_str())).or_insert(0) += 1;
        }
        counts
    }

    /// Splits diagnostics into (over-budget, within-budget) against a
    /// baseline. A `(rule, file)` group over its frozen budget reports
    /// *all* of its diagnostics, so the offender is always in the list.
    pub fn against(&self, base: &Baseline) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let counts = self.counts();
        let mut over = Vec::new();
        let mut within = Vec::new();
        for d in &self.diagnostics {
            let n = counts[&(d.rule, d.path.as_str())];
            if n > base.budget(d.rule, &d.path) {
                over.push(d.clone());
            } else {
                within.push(d.clone());
            }
        }
        (over, within)
    }

    /// A baseline freezing exactly the current violations.
    pub fn to_baseline(&self) -> Baseline {
        let mut b = Baseline::new();
        for ((rule, path), n) in self.counts() {
            b.set(rule, path, n);
        }
        b
    }
}

/// Lints a set of in-memory files: per-file rules, cross-file rules and
/// suppression filtering. This is the core the CLI and the fixture tests
/// share; the hot-path contract is the committed builtin.
pub fn lint_files(files: &[SourceFile]) -> LintReport {
    lint_files_with(files, &HotPaths::builtin())
}

/// [`lint_files`] with an explicit hot-path contract.
pub fn lint_files_with(files: &[SourceFile], hot: &HotPaths) -> LintReport {
    let ctxs: Vec<FileCtx<'_>> = files.iter().map(FileCtx::build).collect();
    let index = symbol_index::SymbolIndex::build(&ctxs);
    let mut diags = Vec::new();
    for ctx in &ctxs {
        rules::check_file(ctx, &mut diags);
    }
    rules::check_workspace(&ctxs, &index, hot, &mut diags);
    let mut diagnostics = rules::apply_suppressions(&ctxs, diags);
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    LintReport { diagnostics }
}

/// Lints one in-memory file (per-file rules only) — the fixture-test entry
/// point for single-file rules.
pub fn lint_single(crate_name: &str, rel_path: &str, text: &str) -> Vec<Diagnostic> {
    lint_files(&[SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        text: text.to_string(),
    }])
    .diagnostics
}

/// Walks the workspace at `root` and lints every Rust source file, using
/// `<root>/hot-paths.toml` when present (the compiled-in copy otherwise).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let hot_file = root.join("hot-paths.toml");
    let hot = if hot_file.is_file() {
        HotPaths::parse(&fs::read_to_string(&hot_file)?).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("hot-paths.toml: {e}"))
        })?
    } else {
        HotPaths::builtin()
    };
    Ok(lint_files_with(&collect_files(root)?, &hot))
}

/// Finds the workspace root at or above `start` (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects the workspace's lintable Rust files: the facade package's
/// `src`/`tests`/`examples` plus every crate's `src`/`tests`/`benches`/
/// `examples`. Skips `target/` and fixture corpora.
pub fn collect_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for sub in ["src", "tests", "examples", "benches"] {
        walk(root, &root.join(sub), "tps", &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for crate_dir in entries {
            let crate_name = crate_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown")
                .to_string();
            for sub in ["src", "tests", "examples", "benches"] {
                walk(root, &crate_dir.join(sub), &crate_name, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, crate_name: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // Fixture corpora contain intentionally-bad code; `target` is
            // build output.
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk(root, &path, crate_name, out)?;
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            let rel_path = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel_path,
                crate_name: crate_name.to_string(),
                text,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_file_lint_flags_and_suppresses() {
        let bad = "fn f() { let x = y.unwrap(); }\n";
        let diags = lint_single("tps-os", "crates/tps-os/src/f.rs", bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::PANIC_FREE);
        assert_eq!(diags[0].line, 1);

        let ok = "fn f() { let x = y.unwrap(); } \
                  // tps-lint::allow(panic-free-fault-path, reason = \"test of suppression\")\n";
        assert!(lint_single("tps-os", "crates/tps-os/src/f.rs", ok).is_empty());
    }

    #[test]
    fn non_fault_path_crate_may_unwrap() {
        let src = "fn f() { let x = y.unwrap(); }\n";
        assert!(lint_single("tps-wl", "crates/tps-wl/src/f.rs", src).is_empty());
    }

    #[test]
    fn report_counts_and_baseline_round_trip() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n";
        let report = lint_files(&[SourceFile {
            rel_path: "crates/tps-mem/src/f.rs".into(),
            crate_name: "tps-mem".into(),
            text: src.into(),
        }]);
        assert_eq!(report.diagnostics.len(), 2);
        let base = report.to_baseline();
        assert_eq!(base.budget(rules::PANIC_FREE, "crates/tps-mem/src/f.rs"), 2);
        let (over, within) = report.against(&base);
        assert!(over.is_empty());
        assert_eq!(within.len(), 2);
        let (over, _) = report.against(&Baseline::new());
        assert_eq!(over.len(), 2);
    }
}
