//! A small hand-rolled Rust lexer.
//!
//! Produces a flat token stream with byte spans and line/column positions.
//! It understands exactly enough of the language for reliable token-level
//! linting: line and block comments (including nesting and doc forms),
//! cooked and raw strings (including byte and raw-byte forms), character
//! literals vs. lifetimes, raw identifiers, and numeric literals with
//! prefixes, underscores, exponents and type suffixes. Everything else is
//! punctuation, with the common multi-character operators fused so rules
//! can match `::`, `=>`, `+=`, `<<` and friends as single tokens.
//!
//! The lexer never fails: malformed input degrades to single-byte
//! punctuation tokens, which is the right behavior for a linter that must
//! not crash on the code it is judging.

/// The coarse classification of one token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// Integer literal (any base, with underscores and suffix).
    Int,
    /// Floating-point literal.
    Float,
    /// Cooked string or byte-string literal.
    Str,
    /// Raw string or raw byte-string literal.
    RawStr,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` (or the loop-label form).
    Lifetime,
    /// Non-doc line comment (`//`).
    LineComment,
    /// Non-doc block comment (`/* */`, nesting handled).
    BlockComment,
    /// Doc comment: `///`, `//!`, `/** */` or `/*! */`.
    DocComment,
    /// Punctuation; multi-character operators are one token.
    Punct,
}

/// One lexed token. The text is recovered by slicing the source with
/// `start..end`.
#[derive(Copy, Clone, Debug)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Three-character operators fused into one `Punct` token.
const OPS3: [&str; 4] = ["<<=", ">>=", "..=", "..."];
/// Two-character operators fused into one `Punct` token.
const OPS2: [&str; 19] = [
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "^=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Whitespace is dropped; comments are
/// kept (rules that care about documentation need them).
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Vec::new();
    while c.pos < c.src.len() {
        let b = c.peek(0);
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let start = c.pos;
        let line = c.line;
        let col = (start - c.line_start + 1) as u32;
        let kind = scan_token(&mut c);
        debug_assert!(c.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: c.pos,
            line,
            col,
        });
    }
    out
}

fn scan_token(c: &mut Cursor<'_>) -> TokenKind {
    let b = c.peek(0);
    if b == b'/' && c.peek(1) == b'/' {
        return scan_line_comment(c);
    }
    if b == b'/' && c.peek(1) == b'*' {
        return scan_block_comment(c);
    }
    if is_ident_start(b) {
        return scan_ident_or_prefixed(c);
    }
    if b.is_ascii_digit() {
        return scan_number(c);
    }
    if b == b'"' {
        scan_cooked_string(c);
        return TokenKind::Str;
    }
    if b == b'\'' {
        return scan_char_or_lifetime(c);
    }
    scan_punct(c);
    TokenKind::Punct
}

fn scan_line_comment(c: &mut Cursor<'_>) -> TokenKind {
    let start = c.pos;
    while c.pos < c.src.len() && c.peek(0) != b'\n' {
        c.bump();
    }
    let text = &c.src[start..c.pos];
    // `///` (but not `////`) and `//!` are doc comments.
    let doc = (text.starts_with(b"///") && !text.starts_with(b"////")) || text.starts_with(b"//!");
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::LineComment
    }
}

fn scan_block_comment(c: &mut Cursor<'_>) -> TokenKind {
    let start = c.pos;
    c.bump_n(2); // consume `/*`
    let mut depth = 1u32;
    while c.pos < c.src.len() && depth > 0 {
        if c.peek(0) == b'/' && c.peek(1) == b'*' {
            depth += 1;
            c.bump_n(2);
        } else if c.peek(0) == b'*' && c.peek(1) == b'/' {
            depth -= 1;
            c.bump_n(2);
        } else {
            c.bump();
        }
    }
    let text = &c.src[start..c.pos];
    let doc = (text.starts_with(b"/**") && !text.starts_with(b"/***") && text.len() > 4)
        || text.starts_with(b"/*!");
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::BlockComment
    }
}

fn scan_ident_run(c: &mut Cursor<'_>) {
    while c.pos < c.src.len() && is_ident_continue(c.peek(0)) {
        c.bump();
    }
}

/// An identifier, or one of the literal prefixes `r` / `b` / `br` / `rb`
/// followed by a string/char opener, or a raw identifier `r#name`.
fn scan_ident_or_prefixed(c: &mut Cursor<'_>) -> TokenKind {
    let start = c.pos;
    scan_ident_run(c);
    let ident = &c.src[start..c.pos];
    let next = c.peek(0);
    match ident {
        b"r" | b"br" | b"rb" => {
            if next == b'"' || next == b'#' {
                // Raw identifier `r#name` (hash followed by an ident start,
                // not a raw-string hash run ending in `"`).
                if ident == b"r" && next == b'#' && is_ident_start(c.peek(1)) && c.peek(1) != b'_' {
                    c.bump(); // `#`
                    scan_ident_run(c);
                    return TokenKind::Ident;
                }
                if scan_raw_string(c) {
                    return TokenKind::RawStr;
                }
            }
            TokenKind::Ident
        }
        b"b" => {
            if next == b'"' {
                scan_cooked_string(c);
                TokenKind::Str
            } else if next == b'\'' {
                c.bump(); // `'`
                scan_char_body(c);
                TokenKind::Char
            } else {
                TokenKind::Ident
            }
        }
        _ => TokenKind::Ident,
    }
}

/// Consumes `#*"..."#*`; returns false (consuming nothing) if the hash run
/// is not actually followed by a quote.
fn scan_raw_string(c: &mut Cursor<'_>) -> bool {
    let mark = c.pos;
    let mut hashes = 0usize;
    while c.peek(0) == b'#' {
        hashes += 1;
        c.bump();
    }
    if c.peek(0) != b'"' {
        c.pos = mark; // plain `r` ident followed by attribute-ish hashes
        return false;
    }
    c.bump(); // opening quote
    'scan: while c.pos < c.src.len() {
        if c.peek(0) == b'"' {
            for k in 0..hashes {
                if c.peek(1 + k) != b'#' {
                    c.bump();
                    continue 'scan;
                }
            }
            c.bump_n(1 + hashes);
            return true;
        }
        c.bump();
    }
    true // unterminated: consume to EOF
}

fn scan_cooked_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while c.pos < c.src.len() {
        match c.peek(0) {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Consumes a char-literal body after the opening quote.
fn scan_char_body(c: &mut Cursor<'_>) {
    if c.peek(0) == b'\\' {
        c.bump_n(2);
        // Escapes like `\u{1F600}` and `\x7f` have a tail before the quote.
        while c.pos < c.src.len() && c.peek(0) != b'\'' {
            c.bump();
        }
    } else if c.pos < c.src.len() {
        c.bump();
    }
    if c.peek(0) == b'\'' {
        c.bump();
    }
}

fn scan_char_or_lifetime(c: &mut Cursor<'_>) -> TokenKind {
    // `'a` / `'static` are lifetimes; `'a'` / `'\n'` are char literals.
    if is_ident_start(c.peek(1)) {
        let mut j = 1;
        while is_ident_continue(c.peek(j)) {
            j += 1;
        }
        if c.peek(j) != b'\'' {
            c.bump(); // `'`
            scan_ident_run(c);
            return TokenKind::Lifetime;
        }
    }
    c.bump(); // `'`
    scan_char_body(c);
    TokenKind::Char
}

fn scan_number(c: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed = c.peek(0) == b'0' && matches!(c.peek(1), b'x' | b'o' | b'b');
    if radix_prefixed {
        c.bump_n(2);
        // Hex digits cover all bases; the suffix run is folded in too.
        while c.pos < c.src.len() && (is_ident_continue(c.peek(0))) {
            c.bump();
        }
        return TokenKind::Int;
    }
    let mut float = false;
    while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
        c.bump();
    }
    if c.peek(0) == b'.' && c.peek(1).is_ascii_digit() {
        float = true;
        c.bump();
        while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
            c.bump();
        }
    }
    if matches!(c.peek(0), b'e' | b'E')
        && (c.peek(1).is_ascii_digit()
            || (matches!(c.peek(1), b'+' | b'-') && c.peek(2).is_ascii_digit()))
    {
        float = true;
        c.bump();
        if matches!(c.peek(0), b'+' | b'-') {
            c.bump();
        }
        while c.peek(0).is_ascii_digit() || c.peek(0) == b'_' {
            c.bump();
        }
    }
    // Type suffix (`u64`, `f32`, ...).
    if is_ident_start(c.peek(0)) {
        let mark = c.pos;
        scan_ident_run(c);
        if !float && c.src[mark..c.pos].starts_with(b"f") {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

fn scan_punct(c: &mut Cursor<'_>) {
    for op in OPS3 {
        if c.starts_with(op) {
            c.bump_n(3);
            return;
        }
    }
    for op in OPS2 {
        if c.starts_with(op) {
            c.bump_n(2);
            return;
        }
    }
    // Consume one full UTF-8 character so we never split a code point.
    let b = c.peek(0);
    let width = if b < 0x80 {
        1
    } else if b >= 0xf0 {
        4
    } else if b >= 0xe0 {
        3
    } else {
        2
    };
    c.bump_n(width.min(c.src.len() - c.pos));
}

/// Parses the numeric value of an `Int` token's text, handling base
/// prefixes, underscores and type suffixes. Returns `None` for floats or
/// unparseable text.
pub fn int_value(text: &str) -> Option<u128> {
    let cleaned: String = text.chars().filter(|&ch| ch != '_').collect();
    let (digits, radix) = if let Some(rest) = cleaned.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = cleaned.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = cleaned.strip_prefix("0b") {
        (rest, 2)
    } else {
        (cleaned.as_str(), 10)
    };
    // Strip a type suffix such as `u64` / `usize` / `i32`.
    let end = digits
        .find(|ch: char| !ch.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn skips_whitespace_and_fuses_operators() {
        let ks = kinds("a :: b => c += 1 << 12");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", "::", "b", "=>", "c", "+=", "1", "<<", "12"]);
        assert_eq!(ks[1].0, TokenKind::Punct);
        assert_eq!(ks[8].0, TokenKind::Int);
    }

    #[test]
    fn line_comment_hides_code() {
        let ks = kinds("let x = 1; // panic!(\"no\") 4096\nlet y;");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("4096")));
        assert!(!ks.iter().any(|(k, t)| *k == TokenKind::Int && t == "4096"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokenKind::BlockComment);
        assert!(ks[1].1.contains("inner"));
        assert_eq!(ks[2].1, "b");
    }

    #[test]
    fn doc_comments_are_classified() {
        let ks = kinds("/// doc\n//! inner doc\n//// not doc\n// plain\n/** block doc */\n/*! inner */\n/* plain */");
        let doc_count = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::DocComment)
            .count();
        assert_eq!(doc_count, 4);
        let plain = ks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
            .count();
        assert_eq!(plain, 3);
    }

    #[test]
    fn double_slash_inside_string_is_not_a_comment() {
        let src = r#"let url = "https://example.com"; let n = 7;"#;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("//example")));
        assert!(
            ks.iter().any(|(_, t)| t == "7"),
            "code after the string is lexed"
        );
        assert!(!ks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "a \" b // c"; x"#;
        let ks = kinds(src);
        let s = ks.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert!(s.1.contains("// c"));
        assert_eq!(ks.last().unwrap().1, "x");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " and // slash"#; done"####;
        let ks = kinds(src);
        let raw = ks.iter().find(|(k, _)| *k == TokenKind::RawStr).unwrap();
        assert!(raw.1.contains("// slash"));
        assert_eq!(ks.last().unwrap().1, "done");
    }

    #[test]
    fn raw_byte_string_and_plain_byte_string() {
        let ks = kinds(r#"br"raw" b"cooked" b'x'"#);
        assert_eq!(ks[0].0, TokenKind::RawStr);
        assert_eq!(ks[1].0, TokenKind::Str);
        assert_eq!(ks[2].0, TokenKind::Char);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'z'; let nl = '\\n'; }");
        let lifetimes = ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        let chars = ks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#match = 1;");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn numeric_forms_and_values() {
        // tps-lint::allow(no-magic-page-size, reason = "expected value of the literals under test")
        const PAGE: u128 = 4096;
        assert_eq!(int_value("4096"), Some(PAGE));
        assert_eq!(int_value("4_096"), Some(PAGE));
        assert_eq!(int_value("0x1000"), Some(PAGE));
        assert_eq!(int_value("0x1_000u64"), Some(PAGE));
        assert_eq!(int_value("4096usize"), Some(PAGE));
        assert_eq!(int_value("0b1000"), Some(8));
        assert_eq!(int_value("0o17"), Some(15));
        let ks = kinds("1.5 2e3 1_000 0xffu8 3.0f64 1f32");
        let int_count = ks.iter().filter(|(k, _)| *k == TokenKind::Int).count();
        let float_count = ks.iter().filter(|(k, _)| *k == TokenKind::Float).count();
        assert_eq!(int_count, 2); // 1_000 and 0xffu8
        assert_eq!(float_count, 4);
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let ks = kinds("1.max(2)");
        assert_eq!(ks[0].0, TokenKind::Int);
        assert_eq!(ks[1].1, ".");
        assert_eq!(ks[2].1, "max");
    }

    #[test]
    fn lines_and_columns_track_multiline_tokens() {
        let src = "a\n/* two\nlines */ b\n  c";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!((b.line, b.col), (3, 10));
        let c = toks.iter().find(|t| t.text(src) == "c").unwrap();
        assert_eq!((c.line, c.col), (4, 3));
    }

    #[test]
    fn tuple_projection_lexes_as_dot_int() {
        let ks = kinds("pair.0");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["pair", ".", "0"]);
    }

    #[test]
    fn non_ascii_in_comments_and_strings() {
        let src = "// héllo — dash\nlet s = \"héllo\"; x";
        let ks = kinds(src);
        assert_eq!(ks.last().unwrap().1, "x");
    }
}
