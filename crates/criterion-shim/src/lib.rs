//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real criterion
//! crate cannot be fetched. This shim keeps `[[bench]]` targets compiling
//! and producing useful wall-clock numbers: `Criterion`, `bench_function`,
//! `benchmark_group`, and the `criterion_group!` / `criterion_main!`
//! macros. It measures a simple median of timed batches — adequate for
//! relative comparisons, with none of criterion's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    iters_per_batch: u64,
    batches: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times the routine, batching iterations and recording per-iteration
    /// wall-clock samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate the batch size so one batch takes roughly 1 ms.
        let start = Instant::now();
        let mut calib = 0u64;
        while start.elapsed() < Duration::from_millis(1) {
            std::hint::black_box(routine());
            calib += 1;
        }
        self.iters_per_batch = calib.max(1);
        self.samples_ns.clear();
        for _ in 0..self.batches {
            let t = Instant::now();
            for _ in 0..self.iters_per_batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / self.iters_per_batch as f64;
            self.samples_ns.push(ns);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.samples_ns[self.samples_ns.len() / 2]
    }
}

/// Top-level benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim's batches are calibrated
    /// by wall-clock instead.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_per_batch: 1,
            batches: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter", b.median_ns());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.criterion.bench_function(name, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which callers may use directly).
pub use std::hint::black_box;

/// Declares a benchmark group: either `criterion_group!(name, targets...)`
/// or the long form with a `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nothing(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_function("noop2", |b| b.iter(|| 2u64 * 3));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        bench_nothing(&mut c);
    }

    criterion_group!(simple, bench_nothing);
    criterion_group!(
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = bench_nothing,
    );

    #[test]
    fn groups_invoke() {
        simple();
        configured();
    }
}
