//! Pins the on-disk checkpoint journal format against committed fixture
//! files, so a future format change cannot silently reinterpret old
//! journals:
//!
//! * `v1-version.ckpt` — a version-1 header must be refused outright
//!   (resume never guesses at an older format).
//! * `midfile-corrupt.ckpt.in` — a newline-terminated entry whose CRC
//!   does not match is mid-file corruption: refused without salvage,
//!   dropped (and counted) with it.
//! * `torn-tail.ckpt.in` — an unterminated final line is a torn write,
//!   not corruption: resume silently discards it and recomputes the
//!   victim cell.
//!
//! The fixtures carry a `{{FINGERPRINT}}` placeholder because the spec
//! fingerprint hashes the full experiment configuration (which may
//! legitimately evolve); everything else — header fields, entry framing,
//! CRC values — is pinned byte-for-byte.

use std::path::PathBuf;

use tps_core::TpsError;
use tps_sim::{ExperimentMatrix, ExperimentSpec, FailureCause, Mechanism, RunOptions};
use tps_wl::SuiteScale;

/// The fixed two-cell matrix every fixture journal describes.
fn fixture_matrix() -> ExperimentMatrix {
    ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Thp, Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(9)
        .threads(1)
        .build()
        .unwrap()
}

/// Instantiates a fixture template into a scratch journal path.
fn instantiate(matrix: &ExperimentMatrix, name: &str, dest: &str) -> PathBuf {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/checkpoint")
        .join(name);
    let template = std::fs::read_to_string(&src).unwrap();
    let doc = template.replace("{{FINGERPRINT}}", &matrix.spec().fingerprint().to_string());
    let path = std::env::temp_dir().join(dest);
    std::fs::write(&path, doc).unwrap();
    path
}

#[test]
fn version_1_journal_is_refused() {
    let matrix = fixture_matrix();
    let path = instantiate(&matrix, "v1-version.ckpt", "tps-fixture-v1.ckpt");
    let err = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            ..RunOptions::default()
        })
        .unwrap_err();
    assert!(
        err.to_string().contains("version"),
        "refusal names the version: {err}"
    );
    // Salvage does not override a version refusal: the format itself is
    // unknown, there is nothing trustworthy to salvage.
    let err = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            salvage: true,
            ..RunOptions::default()
        })
        .unwrap_err();
    assert!(err.to_string().contains("version"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn midfile_corruption_is_refused_then_salvaged() {
    let matrix = fixture_matrix();
    let path = instantiate(
        &matrix,
        "midfile-corrupt.ckpt.in",
        "tps-fixture-midfile.ckpt",
    );
    let err = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            ..RunOptions::default()
        })
        .unwrap_err();
    assert!(
        matches!(err, TpsError::CheckpointCorrupt { .. }),
        "mid-file damage is the distinct corruption error: {err}"
    );
    assert!(err.to_string().contains("crc mismatch"), "{err}");

    let report = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            salvage: true,
            ..RunOptions::default()
        })
        .unwrap();
    assert_eq!(report.salvage_dropped(), Some(1), "one entry dropped");
    // The surviving entries (both recorded failures) replay as-is; the
    // dropped line duplicated cell 1, so nothing needed recomputing.
    assert_eq!(report.error_count(), 2);
    for cell in report.cells() {
        let failure = cell.result.as_ref().unwrap_err();
        assert_eq!(failure.message, "fixture");
    }
    assert!(report.to_json().contains("\"dropped_entries\": 1"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_tail_is_discarded_and_recomputed() {
    let matrix = fixture_matrix();
    let path = instantiate(&matrix, "torn-tail.ckpt.in", "tps-fixture-torn.ckpt");
    let report = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            ..RunOptions::default()
        })
        .unwrap();
    // A torn tail is crash wreckage, not corruption: no salvage flag
    // needed, nothing dropped, nothing logged.
    assert_eq!(report.salvage_dropped(), None);
    // Cell 0's journaled failure replays; cell 1 (the torn victim) is
    // recomputed for real.
    assert_eq!(report.error_count(), 1);
    let cell0 = &report.cells()[0];
    let failure = cell0.result.as_ref().unwrap_err();
    assert_eq!(failure.cause, FailureCause::Panic);
    assert_eq!(failure.message, "fixture");
    assert!(report.cells()[1].result.is_ok());
    // The journal itself was repaired: the torn fragment is gone and the
    // recomputed cell was appended as a complete, checksummed entry.
    let repaired = std::fs::read_to_string(&path).unwrap();
    assert!(!repaired.contains("{\"seq\":1,\"cr\n"));
    assert!(repaired.ends_with('\n'), "every line is newline-terminated");
    let last = repaired.lines().last().unwrap();
    assert!(last.contains("\"seq\":1") && last.contains("\"cell\":1"));
    std::fs::remove_file(&path).ok();
}
