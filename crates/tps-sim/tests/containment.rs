//! Property tests of tenant fault containment: random kills interleaved
//! into multi-tenant runs must conserve buddy frames, leave the
//! survivors' statistics untouched by the victim's unexecuted tail, and
//! round-trip `Killed` outcomes through the report and journal JSON.

use proptest::prelude::*;
use std::path::PathBuf;
use tps_core::rng::Rng;
use tps_core::TenantFaultCause;
use tps_sim::{
    ExperimentSpec, MachineBuilder, MachineConfig, MachineRunStats, Mechanism, OnOom, RunOptions,
    Scheduler, TenantCount, TenantOutcome, TenantSpec,
};
use tps_wl::{Event, SuiteScale, Workload, WorkloadProfile};

const MIB: u64 = 1 << 20;

/// A tenant replaying a precomputed event script.
struct Scripted {
    name: &'static str,
    events: std::vec::IntoIter<Event>,
}

impl Scripted {
    fn new(name: &'static str, events: Vec<Event>) -> Self {
        Scripted {
            name,
            events: events.into_iter(),
        }
    }
}

impl Workload for Scripted {
    fn profile(&self) -> WorkloadProfile {
        WorkloadProfile::named(self.name)
    }

    fn next_event(&mut self) -> Option<Event> {
        self.events.next()
    }
}

/// A well-behaved script: a few regions, a burst of accesses each.
fn benign_script(seed: u64) -> Vec<Event> {
    let mut rng = Rng::new(seed);
    let regions = 1 + rng.below(3) as u32;
    let mut events = Vec::new();
    for region in 0..regions {
        let bytes = MIB * (1 + rng.below(2));
        events.push(Event::Mmap { region, bytes });
        for _ in 0..64 {
            events.push(Event::Access {
                region,
                offset: rng.below(bytes),
                write: rng.chance(0.4),
            });
        }
    }
    events
}

/// A script that keeps mapping 1 MiB regions past any small cap.
fn greedy_script(seed: u64, regions: u32) -> Vec<Event> {
    let mut rng = Rng::new(seed);
    let mut events = Vec::new();
    for region in 0..regions {
        events.push(Event::Mmap { region, bytes: MIB });
        for _ in 0..24 {
            events.push(Event::Access {
                region,
                offset: rng.below(MIB),
                write: rng.chance(0.5),
            });
        }
    }
    events
}

fn run_pair(survivor_seed: u64, victim_events: Vec<Event>, cap: Option<u64>) -> MachineRunStats {
    let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 * MIB);
    let mut victim = TenantSpec::workload(Scripted::new("victim", victim_events));
    if let Some(cap) = cap {
        victim = victim.memory_cap(cap);
    }
    MachineBuilder::new(config)
        .tenant(TenantSpec::workload(Scripted::new(
            "survivor",
            benign_script(survivor_seed),
        )))
        .tenant(victim)
        .scheduler(Scheduler::RoundRobin)
        .reclaim_on_exit(true)
        .on_oom(OnOom::FailFast)
        .build()
        .expect("two tenants form a valid machine")
        .run()
}

/// Interleaved random kills conserve buddy frames: with reclaim-on-exit,
/// a machine whose capped tenant was killed mid-run still hands every
/// frame back by the time the survivors retire.
fn kill_conserves_frames(
    survivor_seed: u64,
    victim_seed: u64,
    cap_mib: u64,
) -> Result<(), TestCaseError> {
    let config = MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 * MIB);
    let mut machine = MachineBuilder::new(config)
        .tenant(TenantSpec::workload(Scripted::new(
            "survivor",
            benign_script(survivor_seed),
        )))
        .tenant(
            TenantSpec::workload(Scripted::new("victim", greedy_script(victim_seed, 8)))
                .memory_cap(cap_mib * MIB),
        )
        .scheduler(Scheduler::RoundRobin)
        .reclaim_on_exit(true)
        .build()
        .expect("two tenants form a valid machine");
    let stats = machine.run();
    prop_assert_eq!(stats.killed_count(), 1, "the greedy tenant must die");
    machine
        .os()
        .buddy()
        .check_invariants()
        .map_err(TestCaseError::fail)?;
    prop_assert_eq!(
        machine.os().buddy().used_bytes(),
        0,
        "a kill plus reclaim-on-exit retirement must return every frame"
    );
    Ok(())
}

/// Survivor determinism: killing the victim at event `k` must leave the
/// survivor's statistics byte-identical to a run where the victim's
/// stream simply *ends* after its `k` executed events (a cap kill fires
/// before any OS mutation, and reclaim-on-exit retirement performs the
/// same unmap + ASID flush as the kill path).
fn survivors_unchanged(
    survivor_seed: u64,
    victim_seed: u64,
    cap_mib: u64,
) -> Result<(), TestCaseError> {
    let victim_events = greedy_script(victim_seed, 8);
    let killed = run_pair(survivor_seed, victim_events.clone(), Some(cap_mib * MIB));
    let at_event = match killed.outcome(1) {
        TenantOutcome::Killed { cause, at_event } => {
            prop_assert_eq!(cause, TenantFaultCause::CapExceeded);
            at_event
        }
        TenantOutcome::Completed => {
            return Err(TestCaseError::fail("victim was not killed"));
        }
    };
    let truncated: Vec<Event> = victim_events.into_iter().take(at_event as usize).collect();
    let voluntary = run_pair(survivor_seed, truncated, None);
    prop_assert_eq!(voluntary.killed_count(), 0);
    prop_assert_eq!(
        format!("{:?}", killed.per_tenant[0]),
        format!("{:?}", voluntary.per_tenant[0]),
        "the survivor saw a different run"
    );
    Ok(())
}

/// `Killed` outcomes round-trip through the report JSON and the journal:
/// a resumed run replays the kill byte-identically.
fn killed_outcome_round_trips(seed: u64, cap_mib: u64) -> Result<(), TestCaseError> {
    let dir = std::env::temp_dir().join(format!("tps-containment-prop-{seed}-{cap_mib}"));
    std::fs::create_dir_all(&dir).map_err(|e| TestCaseError::fail(e.to_string()))?;
    let path: PathBuf = dir.join("kill.ckpt");
    std::fs::remove_file(&path).ok();
    let matrix = ExperimentSpec::new()
        .bench("gups")
        .mechanisms([Mechanism::Tps])
        .scale(SuiteScale::Test)
        .seed(seed)
        .tenants(TenantCount::new(2).expect("2 tenants is in range"))
        .tenant_cap(1, cap_mib * MIB)
        .threads(1)
        .build()
        .expect("spec is valid");
    let first = matrix
        .run_with(&RunOptions {
            checkpoint: Some(path.clone()),
            ..RunOptions::default()
        })
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    let report = first.to_json();
    prop_assert!(report.contains("\"outcome\": \"killed\""), "{}", report);
    prop_assert!(report.contains("\"cause\": \"cap-exceeded\""), "{}", report);
    let resumed = matrix
        .run_with(&RunOptions {
            resume: Some(path.clone()),
            ..RunOptions::default()
        })
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    prop_assert_eq!(report, resumed.to_json(), "resume changed the kill bytes");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

/// Regression seeds worth keeping pinned (the deterministic proptest
/// shim does not persist failures).
#[test]
fn containment_regression_seeds() {
    kill_conserves_frames(11, 42, 2).unwrap_or_else(|e| panic!("conserve 11/42/2: {e:?}"));
    survivors_unchanged(7, 1001, 3).unwrap_or_else(|e| panic!("survivors 7/1001/3: {e:?}"));
    killed_outcome_round_trips(0xfeed, 1).unwrap_or_else(|e| panic!("roundtrip: {e:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_kills_conserve_buddy_frames(
        survivor_seed in 0u64..100_000,
        victim_seed in 0u64..100_000,
        cap_mib in 1u64..5,
    ) {
        kill_conserves_frames(survivor_seed, victim_seed, cap_mib)?;
    }

    #[test]
    fn survivors_are_unchanged_by_the_victims_unexecuted_tail(
        survivor_seed in 0u64..100_000,
        victim_seed in 0u64..100_000,
        cap_mib in 1u64..5,
    ) {
        survivors_unchanged(survivor_seed, victim_seed, cap_mib)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn killed_outcomes_round_trip_through_report_and_journal(
        seed in 0u64..10_000,
        cap_mib in 1u64..3,
    ) {
        killed_outcome_round_trips(seed, cap_mib)?;
    }
}
