//! The MMU: orchestrates TLB lookups, page walks, faults and fills for one
//! core (shared by both hardware threads under SMT).

use crate::config::MachineConfig;
use crate::nested::NestedWalkModel;
use tps_core::{LeafInfo, PageOrder, PteFlags, TpsError, VirtAddr};
use tps_os::{Os, Shootdown};
use tps_pt::{MmuCaches, Walker};
use tps_tlb::{Asid, L2Hit, TlbHierarchy};

/// Where an access found its translation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessLevel {
    /// Hit in an L1 TLB structure.
    L1,
    /// Hit in the STLB after an L1 miss.
    Stlb,
    /// STLB miss covered by the Range TLB (RMM only).
    Range,
    /// Full miss: a hardware page walk was performed.
    Walk,
}

/// The outcome of translating one access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Where the translation came from.
    pub level: AccessLevel,
    /// Page-table memory references performed (including aborted faulting
    /// walks, alias-PTE extra accesses, and nested amplification).
    pub walk_refs: u64,
    /// True if a completed walk ended on an alias PTE.
    pub alias_extra: bool,
    /// Page faults taken while serving this access.
    pub faults: u32,
    /// True if the fault handler promoted a page while serving this
    /// access.
    pub promoted: bool,
    /// Hardware A/D-bit stores performed.
    pub ad_updates: u64,
}

/// The core's translation machinery.
#[derive(Clone, Debug)]
pub struct Mmu {
    tlb: TlbHierarchy,
    caches: MmuCaches,
    walker: Walker,
    nested: Option<NestedWalkModel>,
    perfect_l1: bool,
    perfect_l2: bool,
    verify: bool,
}

impl Mmu {
    /// Builds the MMU for a machine configuration.
    pub fn new(config: &MachineConfig) -> Self {
        Mmu {
            tlb: TlbHierarchy::new(config.tlb),
            caches: MmuCaches::new(config.mmu_cache),
            walker: Walker::new(config.alias),
            nested: config
                .virtualized
                .then(|| NestedWalkModel::new(config.memory_bytes)),
            perfect_l1: config.perfect_l1,
            perfect_l2: config.perfect_l2,
            verify: config.verify_translations,
        }
    }

    /// The TLB hierarchy (inspection).
    pub fn tlb(&self) -> &TlbHierarchy {
        &self.tlb
    }

    /// MMU-cache hit counters (PDE, PDPTE, PML4E).
    pub fn mmu_cache_hits(&self) -> (u64, u64, u64) {
        self.caches.hit_counts()
    }

    /// Installs (or removes) a fault injector on every hardware structure
    /// this MMU owns: the page walker (walk-step restarts), the MMU
    /// page-structure caches (dropped fills), and the TLB hierarchy
    /// (dropped fills, abandoned evictions, forced STLB probe misses).
    pub fn set_fault_injector(&mut self, injector: Option<tps_core::InjectorHandle>) {
        self.walker.set_fault_injector(injector.clone());
        self.caches.set_fault_injector(injector.clone());
        self.tlb.set_fault_injector(injector);
    }

    /// Degradation counters from injected hardware faults: walk restarts,
    /// dropped MMU-cache fills, and the TLB hierarchy's fault stats.
    pub fn hw_fault_counters(&self) -> (u64, u64, tps_tlb::TlbFaultStats) {
        (
            self.walker.walk_restarts(),
            self.caches.fill_drops(),
            self.tlb.fault_stats(),
        )
    }

    /// Flushes the paging-structure caches only (page merges free
    /// page-table nodes but leave TLB entries valid — paper §III-C2).
    pub fn flush_structure_caches(&mut self) {
        self.caches.invalidate_all();
    }

    /// Drops every TLB entry tagged with `asid` — the hardware side of a
    /// tenant exiting: its dead translations stop occupying shared TLB
    /// capacity, so surviving tenants immediately gain reach (the
    /// capacity-release half of multi-tenant cross-talk).
    pub fn retire_asid(&mut self, asid: Asid) {
        self.tlb.invalidate_asid(asid);
    }

    /// Applies OS-requested TLB shootdowns (munmap, compaction).
    pub fn apply_shootdowns(&mut self, shootdowns: &[Shootdown]) {
        for sd in shootdowns {
            self.tlb.invalidate_page(sd.asid, sd.va, sd.order);
        }
        if !shootdowns.is_empty() {
            // INVLPG also flushes paging-structure caches.
            self.caches.invalidate_all();
        }
    }

    /// Makes sure `va` is mapped, faulting as needed. Returns the covering
    /// leaf, the number of faults taken, and whether a promotion happened.
    fn ensure_mapped(
        &mut self,
        os: &mut Os,
        asid: Asid,
        va: VirtAddr,
        write: bool,
    ) -> Result<(LeafInfo, u32, bool), TpsError> {
        let mut faults = 0u32;
        let mut promoted = false;
        loop {
            if let Some(leaf) = os.page_table(asid).lookup(va) {
                return Ok((leaf, faults, promoted));
            }
            let outcome = os.handle_fault(asid, va, write)?;
            faults += 1;
            promoted |= outcome.promoted;
        }
    }

    /// Translates one access, performing fills, walks, faults and
    /// copy-on-write resolution.
    ///
    /// # Errors
    ///
    /// Propagates the OS fault handler's error when the access cannot be
    /// served — the pool is out of memory, or the address lies outside
    /// every region (segfault). The machine converts these into tenant
    /// faults; they never panic.
    ///
    /// # Panics
    ///
    /// With `verify_translations`, panics if a cached translation
    /// disagrees with the page table (a simulator invariant, not a
    /// tenant-reachable fault).
    pub fn access(
        &mut self,
        os: &mut Os,
        asid: Asid,
        va: VirtAddr,
        write: bool,
    ) -> Result<AccessOutcome, TpsError> {
        let mut agg: Option<AccessOutcome> = None;
        loop {
            let (outcome, writable) = self.access_attempt(os, asid, va, write)?;
            let merged = match agg.take() {
                None => outcome,
                Some(prev) => AccessOutcome {
                    level: prev.level,
                    walk_refs: prev.walk_refs + outcome.walk_refs,
                    alias_extra: prev.alias_extra | outcome.alias_extra,
                    faults: prev.faults + outcome.faults,
                    promoted: prev.promoted | outcome.promoted,
                    ad_updates: prev.ad_updates + outcome.ad_updates,
                },
            };
            if write && !writable {
                // Protection fault: resolve copy-on-write and retry.
                let shootdowns = os.handle_cow_fault(asid, va)?;
                self.apply_shootdowns(&shootdowns);
                agg = Some(AccessOutcome {
                    faults: merged.faults + 1,
                    ..merged
                });
                continue;
            }
            return Ok(merged);
        }
    }

    /// One translation attempt; returns the outcome plus whether the
    /// mapping used permits writes.
    fn access_attempt(
        &mut self,
        os: &mut Os,
        asid: Asid,
        va: VirtAddr,
        write: bool,
    ) -> Result<(AccessOutcome, bool), TpsError> {
        if self.perfect_l1 {
            let (leaf, faults, promoted) = self.ensure_mapped(os, asid, va, write)?;
            let writable = leaf.flags.contains(PteFlags::WRITABLE);
            return Ok((
                AccessOutcome {
                    level: AccessLevel::L1,
                    walk_refs: 0,
                    alias_extra: false,
                    faults,
                    promoted,
                    ad_updates: 0,
                },
                writable,
            ));
        }

        if let Some(t) = self.tlb.lookup_l1(asid, va) {
            if self.verify {
                self.verify_translation(os, asid, va, t.pfn);
            }
            return Ok((
                AccessOutcome {
                    level: AccessLevel::L1,
                    walk_refs: 0,
                    alias_extra: false,
                    faults: 0,
                    promoted: false,
                    ad_updates: 0,
                },
                t.writable,
            ));
        }

        if self.perfect_l2 {
            let (leaf, faults, promoted) = self.ensure_mapped(os, asid, va, write)?;
            self.tlb.fill_l1(asid, va, &leaf);
            let ad = u64::from(os.hw_mark_accessed(asid, va, write));
            return Ok((
                AccessOutcome {
                    level: AccessLevel::Stlb,
                    walk_refs: 0,
                    alias_extra: false,
                    faults,
                    promoted,
                    ad_updates: ad,
                },
                leaf.flags.contains(PteFlags::WRITABLE),
            ));
        }

        let attempt = match self.tlb.lookup_l2(asid, va) {
            L2Hit::Stlb(t) => {
                // Refill L1 from the (functionally looked-up) leaf: the
                // hardware already has everything it needs in the entry.
                let (leaf, faults, promoted) = self.ensure_mapped(os, asid, va, write)?;
                self.fill_l1(os, asid, va, &leaf);
                if self.verify {
                    self.verify_translation(os, asid, va, t.pfn);
                }
                let ad = u64::from(os.hw_mark_accessed(asid, va, write));
                (
                    AccessOutcome {
                        level: AccessLevel::Stlb,
                        walk_refs: 0,
                        alias_extra: false,
                        faults,
                        promoted,
                        ad_updates: ad,
                    },
                    t.writable,
                )
            }
            L2Hit::Range(t) => {
                // RMM: construct the 4 KB PTE from the range, no walk.
                let leaf = LeafInfo {
                    base: tps_core::PhysAddr::from_pfn(t.pfn),
                    order: PageOrder::P4K,
                    flags: if t.writable {
                        PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::USER
                    } else {
                        PteFlags::PRESENT | PteFlags::USER
                    },
                };
                self.tlb.fill_l1(asid, va.align_down(12), &leaf);
                if self.verify {
                    self.verify_translation(os, asid, va, t.pfn);
                }
                let ad = u64::from(os.hw_mark_accessed(asid, va, write));
                (
                    AccessOutcome {
                        level: AccessLevel::Range,
                        walk_refs: 0,
                        alias_extra: false,
                        faults: 0,
                        promoted: false,
                        ad_updates: ad,
                    },
                    t.writable,
                )
            }
            L2Hit::Miss => self.walk_and_fill(os, asid, va, write)?,
        };
        Ok(attempt)
    }

    /// Page walk, handling faults and promotions, then fill all levels.
    fn walk_and_fill(
        &mut self,
        os: &mut Os,
        asid: Asid,
        va: VirtAddr,
        write: bool,
    ) -> Result<(AccessOutcome, bool), TpsError> {
        let mut walk_refs = 0u64;
        let mut faults = 0u32;
        let mut promoted = false;
        let leaf;
        let alias_extra;
        loop {
            let result =
                self.walker
                    .walk_for(asid, os.page_table(asid), va, Some(&mut self.caches));
            match result {
                Ok(ok) => {
                    walk_refs += self.charge_refs(&ok.refs);
                    leaf = ok.leaf;
                    alias_extra = ok.alias_extra;
                    break;
                }
                Err(fault) => {
                    walk_refs += self.charge_refs(&fault.refs);
                    let outcome = os.handle_fault(asid, va, write)?;
                    faults += 1;
                    if outcome.promoted {
                        promoted = true;
                        // Cross-level promotion may free page-table nodes:
                        // the OS flushes the paging-structure caches.
                        self.caches.invalidate_all();
                    }
                }
            }
        }
        self.tlb.fill_l2(asid, va, &leaf);
        self.fill_l1(os, asid, va, &leaf);
        // RMM refills its Range TLB from the OS range table after the walk
        // (off the critical path).
        if self.tlb.has_range_tlb() {
            if let Some(range) = os.range_for(asid, va) {
                self.tlb.fill_range(range);
            }
        }
        if self.verify {
            let pfn = leaf.base.base_page_number()
                + (va.base_page_number() - va.align_down(leaf.order.shift()).base_page_number());
            self.verify_translation(os, asid, va, pfn);
        }
        let ad = u64::from(os.hw_mark_accessed(asid, va, write));
        Ok((
            AccessOutcome {
                level: AccessLevel::Walk,
                walk_refs,
                alias_extra,
                faults,
                promoted,
                ad_updates: ad,
            },
            leaf.flags.contains(PteFlags::WRITABLE),
        ))
    }

    /// Counts guest refs plus nested (host) amplification when virtualized.
    fn charge_refs(&mut self, refs: &[tps_core::PhysAddr]) -> u64 {
        let mut total = refs.len() as u64;
        if let Some(nested) = &mut self.nested {
            for &pa in refs {
                total += nested.nested_refs(pa);
            }
        }
        total
    }

    /// Installs an L1 entry, giving CoLT its PTE-cache-line probe. The
    /// probe closure is passed as a generic parameter so the per-fill
    /// neighbor checks inline into the run detection.
    fn fill_l1(&mut self, os: &Os, asid: Asid, va: VirtAddr, leaf: &LeafInfo) {
        self.tlb
            .fill_l1_with_probe(asid, va, leaf, |upn: u64, order: PageOrder| {
                os.probe_mapping_order(asid, upn, order)
            });
    }

    fn verify_translation(&self, os: &Os, asid: Asid, va: VirtAddr, pfn: u64) {
        let expect = os
            .page_table(asid)
            .translate(va)
            .expect("verified access must be mapped")
            .base_page_number();
        assert_eq!(
            pfn, expect,
            "translation mismatch at {va} (asid {asid}): tlb {pfn:#x} vs pt {expect:#x}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, Mechanism};
    use tps_core::BASE_PAGE_SIZE;
    use tps_os::{CowPolicy, PolicyConfig, PolicyKind};

    fn setup() -> (Os, Mmu, Asid) {
        let config = MachineConfig::for_mechanism(Mechanism::Tps)
            .with_memory(64 << 20)
            .with_verification();
        let mut os = Os::with_buddy(
            tps_mem::BuddyAllocator::new(64 << 20),
            PolicyConfig::new(PolicyKind::Tps),
        );
        let asid = os.spawn();
        (os, Mmu::new(&config), asid)
    }

    #[test]
    fn cow_write_after_fork_resolves_through_the_tlb() {
        let (mut os, mut mmu, parent) = setup();
        let vma = os.mmap(parent, 64 << 10).unwrap();
        // Parent touches everything (writable), warming its TLB entries.
        for i in 0..16u64 {
            let va = VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE);
            mmu.access(&mut os, parent, va, true).unwrap();
        }
        let (child, shootdowns) = os.fork(parent);
        mmu.apply_shootdowns(&shootdowns);

        // Child reads: hits shared read-only frames; verification checks
        // the translation against the child's page table.
        let out = mmu.access(&mut os, child, vma.base(), false).unwrap();
        assert_eq!(out.faults, 0);

        // Child writes: the CoW fault resolves inside Mmu::access.
        let out = mmu
            .access(&mut os, child, vma.base() + 0x2000, true)
            .unwrap();
        assert!(out.faults >= 1, "CoW fault must be taken");
        assert!(os.stats().cow_faults >= 1);

        // Parent writes after the child diverged: sole-owner re-protect.
        let out = mmu
            .access(&mut os, parent, vma.base() + 0x2000, true)
            .unwrap();
        assert!(out.faults >= 1);
        // Subsequent writes are fault-free in both.
        assert_eq!(
            mmu.access(&mut os, child, vma.base() + 0x2000, true)
                .unwrap()
                .faults,
            0
        );
        assert_eq!(
            mmu.access(&mut os, parent, vma.base() + 0x2000, true)
                .unwrap()
                .faults,
            0
        );
    }

    #[test]
    fn cow_copy_smallest_through_the_tlb() {
        let (mut os, mut mmu, parent) = setup();
        os.set_cow_policy(CowPolicy::CopySmallest);
        let vma = os.mmap(parent, 32 << 10).unwrap();
        for i in 0..8u64 {
            mmu.access(
                &mut os,
                parent,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                true,
            )
            .unwrap();
        }
        let (child, sds) = os.fork(parent);
        mmu.apply_shootdowns(&sds);
        // One child write splits the shared 32K page; every later access
        // still translates correctly (verification is on).
        mmu.access(&mut os, child, vma.base() + 0x3000, true)
            .unwrap();
        for i in 0..8u64 {
            mmu.access(
                &mut os,
                child,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                false,
            )
            .unwrap();
            mmu.access(
                &mut os,
                parent,
                VirtAddr::new(vma.base().value() + i * BASE_PAGE_SIZE),
                false,
            )
            .unwrap();
        }
        assert_eq!(os.stats().cow_bytes_copied, BASE_PAGE_SIZE);
    }
}
