//! The TPS machine simulator.
//!
//! Ties the substrates together into the paper's evaluation vehicle:
//!
//! * [`Machine`] — N tenant address spaces over one shared OS, buddy
//!   allocator and MMU (TLB hierarchy + MMU caches + page walker), built
//!   with [`MachineBuilder`] from [`TenantSpec`]s and interleaved by a
//!   deterministic [`Scheduler`], producing [`MachineRunStats`]
//!   (per-tenant [`RunStats`] plus the machine-wide rollup).
//! * [`Mechanism`] / [`MachineConfig`] — the compared systems (THP
//!   baseline, CoLT, RMM, TPS) over the paper's Table I hardware.
//! * [`run_smt`] — two hardware threads sharing translation hardware
//!   (the degenerate two-tenant round-robin case).
//! * [`NestedWalkModel`] — two-dimensional (virtualized) page walks.
//! * [`TimingModel`] — the paper's `T = T_IDEAL + T_L1DTLBM + T_PW`
//!   execution-time decomposition.
//! * [`experiment`] — the deterministic parallel experiment-matrix
//!   runner ([`ExperimentSpec`] → [`ExperimentMatrix`] →
//!   [`ExperimentReport`]) behind the CLI and the figure harnesses.
//!
//! # Example
//!
//! ```
//! use tps_sim::{MachineBuilder, MachineConfig, Mechanism, TenantSpec, TimingModel};
//! use tps_wl::{Gups, GupsParams};
//!
//! let gups = Gups::new(GupsParams { table_bytes: 8 << 20, updates: 20_000, seed: 1 });
//! let stats = MachineBuilder::new(
//!     MachineConfig::for_mechanism(Mechanism::Tps).with_memory(64 << 20))
//!     .tenant(TenantSpec::workload(gups))
//!     .build()
//!     .unwrap()
//!     .run()
//!     .into_solo();
//! let timing = TimingModel::default().evaluate(&stats, false);
//! assert!(timing.total() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod experiment;
mod machine;
mod mmu;
mod nested;
mod smt;
mod stats;
mod timing;

pub use config::{table1_rows, MachineConfig, Mechanism};
pub use experiment::{
    write_atomic, ArtifactIo, ArtifactSink, CellFailure, CellReport, DerivedMetrics,
    ExperimentCell, ExperimentMatrix, ExperimentReport, ExperimentSpec, FailureCause, FaultyIo,
    FaultyIoConfig, RealIo, RunOptions, TenantCount, CHECKPOINT_SCHEMA, CHECKPOINT_VERSION,
    DEFAULT_EXPERIMENT_SEED, HALT_EXIT_CODE, MAX_TENANTS, REPORT_SCHEMA, REPORT_VERSION,
};
pub use machine::{
    Machine, MachineBuilder, OnOom, RunCounters, Scheduler, TenantScheduler, TenantSpec,
    ThreadCounters,
};
pub use mmu::{AccessLevel, AccessOutcome, Mmu};
pub use nested::NestedWalkModel;
pub use smt::{run_smt, SmtRunStats};
pub use stats::{HwFaultStats, MachineRunStats, RunStats, TenantOutcome};
pub use timing::{TimingBreakdown, TimingModel};
