//! Declarative experiment specification and its expansion into cells.

use crate::config::{MachineConfig, Mechanism};
use crate::machine::OnOom;
use tps_core::rng::SplitMix64;
use tps_core::{FaultPlanConfig, TpsError};
use tps_wl::{profiling_names, suite_names, SuiteScale};

/// Default base seed of an [`ExperimentSpec`] (spells "TPS matrix").
pub const DEFAULT_EXPERIMENT_SEED: u64 = 0x7e57_3a72_1000_0001;

/// Largest tenant count an [`ExperimentSpec`] accepts. Bounds worst-case
/// memory and runtime of a single cell; far above the paper's workloads
/// and the 1,000-tenant smoke test.
// tps-lint::allow(no-magic-page-size, reason = "a process-count cap that coincides with a page-size value; not an address or size")
pub const MAX_TENANTS: u32 = 4096;

/// How many tenant processes each cell's machine runs: the `tenants` axis
/// of an [`ExperimentSpec`]. Always in `1..=`[`MAX_TENANTS`].
///
/// Parses from and displays as the bare number, so CLI flags and JSON
/// round-trip exactly:
///
/// ```
/// use tps_sim::TenantCount;
/// let n: TenantCount = "8".parse().unwrap();
/// assert_eq!(n.get(), 8);
/// assert_eq!(n.to_string(), "8");
/// assert!("0".parse::<TenantCount>().is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantCount(std::num::NonZeroU32);

impl TenantCount {
    /// One tenant: the classic single-process machine.
    pub const SOLO: TenantCount = match std::num::NonZeroU32::new(1) {
        Some(one) => TenantCount(one),
        None => unreachable!(),
    };

    /// Validates a tenant count.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidSpec`] when `n` is zero or exceeds
    /// [`MAX_TENANTS`].
    pub fn new(n: u32) -> Result<Self, TpsError> {
        match std::num::NonZeroU32::new(n) {
            Some(n) if n.get() <= MAX_TENANTS => Ok(TenantCount(n)),
            Some(n) => Err(TpsError::invalid_spec(format!(
                "tenants {n} exceeds the maximum of {MAX_TENANTS}"
            ))),
            None => Err(TpsError::invalid_spec("tenants must be >= 1")),
        }
    }

    /// The count as a plain integer.
    pub fn get(self) -> u32 {
        self.0.get()
    }

    /// Whether this is the single-tenant (classic) machine.
    pub fn is_solo(self) -> bool {
        self.get() == 1
    }
}

impl Default for TenantCount {
    fn default() -> Self {
        TenantCount::SOLO
    }
}

impl std::fmt::Display for TenantCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

impl std::str::FromStr for TenantCount {
    type Err = TpsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n: u32 = s
            .parse()
            .map_err(|_| TpsError::invalid_spec(format!("invalid tenant count {s:?}")))?;
        TenantCount::new(n)
    }
}

/// A declarative (benchmark × mechanism) experiment matrix, built with a
/// fluent API and expanded by [`ExperimentSpec::build`].
///
/// One spec describes everything a paper figure needs: which benchmarks
/// and mechanisms to sweep, the machine configuration shared by every
/// cell, the base seed from which per-cell seeds derive, and how many
/// worker threads may run cells concurrently. Expansion is deterministic:
/// cells are ordered benchmark-major in the order given, and each cell's
/// seed depends only on the base seed and the cell's position, never on
/// thread scheduling.
///
/// # Example
///
/// ```
/// use tps_sim::{ExperimentSpec, Mechanism};
/// use tps_wl::SuiteScale;
///
/// let matrix = ExperimentSpec::new()
///     .bench("gups")
///     .mechanisms([Mechanism::Thp, Mechanism::Tps])
///     .scale(SuiteScale::Test)
///     .build()
///     .unwrap();
/// assert_eq!(matrix.cells().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    benchmarks: Vec<String>,
    mechanisms: Vec<Mechanism>,
    scale: SuiteScale,
    smt: bool,
    tenants: TenantCount,
    on_oom: OnOom,
    tenant_cap: Option<(u32, u64)>,
    virtualized: bool,
    five_level: bool,
    perfect_l1: bool,
    perfect_l2: bool,
    threshold: Option<f64>,
    verify: bool,
    memory_bytes: Option<u64>,
    baseline: Option<Mechanism>,
    seed: u64,
    threads: Option<usize>,
    cell_timeout_ms: Option<u64>,
    retries: u32,
    faults: Option<FaultPlanConfig>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            benchmarks: Vec::new(),
            mechanisms: Vec::new(),
            scale: SuiteScale::Small,
            smt: false,
            tenants: TenantCount::SOLO,
            on_oom: OnOom::FailFast,
            tenant_cap: None,
            virtualized: false,
            five_level: false,
            perfect_l1: false,
            perfect_l2: false,
            threshold: None,
            verify: false,
            memory_bytes: None,
            baseline: None,
            seed: DEFAULT_EXPERIMENT_SEED,
            threads: None,
            cell_timeout_ms: None,
            retries: 0,
            faults: None,
        }
    }
}

impl ExperimentSpec {
    /// An empty spec: no benchmarks or mechanisms selected yet,
    /// `SuiteScale::Small`, native (non-SMT) execution, default seed, and
    /// worker threads = available parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one benchmark (a [`tps_wl::suite_names`] /
    /// [`tps_wl::profiling_names`] member).
    #[must_use]
    pub fn bench(mut self, name: impl Into<String>) -> Self {
        self.benchmarks.push(name.into());
        self
    }

    /// Appends several benchmarks.
    #[must_use]
    pub fn benches<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.benchmarks.extend(names.into_iter().map(Into::into));
        self
    }

    /// Selects the paper's TLB-intensive evaluation suite (Figs. 10–18).
    #[must_use]
    pub fn suite(self) -> Self {
        self.benches(suite_names())
    }

    /// Appends one mechanism.
    #[must_use]
    pub fn mechanism(mut self, mech: Mechanism) -> Self {
        self.mechanisms.push(mech);
        self
    }

    /// Appends several mechanisms.
    #[must_use]
    pub fn mechanisms<I>(mut self, mechs: I) -> Self
    where
        I: IntoIterator<Item = Mechanism>,
    {
        self.mechanisms.extend(mechs);
        self
    }

    /// Selects every mechanism ([`Mechanism::all`]).
    #[must_use]
    pub fn all_mechanisms(self) -> Self {
        let all = Mechanism::all();
        self.mechanisms(all)
    }

    /// Sets the workload scale (default [`SuiteScale::Small`]).
    #[must_use]
    pub fn scale(mut self, scale: SuiteScale) -> Self {
        self.scale = scale;
        self
    }

    /// Runs each cell as two SMT siblings sharing translation hardware.
    #[must_use]
    pub fn smt(mut self, smt: bool) -> Self {
        self.smt = smt;
        self
    }

    /// Runs each cell as `tenants` co-scheduled processes of the same
    /// benchmark, each with its own address space and per-tenant seed,
    /// sharing one machine's physical memory and translation hardware
    /// (default [`TenantCount::SOLO`]). Modeled memory scales with the
    /// tenant count unless [`ExperimentSpec::memory`] overrides it.
    #[must_use]
    pub fn tenants(mut self, tenants: TenantCount) -> Self {
        self.tenants = tenants;
        self
    }

    /// Sets the machine-level OOM policy every cell's machine runs under
    /// (default [`OnOom::FailFast`]).
    #[must_use]
    pub fn on_oom(mut self, policy: OnOom) -> Self {
        self.on_oom = policy;
        self
    }

    /// Caps tenant `slot`'s mapped bytes at `bytes` in every cell —
    /// exceeding it raises a cap fault and the machine kills that tenant.
    /// The knob behind the noisy-neighbor containment gates.
    #[must_use]
    pub fn tenant_cap(mut self, slot: u32, bytes: u64) -> Self {
        self.tenant_cap = Some((slot, bytes));
        self
    }

    /// Models two-dimensional (virtualized) page walks.
    #[must_use]
    pub fn virtualized(mut self, virtualized: bool) -> Self {
        self.virtualized = virtualized;
        self
    }

    /// Models five-level (LA57) paging.
    #[must_use]
    pub fn five_level(mut self, five_level: bool) -> Self {
        self.five_level = five_level;
        self
    }

    /// Models a perfect L1 TLB (Fig. 3 / ideal-speedup columns).
    #[must_use]
    pub fn perfect_l1(mut self, perfect: bool) -> Self {
        self.perfect_l1 = perfect;
        self
    }

    /// Models a perfect L2 (STLB) level (Fig. 3).
    #[must_use]
    pub fn perfect_l2(mut self, perfect: bool) -> Self {
        self.perfect_l2 = perfect;
        self
    }

    /// Overrides the paging policy's utilization threshold, in `(0, 1]`.
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Cross-checks every translation against the page table (slow).
    #[must_use]
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Overrides the modeled physical memory size. Without this, each
    /// cell models [`SuiteScale::recommended_memory`] (doubled under SMT).
    #[must_use]
    pub fn memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Sets the mechanism derived metrics compare against. Without this,
    /// [`Mechanism::Thp`] is used when it is part of the sweep.
    #[must_use]
    pub fn baseline(mut self, mech: Mechanism) -> Self {
        self.baseline = Some(mech);
        self
    }

    /// Sets the base seed from which every cell seed derives.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the worker pool at `threads` (must be ≥ 1). Without this, the
    /// pool uses [`std::thread::available_parallelism`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Gives every cell attempt a wall-clock deadline in milliseconds,
    /// enforced by a watchdog. A timed-out attempt is abandoned and counts
    /// as a failure ([`super::FailureCause::Timeout`]); the cell is retried
    /// through its [`ExperimentSpec::retries`] budget. Off by default.
    ///
    /// Timeouts depend on wall-clock speed, so a spec relying on them is
    /// outside the byte-determinism contract; panic- and fault-caused
    /// failures stay deterministic.
    #[must_use]
    pub fn cell_timeout_ms(mut self, ms: u64) -> Self {
        self.cell_timeout_ms = Some(ms);
        self
    }

    /// Retries a failed (timed-out, panicked, or faulted) cell up to
    /// `retries` more times, each attempt from the cell's same pinned
    /// workload seed. Fault-plan seeds differ per attempt (deterministically
    /// — they derive from the attempt number), so a fault-induced failure
    /// can succeed on retry; a deterministic panic fails every attempt and
    /// degrades to a [`super::CellFailure`]. Default 0.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Injects faults into every cell from this plan configuration. Each
    /// cell (and each retry attempt) runs its own [`tps_core::FaultPlan`]
    /// seeded from `config.seed`, the cell's pinned seed, and the attempt
    /// number, so results stay independent of thread scheduling.
    #[must_use]
    pub fn faults(mut self, config: FaultPlanConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// The selected benchmarks, in sweep order.
    pub fn benchmark_names(&self) -> &[String] {
        &self.benchmarks
    }

    /// The selected mechanisms, in sweep order.
    pub fn mechanism_list(&self) -> &[Mechanism] {
        &self.mechanisms
    }

    /// The workload scale.
    pub fn suite_scale(&self) -> SuiteScale {
        self.scale
    }

    /// Whether cells run as SMT sibling pairs.
    pub fn is_smt(&self) -> bool {
        self.smt
    }

    /// How many tenant processes each cell's machine runs.
    pub fn tenant_count(&self) -> TenantCount {
        self.tenants
    }

    /// The machine-level OOM policy cells run under.
    pub fn oom_policy(&self) -> OnOom {
        self.on_oom
    }

    /// The per-tenant memory cap, if one is configured: `(slot, bytes)`.
    pub fn tenant_cap_config(&self) -> Option<(u32, u64)> {
        self.tenant_cap
    }

    /// The base seed.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The per-attempt cell deadline, if one is configured.
    pub fn cell_timeout(&self) -> Option<std::time::Duration> {
        self.cell_timeout_ms.map(std::time::Duration::from_millis)
    }

    /// Extra attempts granted to a failing cell.
    pub fn retry_limit(&self) -> u32 {
        self.retries
    }

    /// The fault-plan configuration cells run under, if any.
    pub fn fault_config(&self) -> Option<FaultPlanConfig> {
        self.faults
    }

    /// The baseline mechanism derived metrics will use, if any.
    pub fn baseline_mechanism(&self) -> Option<Mechanism> {
        self.baseline.or_else(|| {
            self.mechanisms
                .contains(&Mechanism::Thp)
                .then_some(Mechanism::Thp)
        })
    }

    /// Worker threads the pool will use: the explicit cap, else available
    /// parallelism, never more than the number of cells (and at least 1).
    pub fn resolved_threads(&self, cells: usize) -> usize {
        let requested = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        requested.min(cells).max(1)
    }

    /// The machine configuration one cell under `mech` runs.
    pub fn machine_config(&self, mech: Mechanism) -> MachineConfig {
        let memory = self.memory_bytes.unwrap_or_else(|| {
            let base = self.scale.recommended_memory();
            // Each co-scheduled process (SMT sibling or tenant) brings its
            // own working set, so the modeled memory scales with them.
            if self.smt {
                2 * base
            } else {
                base * u64::from(self.tenants.get())
            }
        });
        let mut config = MachineConfig::for_mechanism(mech).with_memory(memory);
        config.virtualized = self.virtualized;
        config.five_level_paging = self.five_level;
        config.perfect_l1 = self.perfect_l1;
        config.perfect_l2 = self.perfect_l2;
        config.verify_translations = self.verify;
        if let Some(t) = self.threshold {
            config.policy = config.policy.with_threshold(t);
        }
        config
    }

    /// A stable fingerprint over every result-affecting field, written
    /// into checkpoint journals so a resume against a different spec is
    /// rejected instead of splicing mismatched results together. Worker
    /// thread count is deliberately excluded (it never changes results).
    pub fn fingerprint(&self) -> u64 {
        let faults = match self.faults {
            Some(cfg) => format!("{cfg:?}"),
            None => "none".to_string(),
        };
        let desc = format!(
            "benches={:?} mechs={:?} scale={} smt={} virt={} five={} pl1={} pl2={} \
             thr={:?} verify={} mem={:?} base={:?} seed={} retries={} timeout={:?} faults={}",
            self.benchmarks,
            self.mechanisms
                .iter()
                .map(|m| m.label())
                .collect::<Vec<_>>(),
            self.scale.label(),
            self.smt,
            self.virtualized,
            self.five_level,
            self.perfect_l1,
            self.perfect_l2,
            self.threshold.map(f64::to_bits),
            self.verify,
            self.memory_bytes,
            self.baseline.map(Mechanism::label),
            self.seed,
            self.retries,
            self.cell_timeout_ms,
            faults,
        );
        // The tenants axis is appended only when it deviates from the
        // classic single-tenant machine, so every fingerprint recorded
        // before the axis existed stays valid.
        let desc = if self.tenants.is_solo() {
            desc
        } else {
            format!("{desc} tenants={}", self.tenants)
        };
        // Containment knobs follow the same rule: appended only when they
        // deviate from the defaults, so pre-containment fingerprints (and
        // the journals carrying them) stay valid.
        let desc = if self.on_oom == OnOom::FailFast {
            desc
        } else {
            format!("{desc} on_oom={}", self.on_oom)
        };
        let desc = match self.tenant_cap {
            None => desc,
            Some((slot, bytes)) => format!("{desc} cap={slot}:{bytes}"),
        };
        // FNV-1a: tiny, dependency-free, and stable across builds (the
        // std hasher's keys are unspecified between releases).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in desc.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Validates the spec and expands it into runnable cells, ordered
    /// benchmark-major in the order benchmarks and mechanisms were added.
    ///
    /// # Errors
    ///
    /// Returns [`TpsError::InvalidSpec`] when no benchmark or mechanism is
    /// selected, a benchmark name is unknown, a (benchmark, mechanism)
    /// pair repeats, the threshold is outside `(0, 1]`, the explicit
    /// baseline is not part of the sweep, `threads` is zero, or fault
    /// injection is combined with SMT.
    pub fn build(self) -> Result<ExperimentMatrix, TpsError> {
        if self.benchmarks.is_empty() {
            return Err(TpsError::invalid_spec("no benchmarks selected"));
        }
        if self.mechanisms.is_empty() {
            return Err(TpsError::invalid_spec("no mechanisms selected"));
        }
        let known = profiling_names();
        for name in &self.benchmarks {
            if !known.contains(&name.as_str()) {
                return Err(TpsError::invalid_spec(format!(
                    "unknown benchmark {name:?} (known: {})",
                    known.join(", ")
                )));
            }
        }
        if let Some(t) = self.threshold {
            if !(t > 0.0 && t <= 1.0) {
                return Err(TpsError::invalid_spec(format!(
                    "threshold {t} outside (0, 1]"
                )));
            }
        }
        if let Some(base) = self.baseline {
            if !self.mechanisms.contains(&base) {
                return Err(TpsError::invalid_spec(format!(
                    "baseline {base} is not part of the mechanism sweep"
                )));
            }
        }
        if self.threads == Some(0) {
            return Err(TpsError::invalid_spec("threads must be >= 1"));
        }
        if self.faults.is_some() && self.smt {
            return Err(TpsError::invalid_spec(
                "fault injection is not supported under SMT \
                 (sibling threads would share one fault stream)",
            ));
        }
        if self.smt && !self.tenants.is_solo() {
            return Err(TpsError::invalid_spec(
                "smt and tenants > 1 are mutually exclusive \
                 (SMT is the fixed two-tenant shared-core case)",
            ));
        }
        if let Some((slot, bytes)) = self.tenant_cap {
            if slot >= self.tenants.get() {
                return Err(TpsError::invalid_spec(format!(
                    "tenant cap targets slot {slot}, but the machine runs {} tenant{}",
                    self.tenants,
                    if self.tenants.is_solo() { "" } else { "s" }
                )));
            }
            if bytes == 0 {
                return Err(TpsError::invalid_spec("tenant cap must be >= 1 byte"));
            }
            if self.smt {
                return Err(TpsError::invalid_spec(
                    "tenant caps are not supported under SMT",
                ));
            }
        }
        let mut cells = Vec::with_capacity(self.benchmarks.len() * self.mechanisms.len());
        for bench in &self.benchmarks {
            for &mech in &self.mechanisms {
                let index = cells.len() as u64;
                if cells
                    .iter()
                    .any(|c: &ExperimentCell| c.benchmark == *bench && c.mechanism == mech)
                {
                    return Err(TpsError::invalid_spec(format!(
                        "duplicate cell ({bench}, {mech})"
                    )));
                }
                cells.push(ExperimentCell {
                    index,
                    benchmark: bench.clone(),
                    mechanism: mech,
                    seed: cell_seed(self.seed, index),
                });
            }
        }
        Ok(ExperimentMatrix { spec: self, cells })
    }
}

/// The per-cell seed: a SplitMix64 hash of the base seed and the cell's
/// stable position, so reordering threads can never change it.
fn cell_seed(base: u64, index: u64) -> u64 {
    SplitMix64::new(base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// One runnable (benchmark × mechanism) combination of a matrix.
#[derive(Clone, Debug)]
pub struct ExperimentCell {
    pub(crate) index: u64,
    pub(crate) benchmark: String,
    pub(crate) mechanism: Mechanism,
    pub(crate) seed: u64,
}

impl ExperimentCell {
    /// The cell's stable position in spec order.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The benchmark this cell runs.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The mechanism this cell runs under.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// The cell's deterministic workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A validated, expanded experiment matrix, ready to run.
#[derive(Clone, Debug)]
pub struct ExperimentMatrix {
    pub(crate) spec: ExperimentSpec,
    pub(crate) cells: Vec<ExperimentCell>,
}

impl ExperimentMatrix {
    /// The spec this matrix was expanded from.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The cells, in stable spec order.
    pub fn cells(&self) -> &[ExperimentCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix has no cells (impossible for a built matrix,
    /// provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_benchmark_major_and_seeded() {
        let matrix = ExperimentSpec::new()
            .benches(["gups", "xsbench"])
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(7)
            .build()
            .unwrap();
        let order: Vec<(String, Mechanism)> = matrix
            .cells()
            .iter()
            .map(|c| (c.benchmark().to_string(), c.mechanism()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("gups".to_string(), Mechanism::Thp),
                ("gups".to_string(), Mechanism::Tps),
                ("xsbench".to_string(), Mechanism::Thp),
                ("xsbench".to_string(), Mechanism::Tps),
            ]
        );
        // Seeds are pinned by (base seed, index) alone.
        let again = ExperimentSpec::new()
            .benches(["gups", "xsbench"])
            .mechanisms([Mechanism::Thp, Mechanism::Tps])
            .scale(SuiteScale::Test)
            .seed(7)
            .build()
            .unwrap();
        for (a, b) in matrix.cells().iter().zip(again.cells()) {
            assert_eq!(a.seed(), b.seed());
        }
        let seeds: std::collections::BTreeSet<u64> =
            matrix.cells().iter().map(|c| c.seed()).collect();
        assert_eq!(seeds.len(), 4, "cell seeds are distinct");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let unknown = ExperimentSpec::new()
            .bench("nonesuch")
            .mechanism(Mechanism::Tps)
            .build();
        assert!(matches!(unknown, Err(TpsError::InvalidSpec { .. })));
        let empty = ExperimentSpec::new().mechanism(Mechanism::Tps).build();
        assert!(matches!(empty, Err(TpsError::InvalidSpec { .. })));
        let no_mech = ExperimentSpec::new().bench("gups").build();
        assert!(matches!(no_mech, Err(TpsError::InvalidSpec { .. })));
        let dup = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Tps, Mechanism::Tps])
            .build();
        assert!(matches!(dup, Err(TpsError::InvalidSpec { .. })));
        let thr = ExperimentSpec::new()
            .bench("gups")
            .mechanism(Mechanism::Tps)
            .threshold(1.5)
            .build();
        assert!(matches!(thr, Err(TpsError::InvalidSpec { .. })));
        let zero = ExperimentSpec::new()
            .bench("gups")
            .mechanism(Mechanism::Tps)
            .threads(0)
            .build();
        assert!(matches!(zero, Err(TpsError::InvalidSpec { .. })));
        let stray_baseline = ExperimentSpec::new()
            .bench("gups")
            .mechanism(Mechanism::Tps)
            .baseline(Mechanism::Rmm)
            .build();
        assert!(matches!(stray_baseline, Err(TpsError::InvalidSpec { .. })));
    }

    #[test]
    fn baseline_defaults_to_thp_when_swept() {
        let with_thp = ExperimentSpec::new()
            .bench("gups")
            .mechanisms([Mechanism::Thp, Mechanism::Tps]);
        assert_eq!(with_thp.baseline_mechanism(), Some(Mechanism::Thp));
        let without = ExperimentSpec::new()
            .bench("gups")
            .mechanism(Mechanism::Tps);
        assert_eq!(without.baseline_mechanism(), None);
    }

    #[test]
    fn machine_config_mirrors_spec() {
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .virtualized(true)
            .five_level(true)
            .threshold(0.5)
            .verify(true);
        let config = spec.machine_config(Mechanism::Tps);
        assert!(config.virtualized && config.five_level_paging && config.verify_translations);
        assert_eq!(config.memory_bytes, SuiteScale::Test.recommended_memory());
        let smt_config = spec.smt(true).machine_config(Mechanism::Tps);
        assert_eq!(
            smt_config.memory_bytes,
            2 * SuiteScale::Test.recommended_memory()
        );
        let tiny = ExperimentSpec::new().memory(1 << 20);
        assert_eq!(tiny.machine_config(Mechanism::Thp).memory_bytes, 1 << 20);
    }

    #[test]
    fn tenant_count_round_trips_exhaustively() {
        // Every legal count survives Display → FromStr unchanged.
        for n in 1..=MAX_TENANTS {
            let count = TenantCount::new(n).unwrap();
            let reparsed: TenantCount = count.to_string().parse().unwrap();
            assert_eq!(count, reparsed);
            assert_eq!(reparsed.get(), n);
        }
        // And everything outside the band is rejected.
        for bad in ["0", "4097", "1000000000000", "-3", "eight", ""] {
            assert!(bad.parse::<TenantCount>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn tenants_axis_scales_memory_and_guards_smt() {
        let spec = ExperimentSpec::new()
            .scale(SuiteScale::Test)
            .tenants(TenantCount::new(8).unwrap());
        assert_eq!(
            spec.machine_config(Mechanism::Tps).memory_bytes,
            8 * SuiteScale::Test.recommended_memory()
        );
        let clash = spec
            .clone()
            .bench("gups")
            .mechanism(Mechanism::Tps)
            .smt(true)
            .build();
        assert!(matches!(clash, Err(TpsError::InvalidSpec { .. })));
        // The fingerprint of a solo spec is unchanged by the axis' mere
        // existence, and a multi-tenant spec fingerprints differently.
        let solo = ExperimentSpec::new()
            .bench("gups")
            .mechanism(Mechanism::Tps);
        let solo_explicit = solo.clone().tenants(TenantCount::SOLO);
        assert_eq!(solo.fingerprint(), solo_explicit.fingerprint());
        let multi = solo.clone().tenants(TenantCount::new(8).unwrap());
        assert_ne!(solo.fingerprint(), multi.fingerprint());
    }

    #[test]
    fn resolved_threads_is_bounded() {
        let spec = ExperimentSpec::new().threads(8);
        assert_eq!(spec.resolved_threads(3), 3, "never more threads than cells");
        assert_eq!(spec.resolved_threads(100), 8);
        let auto = ExperimentSpec::new();
        assert!(auto.resolved_threads(1000) >= 1);
    }
}
