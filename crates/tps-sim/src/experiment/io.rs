//! Crash-safe artifact I/O: the sink abstraction every experiment-engine
//! file write goes through, plus a deterministic fault-injecting wrapper.
//!
//! The experiment engine's outputs — the checkpoint journal and the final
//! report JSON — are the reproduction's externally visible claims, so
//! their write paths get the same treatment PR 1 gave the simulated OS
//! fault paths: one narrow seam ([`ArtifactIo`] / [`ArtifactSink`]),
//! a real-filesystem implementation ([`RealIo`]) that fsyncs where the
//! durability contract requires it, and a seeded [`FaultyIo`] wrapper
//! that deterministically injects short writes, intermittent I/O errors,
//! disk-full, and byte-granularity kill points. The `tps-check::chaos`
//! campaign drives whole matrix runs through [`FaultyIo`] to prove the
//! journal/report hardening actually holds under those failures.
//!
//! A "kill" is modeled in-process: once the global write cursor crosses
//! the configured byte offset, the prefix up to the offset reaches the
//! real file and **everything afterwards silently evaporates** — writes,
//! syncs, and renames all pretend to succeed, exactly like a process that
//! died mid-run as observed by the filesystem. The run itself continues,
//! which lets a single test process produce the on-disk wreckage of a
//! kill and then immediately attempt the resume.

use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tps_core::rng::SplitMix64;

/// One open artifact file. Writes may be short (that is the point of the
/// fault layer); use [`ArtifactSink::write_all`] for all-or-error writes.
pub trait ArtifactSink: Send {
    /// Writes a prefix of `buf`, returning how many bytes were accepted.
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Flushes buffered data and asks the OS to persist file contents
    /// (`fdatasync`) so a host crash cannot lose acknowledged bytes.
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Writes all of `buf`, looping over short writes.
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error; a sink that accepts zero
    /// bytes yields [`io::ErrorKind::WriteZero`].
    fn write_all(&mut self, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            let n = self.write(buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "sink accepted no bytes",
                ));
            }
            buf = &buf[n..];
        }
        Ok(())
    }
}

/// Factory for artifact sinks plus the directory-level operations atomic
/// publication needs. All experiment-engine file *writes* go through an
/// implementation of this trait (enforced by the `raw-artifact-io` lint);
/// reads stay on plain `std::fs`.
pub trait ArtifactIo: Sync {
    /// Creates (or truncates) the file at `path` for writing.
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error.
    fn create(&self, path: &Path) -> io::Result<Box<dyn ArtifactSink + '_>>;

    /// Opens an existing file for appending. When `truncate_to` is given,
    /// the file is first truncated to that byte length — resume uses this
    /// to cut a torn tail off a journal before appending fresh entries.
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error.
    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> io::Result<Box<dyn ArtifactSink + '_>>;

    /// Atomically renames `from` to `to` (same directory).
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Syncs the directory itself so a completed rename survives a host
    /// crash. Best-effort on platforms where directories cannot be opened.
    ///
    /// # Errors
    ///
    /// Any underlying (or injected) I/O error.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// Publishes `bytes` at `path` atomically: write to a same-directory temp
/// file, `sync_data`, rename over `path`, then sync the directory. A
/// reader can observe the old content or the new content at `path`, never
/// a prefix.
///
/// # Errors
///
/// Any underlying (or injected) I/O error.
pub fn write_atomic(io: &dyn ArtifactIo, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut sink = io.create(&tmp)?;
        sink.write_all(bytes)?;
        sink.sync_data()?;
    }
    io.rename(&tmp, path)?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    io.sync_dir(&dir)
}

/// The real filesystem: plain `File` sinks, real renames, real dir syncs.
#[derive(Debug, Default)]
pub struct RealIo;

struct RealSink {
    file: std::fs::File,
}

impl ArtifactSink for RealSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }
}

impl ArtifactIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn ArtifactSink + '_>> {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(RealSink { file }))
    }

    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> io::Result<Box<dyn ArtifactSink + '_>> {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .read(true)
            .open(path)?;
        if let Some(len) = truncate_to {
            file.set_len(len)?;
        }
        file.seek(io::SeekFrom::End(0))?;
        Ok(Box::new(RealSink { file }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories cannot be opened for reading on every platform;
        // treat an un-openable directory as "nothing to sync" rather than
        // failing the publication that already renamed successfully.
        match std::fs::File::open(dir) {
            Ok(handle) => handle.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// Configuration of a [`FaultyIo`] wrapper. All faults are deterministic
/// functions of `seed` and the byte-exact write sequence.
#[derive(Clone, Copy, Debug)]
pub struct FaultyIoConfig {
    /// Seed of the injection PRNG (SplitMix64).
    pub seed: u64,
    /// Kill the "process" once this many bytes have reached the real
    /// files: the prefix up to the offset is written, everything after —
    /// writes, syncs, renames — silently evaporates.
    pub kill_at: Option<u64>,
    /// Per-write probability of an injected intermittent `io::Error`.
    pub error_rate: f64,
    /// Per-write probability that only a prefix of the buffer is accepted.
    pub short_write_rate: f64,
    /// Byte budget after which every write fails like a full disk.
    pub disk_full_at: Option<u64>,
}

impl Default for FaultyIoConfig {
    fn default() -> Self {
        FaultyIoConfig {
            seed: 0,
            kill_at: None,
            error_rate: 0.0,
            short_write_rate: 0.0,
            disk_full_at: None,
        }
    }
}

struct FaultyState {
    rng: SplitMix64,
    bytes_written: u64,
    syncs: u64,
    killed: bool,
}

/// A deterministic fault-injecting [`ArtifactIo`] wrapping [`RealIo`].
///
/// One wrapper instance models one filesystem-under-test: the byte
/// counter, kill switch, and PRNG are shared across every sink it opens,
/// so a kill point lands at one global offset in the run's total write
/// stream no matter how many files are involved.
pub struct FaultyIo {
    inner: RealIo,
    config: FaultyIoConfig,
    state: Mutex<FaultyState>,
}

impl FaultyIo {
    /// Creates a fault layer with the given deterministic configuration.
    pub fn new(config: FaultyIoConfig) -> Self {
        FaultyIo {
            inner: RealIo,
            config,
            state: Mutex::new(FaultyState {
                rng: SplitMix64::new(config.seed),
                bytes_written: 0,
                syncs: 0,
                killed: false,
            }),
        }
    }

    /// Whether the kill point has been crossed.
    pub fn killed(&self) -> bool {
        self.lock().killed
    }

    /// Bytes that actually reached the real filesystem.
    pub fn bytes_written(&self) -> u64 {
        self.lock().bytes_written
    }

    /// Number of `sync_data` calls that reached the real filesystem.
    pub fn syncs(&self) -> u64 {
        self.lock().syncs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultyState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A sink that swallows everything: the view a dead process's writes get.
struct DeadSink;

impl ArtifactSink for DeadSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        Ok(())
    }
}

struct FaultySink<'a> {
    inner: Box<dyn ArtifactSink + 'a>,
    io: &'a FaultyIo,
}

impl ArtifactSink for FaultySink<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut state = self.io.lock();
        if state.killed {
            return Ok(buf.len());
        }
        if chance(&mut state.rng, self.io.config.error_rate) {
            return Err(io::Error::other("injected intermittent I/O error"));
        }
        let mut n = buf.len();
        if let Some(limit) = self.io.config.disk_full_at {
            let budget = limit.saturating_sub(state.bytes_written);
            if budget == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected disk-full",
                ));
            }
            n = n.min(budget as usize);
        }
        if n > 1 && chance(&mut state.rng, self.io.config.short_write_rate) {
            // A short write accepts a non-empty strict prefix.
            n = 1 + (state.rng.next_u64() % (n as u64 - 1)) as usize;
        }
        if let Some(kill_at) = self.io.config.kill_at {
            let budget = kill_at.saturating_sub(state.bytes_written);
            if (n as u64) >= budget {
                // The prefix up to the kill point reaches the disk; the
                // process "dies" and every later byte silently vanishes,
                // so the caller observes success (it is dead either way).
                self.inner.write_all(&buf[..budget as usize])?;
                let _ = self.inner.sync_data();
                state.bytes_written += budget;
                state.killed = true;
                return Ok(buf.len());
            }
        }
        self.inner.write_all(&buf[..n])?;
        state.bytes_written += n as u64;
        Ok(n)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut state = self.io.lock();
        if state.killed {
            return Ok(());
        }
        state.syncs += 1;
        self.inner.sync_data()
    }
}

impl ArtifactIo for FaultyIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn ArtifactSink + '_>> {
        if self.killed() {
            return Ok(Box::new(DeadSink));
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultySink { inner, io: self }))
    }

    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> io::Result<Box<dyn ArtifactSink + '_>> {
        if self.killed() {
            return Ok(Box::new(DeadSink));
        }
        let inner = self.inner.open_append(path, truncate_to)?;
        Ok(Box::new(FaultySink { inner, io: self }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.killed() {
            return Ok(());
        }
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.killed() {
            return Ok(());
        }
        self.inner.sync_dir(dir)
    }
}

/// One Bernoulli draw at probability `p` (53-bit uniform mantissa).
fn chance(rng: &mut SplitMix64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < p
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the per-entry checksum of checkpoint
/// journal v2. Detects every single-byte (indeed every ≤ 32-bit burst)
/// corruption of a journal entry.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn real_io_round_trips_and_appends() {
        let dir = temp_dir("tps-io-real");
        let path = dir.join("a.txt");
        {
            let mut sink = RealIo.create(&path).unwrap();
            sink.write_all(b"hello ").unwrap();
            sink.sync_data().unwrap();
        }
        {
            let mut sink = RealIo.open_append(&path, None).unwrap();
            sink.write_all(b"world").unwrap();
            sink.sync_data().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        // truncate_to cuts a torn tail before appending.
        let mut sink = RealIo.open_append(&path, Some(5)).unwrap();
        sink.write_all(b"!").unwrap();
        drop(sink);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello!");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_leaves_no_temp_file() {
        let dir = temp_dir("tps-io-atomic");
        let path = dir.join("report.json");
        write_atomic(&RealIo, &path, b"{\"v\":1}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\":1}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_point_writes_exactly_the_prefix() {
        let dir = temp_dir("tps-io-kill");
        let path = dir.join("k.bin");
        let io = FaultyIo::new(FaultyIoConfig {
            kill_at: Some(10),
            ..FaultyIoConfig::default()
        });
        let mut sink = io.create(&path).unwrap();
        sink.write_all(b"0123456789abcdef").unwrap();
        sink.write_all(b"more after death").unwrap();
        sink.sync_data().unwrap();
        drop(sink);
        assert!(io.killed());
        assert_eq!(io.bytes_written(), 10);
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
        // Post-kill file operations are swallowed silently.
        let other = dir.join("other.bin");
        let mut dead = io.create(&other).unwrap();
        dead.write_all(b"never lands").unwrap();
        drop(dead);
        assert!(!other.exists(), "a dead process creates no files");
        io.rename(&path, &other).unwrap();
        assert!(
            path.exists() && !other.exists(),
            "post-kill rename is a no-op"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_errors_after_the_budget() {
        let dir = temp_dir("tps-io-full");
        let path = dir.join("f.bin");
        let io = FaultyIo::new(FaultyIoConfig {
            disk_full_at: Some(4),
            ..FaultyIoConfig::default()
        });
        let mut sink = io.create(&path).unwrap();
        // First write is cut short at the budget, the next one errors.
        assert_eq!(sink.write(b"123456").unwrap(), 4);
        let err = sink.write(b"56").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(sink);
        assert_eq!(std::fs::read(&path).unwrap(), b"1234");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_faults_are_deterministic() {
        let dir = temp_dir("tps-io-det");
        let run = |tag: &str| {
            let path = dir.join(format!("{tag}.bin"));
            let io = FaultyIo::new(FaultyIoConfig {
                seed: 42,
                error_rate: 0.3,
                short_write_rate: 0.5,
                ..FaultyIoConfig::default()
            });
            let mut sink = io.create(&path).unwrap();
            let mut log = Vec::new();
            for _ in 0..50 {
                match sink.write(b"abcdefgh") {
                    Ok(n) => log.push(n as i64),
                    Err(_) => log.push(-1),
                }
            }
            drop(sink);
            (log, std::fs::read(&path).unwrap())
        };
        assert_eq!(run("a"), run("b"), "same seed, same fault schedule");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_writes_complete_via_write_all() {
        let dir = temp_dir("tps-io-short");
        let path = dir.join("s.bin");
        let io = FaultyIo::new(FaultyIoConfig {
            seed: 7,
            short_write_rate: 1.0,
            ..FaultyIoConfig::default()
        });
        let mut sink = io.create(&path).unwrap();
        sink.write_all(b"the whole message arrives in pieces")
            .unwrap();
        drop(sink);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"the whole message arrives in pieces"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
